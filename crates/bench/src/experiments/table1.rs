//! Table I — overheads of code runtime environments: setup time,
//! memory footprint, CPU allocation, disk usage. Plus the §VI-B setup
//! speedups (4.22× / 16.41×).

use super::ExperimentOutput;
use analysis::{fnum, fx, Scorecard, Table};
use hostkernel::HostSpec;
use rattrap::config::paper;
use simkit::units::format_bytes;
use virt::{CloudHost, RuntimeClass};

/// Run the Table I measurement: provision one runtime of each class on
/// a fresh host and read off its overheads.
pub fn run(_seed: u64) -> ExperimentOutput {
    let mut table = Table::new(
        "Table I — Overheads of code runtime environments",
        &["Code Runtime", "Setup Time", "Memory", "CPU", "Disk Usage"],
    );
    let mut setups = Vec::new();
    let mut sc = Scorecard::new();

    for (i, class) in RuntimeClass::ALL.iter().enumerate() {
        // Fresh host per class: Table I measures a single instance on a
        // steady-state server (the Android Container Driver is already
        // resident — its one-time insmod cost is an ablation, not part
        // of Table I's setup time).
        let mut host = CloudHost::new(HostSpec::paper_server());
        host.kernel.load_android_container_driver();
        let base_disk = host.total_disk_usage();
        let (id, setup) = host.provision(*class).expect("fresh host has room");
        let inst = host.instance(id).expect("just provisioned");
        let spec = class.spec();
        let disk = inst.exclusive_disk_bytes;
        // The optimized container additionally relies on the shared
        // layer, published once per host, not per instance.
        let _ = base_disk;
        table.row(&[
            class.label().to_string(),
            format!("{:.2}s", setup.as_secs_f64()),
            format_bytes(spec.memory_bytes),
            format!("{}vCPU", spec.vcpus),
            format_bytes(disk),
        ]);
        setups.push(setup.as_secs_f64());
        sc.within(
            &format!("setup time: {}", class.label()),
            paper::SETUP_TIMES_S[i],
            setup.as_secs_f64(),
            0.02,
        );
        sc.within(
            &format!("memory: {}", class.label()),
            paper::MEMORY_MIB[i] as f64,
            spec.memory_bytes as f64 / (1024.0 * 1024.0),
            0.01,
        );
    }

    let s_wo = setups[0] / setups[1];
    let s_opt = setups[0] / setups[2];
    sc.within(
        "§VI-B setup speedup, CAC non-optimized",
        paper::SETUP_SPEEDUPS[0],
        s_wo,
        0.03,
    );
    sc.within(
        "§VI-B setup speedup, CAC optimized",
        paper::SETUP_SPEEDUPS[1],
        s_opt,
        0.03,
    );

    let mut body = table.render();
    body.push_str(&format!(
        "\nSetup speedup over VM: CAC(non-opt) {}, CAC {}\n",
        fx(s_wo),
        fx(s_opt)
    ));
    body.push_str(&format!(
        "Memory saving vs VM: CAC(non-opt) {}%, CAC {}%\n",
        fnum((1.0 - 128.0 / 512.0) * 100.0, 0),
        fnum((1.0 - 96.0 / 512.0) * 100.0, 0)
    ));

    // Boot-stage detail (Fig. 6 narrative).
    for class in RuntimeClass::ALL {
        body.push_str(&format!("\n{} boot stages:\n", class.label()));
        for (name, cum) in class.boot_sequence().cumulative() {
            body.push_str(&format!("  {:<38} → {:.2}s\n", name, cum.as_secs_f64()));
        }
    }

    ExperimentOutput {
        id: "Table I",
        body,
        scorecard: sc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_paper() {
        let out = run(0);
        assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
        assert!(out.body.contains("28.72s"));
        assert!(out.body.contains("1.75s"));
        assert!(out.body.contains("512.0 MiB"));
        assert!(
            out.body.contains("6.8 MiB"),
            "optimized CAC disk:\n{}",
            out.body
        );
    }
}
