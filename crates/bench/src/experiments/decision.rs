//! Offloading-decision study — the client half the paper delegates to
//! MAUI-class frameworks, evaluated against our platform model: for
//! each workload × network scenario, what fraction of sampled tasks
//! should offload, and what response time does the adaptive policy
//! achieve vs. always-offloading and always-local?

use super::ExperimentOutput;
use analysis::{fnum, fpct, Scorecard, Table};
use netsim::NetworkScenario;
use rattrap::{DeviceSpec, LinkEstimator, Objective, OffloadDecider};
use simkit::{SimDuration, SimRng};
use workloads::WorkloadKind;

/// Run the decision study with 200 sampled tasks per cell.
pub fn run(seed: u64) -> ExperimentOutput {
    let decider = OffloadDecider::new(DeviceSpec::default_handset(), Objective::Latency);
    let mut sc = Scorecard::new();
    let mut body = String::new();

    for kind in WorkloadKind::ALL {
        let profile = kind.profile();
        let mut table = Table::new(
            &format!("offloading decisions ({})", kind.label()),
            &[
                "Scenario",
                "Offloaded",
                "Adaptive(s)",
                "AlwaysOffload(s)",
                "AlwaysLocal(s)",
            ],
        );
        let mut offload_fracs = Vec::new();
        for scenario in NetworkScenario::ALL {
            let link = LinkEstimator::seeded_from(scenario);
            let mut rng = SimRng::new(simkit::derive_seed(
                seed,
                kind as u64 * 16 + scenario as u64,
            ));
            let (mut n_off, mut t_adaptive, mut t_offload, mut t_local) = (0usize, 0.0, 0.0, 0.0);
            let n = 200;
            for _ in 0..n {
                let task = profile.sample(&mut rng);
                let r = decider.decide(scenario, &link, &task, 0, SimDuration::ZERO);
                let remote = r.predicted_remote.as_secs_f64();
                let local = r.predicted_local.as_secs_f64();
                t_offload += remote;
                t_local += local;
                if r.offload {
                    n_off += 1;
                    t_adaptive += remote;
                } else {
                    t_adaptive += local;
                }
            }
            let frac = n_off as f64 / n as f64;
            offload_fracs.push((scenario, frac));
            table.row(&[
                scenario.label().to_string(),
                fpct(frac),
                fnum(t_adaptive / n as f64, 2),
                fnum(t_offload / n as f64, 2),
                fnum(t_local / n as f64, 2),
            ]);
            // The adaptive policy never loses to either static policy
            // (it picks the predicted-better arm per task).
            sc.expect(
                &format!(
                    "{} {}: adaptive ≤ min(static)",
                    kind.label(),
                    scenario.label()
                ),
                "adaptive ≤ min(always-offload, always-local)",
                &format!(
                    "{:.2} vs min({:.2},{:.2})",
                    t_adaptive / n as f64,
                    t_offload / n as f64,
                    t_local / n as f64
                ),
                t_adaptive <= t_offload.min(t_local) + 1e-9,
            );
        }
        body.push_str(&table.render());
        body.push('\n');

        // Good networks offload everything.
        let lan = offload_fracs[0].1;
        sc.expect(
            &format!("{}: LAN offloads all tasks", kind.label()),
            "100%",
            &fpct(lan),
            lan > 0.99,
        );
    }

    // VirusScan specifically goes local on 3G (transfer-bound).
    let link = LinkEstimator::seeded_from(NetworkScenario::ThreeG);
    let scan = decider.decide_mean(
        NetworkScenario::ThreeG,
        &link,
        &WorkloadKind::VirusScan.profile(),
        true,
        SimDuration::ZERO,
    );
    sc.expect(
        "VirusScan stays local on 3G",
        "no offload",
        &format!(
            "remote {:.1}s vs local {:.1}s",
            scan.predicted_remote.as_secs_f64(),
            scan.predicted_local.as_secs_f64()
        ),
        !scan.offload,
    );

    ExperimentOutput {
        id: "Decision study",
        body,
        scorecard: sc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_study_shape_holds() {
        let out = run(super::super::DEFAULT_SEED);
        assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
    }
}
