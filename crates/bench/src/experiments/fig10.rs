//! Fig. 10 — average device power consumption of offloading requests
//! across network scenarios, normalized to all-local execution.

use super::ExperimentOutput;
use analysis::{Scorecard, Table};
use netsim::NetworkScenario;
use powersim::{DevicePowerModel, EnergyEstimator, OffloadPhases};
use rattrap::{run_scenario, PlatformKind, ScenarioConfig, SimulationReport};
use workloads::WorkloadKind;

/// Mean normalized energy of a report's requests under the estimator.
fn mean_normalized(rep: &SimulationReport, est: &EnergyEstimator) -> f64 {
    rep.mean_of(|r| {
        let phases = OffloadPhases {
            connect: r.phases.network_connection,
            upload: r.upload_time,
            cloud_wait: r.cloud_wait(),
            download: r.download_time,
        };
        est.normalized(r.scenario, phases, r.local_execution)
    })
}

/// Mean normalized energy over [`super::REPLICATIONS`] independent
/// runs on derived seeds, executed in parallel (order-preserving, so
/// identical to the serial loop).
fn replicated_energy(
    platform: PlatformKind,
    kind: WorkloadKind,
    scenario: NetworkScenario,
    seed: u64,
    est: &EnergyEstimator,
) -> f64 {
    let runs = super::replicate(seed, super::REPLICATIONS, |s| {
        let mut cfg = ScenarioConfig::paper_default(platform.config(), kind, s);
        cfg.scenario = scenario;
        mean_normalized(&run_scenario(cfg), est)
    });
    runs.iter().sum::<f64>() / runs.len() as f64
}

/// Run Fig. 10: every workload × scenario × platform; energy normalized
/// to local execution (= 1.0), averaged over parallel replications.
pub fn run(seed: u64) -> ExperimentOutput {
    let est = EnergyEstimator::new(DevicePowerModel::power_tutor_default());
    let mut body = String::new();
    let mut sc = Scorecard::new();

    for kind in WorkloadKind::ALL {
        let mut table = Table::new(
            &format!(
                "Fig. 10 ({}) — normalized energy (local = 1.0)",
                kind.label()
            ),
            &["Scenario", "Rattrap", "Rattrap(W/O)", "VM"],
        );
        let mut lan_values = Vec::new();
        for scenario in NetworkScenario::ALL {
            let mut row = vec![scenario.label().to_string()];
            for platform in PlatformKind::ALL {
                let e = replicated_energy(platform, kind, scenario, seed, &est);
                row.push(format!("{e:.3}"));
                if scenario == NetworkScenario::LanWifi {
                    lan_values.push(e);
                }
            }
            table.row(&row);
        }
        body.push_str(&table.render());
        body.push('\n');

        // First observation of §VI-D: both Rattrap variants beat the VM
        // platform on energy.
        let (rt, wo, vm) = (lan_values[0], lan_values[1], lan_values[2]);
        sc.less(
            &format!("{} LAN: Rattrap beats VM on energy", kind.label()),
            "Rattrap",
            rt,
            "VM",
            vm,
        );
        sc.less(
            &format!("{} LAN: W/O beats VM on energy", kind.label()),
            "W/O",
            wo,
            "VM",
            vm,
        );
        // Offloading extends battery life in the LAN scenario.
        sc.expect(
            &format!("{} LAN: offloading saves energy vs local", kind.label()),
            "normalized < 1",
            &format!("{rt:.3}"),
            rt < 1.0,
        );
    }

    // Second observation: the Rattrap-vs-VM advantage is largest for
    // ChessGame (runtime prep is a big share of its energy) and smaller
    // for VirusScan/Linpack.
    let ratio = |kind: WorkloadKind| {
        let mut e = Vec::new();
        for platform in [PlatformKind::Rattrap, PlatformKind::VmBaseline] {
            e.push(replicated_energy(
                platform,
                kind,
                NetworkScenario::LanWifi,
                seed,
                &est,
            ));
        }
        e[1] / e[0] // VM energy / Rattrap energy
    };
    let chess = ratio(WorkloadKind::ChessGame);
    let linpack = ratio(WorkloadKind::Linpack);
    sc.less(
        "energy advantage: Linpack < ChessGame (paper: 1.15x vs 1.37x)",
        "Linpack",
        linpack,
        "ChessGame",
        chess,
    );
    // Paper: 1.37×. Our model charges the VM's cold-start waits at
    // idle power only, so the advantage comes out larger (≈2×); the
    // direction and cross-workload ordering match (see EXPERIMENTS.md).
    sc.expect(
        "ChessGame energy advantage over VM",
        "> 1.15x, same direction as paper's 1.37x",
        &format!("{chess:.2}x"),
        chess > 1.15 && chess < 3.0,
    );

    // Third observation: OCR's advantage shrinks as the network worsens
    // (file transfer becomes the bottleneck).
    let ocr_adv = |scenario: NetworkScenario| {
        let mut e = Vec::new();
        for platform in [PlatformKind::Rattrap, PlatformKind::VmBaseline] {
            e.push(replicated_energy(
                platform,
                WorkloadKind::Ocr,
                scenario,
                seed,
                &est,
            ));
        }
        e[1] / e[0]
    };
    let lan_adv = ocr_adv(NetworkScenario::LanWifi);
    let g3_adv = ocr_adv(NetworkScenario::ThreeG);
    sc.less(
        "OCR: energy advantage shrinks on 3G (transfer-bound)",
        "3G advantage",
        g3_adv,
        "LAN advantage",
        lan_adv,
    );

    ExperimentOutput {
        id: "Fig. 10",
        body,
        scorecard: sc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_reproduces_section_vi_d() {
        let out = run(super::super::DEFAULT_SEED);
        assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
    }
}
