//! Robustness — two studies in one experiment.
//!
//! **Seed robustness**: do the headline reproduction results hold
//! across seeds, or were they tuned to one lucky sample? Runs the
//! Fig. 9 speedup bands and the Fig. 11 ordering on several
//! independent seeds in parallel and reports mean ± stddev.
//!
//! **Fault sweep**: how do the resilience policies degrade under an
//! increasingly hostile fault plane? Sweeps fault intensity × policy
//! (fail-fast / retry / retry+fallback) on the Rattrap platform and
//! reports completion rate, retries, fallbacks, time lost to faults,
//! and the p50/p99 response times of delivered requests against the
//! no-fault baseline. The rate-0 column doubles as a determinism
//! check: an explicit zero-rate plan must be bit-identical to the
//! fault-free engine.

use super::ExperimentOutput;
use analysis::{fnum, Scorecard, Table};
use rattrap::{run_scenario, PlatformKind, ResiliencePolicy, ScenarioConfig, SimulationReport};
use rayon::prelude::*;
use simkit::{Cdf, FaultConfig, OnlineStats};
use workloads::WorkloadKind;

/// Seeds deliberately unrelated to the default.
const SEEDS: [u64; 5] = [11, 2_027, 31_337, 424_242, 9_999_991];

/// Fault intensities swept (multiplier on [`FaultConfig::scaled`]'s
/// per-hour base rates; 0 is the determinism control).
const INTENSITIES: [f64; 4] = [0.0, 1.0, 3.0, 6.0];

/// The policies compared at every intensity.
fn policies() -> [(&'static str, ResiliencePolicy); 3] {
    [
        ("fail-fast", ResiliencePolicy::none()),
        ("retry", ResiliencePolicy::retry_only()),
        ("standard", ResiliencePolicy::standard()),
    ]
}

fn seeds() -> &'static [u64] {
    // Smoke mode: two seeds still exercise the cross-seed machinery.
    if super::smoke() {
        &SEEDS[..2]
    } else {
        &SEEDS
    }
}

struct SeedResult {
    prep_speedup: f64,
    transfer_speedup: f64,
    compute_speedup: f64,
    rattrap_failures: f64,
    vm_failures: f64,
}

fn one_seed(seed: u64) -> SeedResult {
    let mut prep = Vec::new();
    let mut transfer = Vec::new();
    let mut compute = Vec::new();
    let mut fail = [0.0f64; 2];
    let mut means = std::collections::BTreeMap::new();
    let workloads = WorkloadKind::ALL;
    for kind in workloads {
        for platform in PlatformKind::ALL {
            let cfg = ScenarioConfig {
                requests_per_device: super::smoke_requests(
                    rattrap::config::PAPER_REQUESTS_PER_DEVICE,
                ),
                ..ScenarioConfig::paper_default(platform.config(), kind, seed)
            };
            let rep = run_scenario(cfg);
            means.insert(
                (kind, platform),
                (
                    rep.mean_of(|r| r.phases.computation_execution.as_secs_f64()),
                    rep.mean_of(|r| r.phases.runtime_preparation.as_secs_f64()),
                    rep.mean_of(|r| {
                        (r.phases.data_transfer + r.phases.network_connection).as_secs_f64()
                    }),
                    rep.failure_rate(),
                ),
            );
        }
    }
    // Each workload contributes equally to the platform failure rates.
    let per_workload = workloads.len() as f64;
    for kind in workloads {
        let vm = means[&(kind, PlatformKind::VmBaseline)];
        let rt = means[&(kind, PlatformKind::Rattrap)];
        compute.push(vm.0 / rt.0);
        prep.push(vm.1 / rt.1);
        transfer.push(vm.2 / rt.2);
        fail[0] += rt.3 / per_workload;
        fail[1] += vm.3 / per_workload;
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    SeedResult {
        prep_speedup: mean(&prep),
        transfer_speedup: mean(&transfer),
        compute_speedup: mean(&compute),
        rattrap_failures: fail[0],
        vm_failures: fail[1],
    }
}

// ---- fault sweep ---------------------------------------------------------

struct SweepCell {
    intensity: f64,
    policy: &'static str,
    digest: u64,
    completion_rate: f64,
    retries: u64,
    fallbacks: u64,
    abandoned: u64,
    time_lost_s: f64,
    p50_s: f64,
    p99_s: f64,
}

fn sweep_cfg(intensity: f64, policy: ResiliencePolicy, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        requests_per_device: super::smoke_requests(rattrap::config::PAPER_REQUESTS_PER_DEVICE),
        faults: FaultConfig::scaled(intensity),
        resilience: policy,
        ..ScenarioConfig::paper_default(PlatformKind::Rattrap.config(), WorkloadKind::Ocr, seed)
    }
}

fn sweep_cell(
    intensity: f64,
    name: &'static str,
    policy: ResiliencePolicy,
    seed: u64,
) -> SweepCell {
    let rep = run_scenario(sweep_cfg(intensity, policy, seed));
    cell_of(intensity, name, &rep)
}

fn cell_of(intensity: f64, policy: &'static str, rep: &SimulationReport) -> SweepCell {
    let total = rep.requests.len().max(1) as f64;
    let delivered: Vec<f64> = rep
        .requests
        .iter()
        .filter(|r| !r.abandoned)
        .map(|r| r.completed_at.saturating_since(r.arrived_at).as_secs_f64())
        .collect();
    let cdf = Cdf::from_samples(delivered);
    SweepCell {
        intensity,
        policy,
        digest: rep.digest(),
        completion_rate: 1.0 - rep.fault_stats.abandoned as f64 / total,
        retries: rep.fault_stats.retries,
        fallbacks: rep.fault_stats.fallbacks,
        abandoned: rep.fault_stats.abandoned,
        time_lost_s: rep.fault_stats.time_lost.as_secs_f64(),
        p50_s: cdf.quantile(0.5).unwrap_or(0.0),
        p99_s: cdf.quantile(0.99).unwrap_or(0.0),
    }
}

/// Run the robustness study (the `seed` argument shifts every seed).
pub fn run(seed: u64) -> ExperimentOutput {
    let results: Vec<SeedResult> = seeds()
        .par_iter()
        .map(|&s| one_seed(s.wrapping_add(seed)))
        .collect();

    let mut prep = OnlineStats::new();
    let mut transfer = OnlineStats::new();
    let mut compute = OnlineStats::new();
    let mut rt_fail = OnlineStats::new();
    let mut vm_fail = OnlineStats::new();
    for r in &results {
        prep.push(r.prep_speedup);
        transfer.push(r.transfer_speedup);
        compute.push(r.compute_speedup);
        rt_fail.push(r.rattrap_failures);
        vm_fail.push(r.vm_failures);
    }

    let mut table = Table::new(
        &format!("robustness across {} seeds (mean ± σ)", seeds().len()),
        &["Metric", "Paper", "Mean", "StdDev"],
    );
    table.row(&[
        "prep speedup (Rattrap vs VM)".into(),
        "16.29–16.98".into(),
        fnum(prep.mean(), 2),
        fnum(prep.std_dev(), 2),
    ]);
    table.row(&[
        "transfer speedup".into(),
        "1.17–2.04".into(),
        fnum(transfer.mean(), 2),
        fnum(transfer.std_dev(), 2),
    ]);
    table.row(&[
        "compute speedup".into(),
        "1.05–1.40".into(),
        fnum(compute.mean(), 2),
        fnum(compute.std_dev(), 2),
    ]);
    table.row(&[
        "Rattrap failure rate".into(),
        "—".into(),
        fnum(rt_fail.mean(), 3),
        fnum(rt_fail.std_dev(), 3),
    ]);
    table.row(&[
        "VM failure rate".into(),
        "—".into(),
        fnum(vm_fail.mean(), 3),
        fnum(vm_fail.std_dev(), 3),
    ]);

    // ---- fault sweep: intensity × policy, all cells in parallel. --------
    let sweep_seed = super::DEFAULT_SEED.wrapping_add(seed);
    let grid: Vec<(f64, &'static str, ResiliencePolicy)> = INTENSITIES
        .iter()
        .flat_map(|&i| policies().into_iter().map(move |(n, p)| (i, n, p)))
        .collect();
    let cells: Vec<SweepCell> = grid
        .into_par_iter()
        .map(|(i, n, p)| sweep_cell(i, n, p, sweep_seed))
        .collect();
    // The engine's own fault-free run, for the determinism control.
    let baseline = run_scenario(ScenarioConfig {
        requests_per_device: super::smoke_requests(rattrap::config::PAPER_REQUESTS_PER_DEVICE),
        ..ScenarioConfig::paper_default(
            PlatformKind::Rattrap.config(),
            WorkloadKind::Ocr,
            sweep_seed,
        )
    });
    let baseline_cell = cell_of(0.0, "no-fault baseline", &baseline);

    let mut sweep = Table::new(
        "fault sweep — Rattrap/OCR, intensity × policy",
        &[
            "Intensity",
            "Policy",
            "Completed",
            "Retries",
            "Fallbacks",
            "Abandoned",
            "Lost (s)",
            "p50 (s)",
            "p99 (s)",
        ],
    );
    for c in std::iter::once(&baseline_cell).chain(cells.iter()) {
        sweep.row(&[
            fnum(c.intensity, 1),
            c.policy.to_string(),
            format!("{:.1}%", 100.0 * c.completion_rate),
            c.retries.to_string(),
            c.fallbacks.to_string(),
            c.abandoned.to_string(),
            fnum(c.time_lost_s, 1),
            fnum(c.p50_s, 2),
            fnum(c.p99_s, 2),
        ]);
    }

    let mut sc = Scorecard::new();
    sc.in_band(
        "prep speedup mean across seeds",
        (16.29, 16.98),
        prep.mean(),
        0.35,
    );
    sc.in_band(
        "transfer speedup mean across seeds",
        (1.17, 2.04),
        transfer.mean(),
        0.30,
    );
    sc.in_band(
        "compute speedup mean across seeds",
        (1.05, 1.40),
        compute.mean(),
        0.15,
    );
    sc.expect(
        "prep speedup is stable",
        "σ/mean < 15%",
        &format!("{:.1}%", 100.0 * prep.std_dev() / prep.mean()),
        prep.std_dev() / prep.mean() < 0.15,
    );
    sc.expect(
        "failure ordering holds on every seed",
        "Rattrap < VM, all seeds",
        &format!(
            "{:?}",
            results
                .iter()
                .map(|r| r.rattrap_failures < r.vm_failures)
                .collect::<Vec<_>>()
        ),
        results.iter().all(|r| r.rattrap_failures < r.vm_failures),
    );

    // Fault-sweep contracts.
    let at = |i: f64, p: &str| -> &SweepCell {
        cells
            .iter()
            .find(|c| c.intensity == i && c.policy == p)
            .expect("cell in grid")
    };
    let heaviest = *INTENSITIES.last().expect("non-empty sweep");
    sc.expect(
        "rate-0 plan is bit-identical to the fault-free engine",
        &format!("{:#018x}", baseline_cell.digest),
        &format!("{:#018x}", at(0.0, "fail-fast").digest),
        at(0.0, "fail-fast").digest == baseline_cell.digest,
    );
    sc.expect(
        "standard policy delivers every request at every intensity",
        "completion 100% × 4",
        &format!(
            "{:?}",
            INTENSITIES
                .iter()
                .map(|&i| at(i, "standard").completion_rate)
                .collect::<Vec<_>>()
        ),
        INTENSITIES
            .iter()
            .all(|&i| at(i, "standard").completion_rate == 1.0),
    );
    let (ff, rt, st) = (
        at(heaviest, "fail-fast"),
        at(heaviest, "retry"),
        at(heaviest, "standard"),
    );
    sc.expect(
        "completion ordering at the heaviest intensity",
        "standard ≥ retry ≥ fail-fast",
        &format!(
            "{:.2} / {:.2} / {:.2}",
            st.completion_rate, rt.completion_rate, ff.completion_rate
        ),
        st.completion_rate >= rt.completion_rate && rt.completion_rate >= ff.completion_rate,
    );
    sc.expect(
        "heavy faults force retries under a retrying policy",
        "retries > 0",
        &format!("{} / {}", rt.retries, st.retries),
        rt.retries > 0 && st.retries > 0,
    );
    sc.less(
        "faults push the delivered p99 up (standard policy)",
        "no-fault p99",
        baseline_cell.p99_s,
        "heaviest p99",
        st.p99_s,
    );

    ExperimentOutput {
        id: "Robustness",
        body: format!("{}\n{}", table.render(), sweep.render()),
        scorecard: sc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robustness_holds_across_seeds() {
        let out = run(0);
        assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
    }

    #[test]
    fn sweep_cells_are_deterministic() {
        let a = sweep_cell(3.0, "standard", ResiliencePolicy::standard(), 77);
        let b = sweep_cell(3.0, "standard", ResiliencePolicy::standard(), 77);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.p99_s, b.p99_s);
    }
}
