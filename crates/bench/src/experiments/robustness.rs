//! Robustness — do the headline reproduction results hold across seeds,
//! or were they tuned to one lucky sample? Runs the Fig. 9 speedup
//! bands and the Fig. 11 ordering on several independent seeds in
//! parallel and reports mean ± stddev.

use super::ExperimentOutput;
use analysis::{fnum, Scorecard, Table};
use rattrap::{run_scenario, PlatformKind, ScenarioConfig};
use rayon::prelude::*;
use simkit::OnlineStats;
use workloads::WorkloadKind;

/// Seeds deliberately unrelated to the default.
const SEEDS: [u64; 5] = [11, 2_027, 31_337, 424_242, 9_999_991];

struct SeedResult {
    prep_speedup: f64,
    transfer_speedup: f64,
    compute_speedup: f64,
    rattrap_failures: f64,
    vm_failures: f64,
}

fn one_seed(seed: u64) -> SeedResult {
    let mut prep = Vec::new();
    let mut transfer = Vec::new();
    let mut compute = Vec::new();
    let mut fail = [0.0f64; 2];
    let mut means = std::collections::BTreeMap::new();
    for kind in WorkloadKind::ALL {
        for platform in PlatformKind::ALL {
            let cfg = ScenarioConfig::paper_default(platform.config(), kind, seed);
            let rep = run_scenario(cfg);
            means.insert(
                (kind, platform),
                (
                    rep.mean_of(|r| r.phases.computation_execution.as_secs_f64()),
                    rep.mean_of(|r| r.phases.runtime_preparation.as_secs_f64()),
                    rep.mean_of(|r| {
                        (r.phases.data_transfer + r.phases.network_connection).as_secs_f64()
                    }),
                    rep.failure_rate(),
                ),
            );
        }
    }
    for kind in WorkloadKind::ALL {
        let vm = means[&(kind, PlatformKind::VmBaseline)];
        let rt = means[&(kind, PlatformKind::Rattrap)];
        compute.push(vm.0 / rt.0);
        prep.push(vm.1 / rt.1);
        transfer.push(vm.2 / rt.2);
        fail[0] += rt.3 / 4.0;
        fail[1] += vm.3 / 4.0;
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    SeedResult {
        prep_speedup: mean(&prep),
        transfer_speedup: mean(&transfer),
        compute_speedup: mean(&compute),
        rattrap_failures: fail[0],
        vm_failures: fail[1],
    }
}

/// Run the robustness study (the `seed` argument shifts every seed).
pub fn run(seed: u64) -> ExperimentOutput {
    let results: Vec<SeedResult> = SEEDS
        .par_iter()
        .map(|&s| one_seed(s.wrapping_add(seed)))
        .collect();

    let mut prep = OnlineStats::new();
    let mut transfer = OnlineStats::new();
    let mut compute = OnlineStats::new();
    let mut rt_fail = OnlineStats::new();
    let mut vm_fail = OnlineStats::new();
    for r in &results {
        prep.push(r.prep_speedup);
        transfer.push(r.transfer_speedup);
        compute.push(r.compute_speedup);
        rt_fail.push(r.rattrap_failures);
        vm_fail.push(r.vm_failures);
    }

    let mut table = Table::new(
        &format!("robustness across {} seeds (mean ± σ)", SEEDS.len()),
        &["Metric", "Paper", "Mean", "StdDev"],
    );
    table.row(&[
        "prep speedup (Rattrap vs VM)".into(),
        "16.29–16.98".into(),
        fnum(prep.mean(), 2),
        fnum(prep.std_dev(), 2),
    ]);
    table.row(&[
        "transfer speedup".into(),
        "1.17–2.04".into(),
        fnum(transfer.mean(), 2),
        fnum(transfer.std_dev(), 2),
    ]);
    table.row(&[
        "compute speedup".into(),
        "1.05–1.40".into(),
        fnum(compute.mean(), 2),
        fnum(compute.std_dev(), 2),
    ]);
    table.row(&[
        "Rattrap failure rate".into(),
        "—".into(),
        fnum(rt_fail.mean(), 3),
        fnum(rt_fail.std_dev(), 3),
    ]);
    table.row(&[
        "VM failure rate".into(),
        "—".into(),
        fnum(vm_fail.mean(), 3),
        fnum(vm_fail.std_dev(), 3),
    ]);

    let mut sc = Scorecard::new();
    sc.in_band(
        "prep speedup mean across seeds",
        (16.29, 16.98),
        prep.mean(),
        0.35,
    );
    sc.in_band(
        "transfer speedup mean across seeds",
        (1.17, 2.04),
        transfer.mean(),
        0.30,
    );
    sc.in_band(
        "compute speedup mean across seeds",
        (1.05, 1.40),
        compute.mean(),
        0.15,
    );
    sc.expect(
        "prep speedup is stable",
        "σ/mean < 15%",
        &format!("{:.1}%", 100.0 * prep.std_dev() / prep.mean()),
        prep.std_dev() / prep.mean() < 0.15,
    );
    sc.expect(
        "failure ordering holds on every seed",
        "Rattrap < VM, all seeds",
        &format!(
            "{:?}",
            results
                .iter()
                .map(|r| r.rattrap_failures < r.vm_failures)
                .collect::<Vec<_>>()
        ),
        results.iter().all(|r| r.rattrap_failures < r.vm_failures),
    );

    ExperimentOutput {
        id: "Robustness",
        body: table.render(),
        scorecard: sc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robustness_holds_across_seeds() {
        let out = run(0);
        assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
    }
}
