//! Fig. 2 — server CPU and disk-I/O timelines (1 s granularity) while
//! the VM platform serves each workload.

use super::ExperimentOutput;
use analysis::{time_series, Scorecard};
use rattrap::{run_scenario, PlatformKind, ScenarioConfig};
use workloads::WorkloadKind;

/// Run Fig. 2: the §VI setup (5 devices) against the VM platform,
/// sampling server load over the first 180 s.
pub fn run(seed: u64) -> ExperimentOutput {
    let mut body = String::new();
    let mut sc = Scorecard::new();

    for kind in WorkloadKind::ALL {
        let cfg = ScenarioConfig::paper_default(PlatformKind::VmBaseline.config(), kind, seed);
        let report = run_scenario(cfg);
        body.push_str(&time_series(
            &format!("Fig. 2 ({}) — CPU utilization", kind.label()),
            &report
                .cpu_timeline
                .iter()
                .map(|l| l * 100.0)
                .collect::<Vec<_>>(),
            "%",
            36,
        ));
        body.push_str(&time_series(
            &format!("Fig. 2 ({}) — disk reads", kind.label()),
            &report.io_read_mb_s,
            "MB/s",
            36,
        ));
        body.push_str(&time_series(
            &format!("Fig. 2 ({}) — disk writes", kind.label()),
            &report.io_write_mb_s,
            "MB/s",
            36,
        ));
        body.push('\n');

        // Observation 2 shape checks.
        let boot_cpu: f64 = report.cpu_timeline[..30].iter().sum::<f64>() / 30.0;
        sc.expect(
            &format!(
                "{}: server load present during VM boot (0–30 s)",
                kind.label()
            ),
            "> 15% mean CPU",
            &format!("{:.0}%", boot_cpu * 100.0),
            boot_cpu > 0.15,
        );
        let boot_reads: f64 = report.io_read_mb_s[..30].iter().sum();
        sc.expect(
            &format!("{}: boot streams the VM image from disk", kind.label()),
            "> 100 MB read in 0–30 s",
            &format!("{boot_reads:.0} MB"),
            boot_reads > 100.0,
        );
    }

    // Implication 2: I/O-heavy workloads write more during serving.
    let writes = |kind: WorkloadKind| {
        let cfg = ScenarioConfig::paper_default(PlatformKind::VmBaseline.config(), kind, seed);
        let rep = run_scenario(cfg);
        rep.io_write_mb_s[30..].iter().sum::<f64>()
    };
    let scan_writes = writes(WorkloadKind::VirusScan);
    let chess_writes = writes(WorkloadKind::ChessGame);
    sc.less(
        "serving-phase writes: ChessGame ≪ VirusScan",
        "ChessGame",
        chess_writes,
        "VirusScan",
        scan_writes,
    );

    ExperimentOutput {
        id: "Fig. 2",
        body,
        scorecard: sc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_reproduces_observation2() {
        let out = run(super::super::DEFAULT_SEED);
        assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
    }
}
