//! §III-E / §IV-B3 — OS profiling: the never-accessed fraction, the
//! customization inventory, and the fleet disk-savings headline.

use super::ExperimentOutput;
use analysis::{fpct, Scorecard, Table};
use containerfs::{android_x86_44_image, customize, instance_private_files};
use hostkernel::HostSpec;
use simkit::units::{format_bytes, gib};
use virt::{CloudHost, RuntimeClass};

/// Run the OS-profiling experiment.
pub fn run(_seed: u64) -> ExperimentOutput {
    let img = android_x86_44_image();
    let tracker = containerfs::android::track_offloading_accesses(&img);
    let (custom, report) = customize(&img);
    let mut sc = Scorecard::new();

    let total = img.total_bytes();
    let system = img.bytes_under("/system");
    let untouched = tracker.untouched_bytes(&img);
    let mut body = String::new();
    body.push_str(&format!("Android-x86 4.4 image: {}\n", format_bytes(total)));
    body.push_str(&format!(
        "/system: {} ({})\n",
        format_bytes(system),
        fpct(system as f64 / total as f64)
    ));
    body.push_str(&format!(
        "never accessed by offloaded codes: {} ({})\n",
        format_bytes(untouched),
        fpct(tracker.untouched_fraction(&img))
    ));

    let mut t = Table::new("§IV-B3 customization inventory", &["Removed", "Count"]);
    t.row_str(&["built-in Android apps", &report.removed_apps.to_string()]);
    t.row_str(&["shared library files (.so)", &report.removed_so.to_string()]);
    t.row_str(&["kernel modules (.ko)", &report.removed_ko.to_string()]);
    t.row_str(&["firmware libraries (.bin)", &report.removed_bin.to_string()]);
    t.row_str(&[
        "boot images (kernel+initrd)",
        &report.removed_boot.to_string(),
    ]);
    body.push_str(&t.render());
    body.push_str(&format!(
        "customized OS: {} kept ({} of the full image)\n",
        format_bytes(custom.total_bytes()),
        fpct(custom.total_bytes() as f64 / total as f64),
    ));
    let private = instance_private_files(0).total_bytes();
    body.push_str(&format!(
        "per-container private state: {} (≈{:.0}x smaller than the customized OS)\n",
        format_bytes(private),
        custom.total_bytes() as f64 / private as f64
    ));

    sc.within(
        "Observation 4: 771 MB never accessed",
        771.0,
        untouched as f64 / (1 << 20) as f64,
        0.01,
    );
    sc.within(
        "Observation 4: 68.4% never accessed",
        0.684,
        tracker.untouched_fraction(&img),
        0.01,
    );
    sc.within(
        "/system share 87.4%",
        0.874,
        system as f64 / total as f64,
        0.01,
    );
    sc.expect(
        "§IV-B3 inventory counts",
        "20 apps, 197 .so, 4372 .ko, 396 .bin",
        &format!(
            "{} apps, {} .so, {} .ko, {} .bin",
            report.removed_apps, report.removed_so, report.removed_ko, report.removed_bin
        ),
        report.removed_apps == 20
            && report.removed_so == 197
            && report.removed_ko == 4372
            && report.removed_bin == 396,
    );

    // Fleet disk savings: 5 runtimes per platform.
    let mut fleet = Table::new("disk use for 5 runtimes", &["Platform", "Disk"]);
    let mut usage = Vec::new();
    for class in [RuntimeClass::AndroidVm, RuntimeClass::CacOptimized] {
        let mut host = CloudHost::new(HostSpec::paper_server());
        for _ in 0..5 {
            host.provision(class).expect("room for five");
        }
        let label = match class {
            RuntimeClass::AndroidVm => "5 × Android VM",
            _ => "5 × CAC + shared layer",
        };
        fleet.row_str(&[label, &format_bytes(host.total_disk_usage())]);
        usage.push(host.total_disk_usage());
    }
    body.push_str(&fleet.render());
    let saving = 1.0 - usage[1] as f64 / usage[0] as f64;
    body.push_str(&format!("disk saving: {}\n", fpct(saving)));
    sc.expect(
        "headline: at least 79% disk savings",
        "≥ 0.79",
        &fpct(saving),
        saving >= 0.79,
    );
    sc.expect(
        "VM fleet is ~5.5 GiB",
        "≈ 5 × 1.1 GiB",
        &format_bytes(usage[0]),
        usage[0] > 5 * gib(1),
    );

    ExperimentOutput {
        id: "§III-E / §IV-B3 OS profile",
        body,
        scorecard: sc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn osprofile_reproduces_observation4_and_headlines() {
        let out = run(0);
        assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
    }
}
