//! Mixed-workload (cloudlet) experiment — beyond the paper's
//! per-workload runs: one shared Rattrap pool serves five devices each
//! running a *different* app simultaneously (the Cloudlet scenario the
//! security discussion §IV-E is motivated by), against the VM baseline
//! where every device still needs its own full Android VM.

use super::ExperimentOutput;
use analysis::{fnum, fpct, Scorecard, Table};
use rattrap::{run_scenario, PlatformKind, ScenarioConfig, SimulationReport};
use workloads::WorkloadKind;

fn mixed_scenario(platform: rattrap::PlatformConfig, seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_default(platform, WorkloadKind::Ocr, seed);
    cfg.devices = 5;
    cfg.device_workloads = Some(vec![
        WorkloadKind::Ocr,
        WorkloadKind::ChessGame,
        WorkloadKind::VirusScan,
        WorkloadKind::Linpack,
        WorkloadKind::ChessGame, // two chess players share cached code
    ]);
    cfg
}

fn by_kind(rep: &SimulationReport, kind: WorkloadKind) -> usize {
    rep.requests.iter().filter(|r| r.kind == kind).count()
}

/// Run the mixed-tenant comparison.
pub fn run(seed: u64) -> ExperimentOutput {
    let mut sc = Scorecard::new();
    let mut table = Table::new(
        "mixed tenancy: 5 devices, 4 distinct apps, one cloud",
        &[
            "Platform",
            "Requests",
            "Failures",
            "MeanResp(s)",
            "Instances",
            "PeakMem(MiB)",
            "Upload(MB)",
        ],
    );

    let mut reports = Vec::new();
    for platform in PlatformKind::ALL {
        let rep = run_scenario(mixed_scenario(platform.config(), seed));
        table.row(&[
            platform.label().to_string(),
            rep.requests.len().to_string(),
            fpct(rep.failure_rate()),
            fnum(rep.mean_of(|r| r.response_time().as_secs_f64()), 3),
            rep.instances_provisioned.to_string(),
            fnum(rep.peak_memory_bytes as f64 / (1024.0 * 1024.0), 0),
            fnum(rep.total_upload_bytes() as f64 / 1e6, 2),
        ]);
        reports.push((platform, rep));
    }

    let rt = &reports[0].1;
    let vm = &reports[2].1;

    // Everyone served everything.
    for kind in WorkloadKind::ALL {
        let n = by_kind(rt, kind);
        sc.expect(
            &format!("Rattrap served {}", kind.label()),
            "20 requests per device",
            &n.to_string(),
            n >= 20,
        );
    }
    // The shared pool runs mixed apps on fewer runtimes than one-per-device.
    sc.less(
        "shared pool uses fewer instances than VM-per-device",
        "Rattrap instances",
        rt.instances_provisioned as f64,
        "VM instances",
        vm.instances_provisioned as f64 + 0.5,
    );
    sc.less(
        "shared pool uses less peak memory",
        "Rattrap",
        rt.peak_memory_bytes as f64,
        "VM",
        vm.peak_memory_bytes as f64,
    );
    sc.less(
        "mixed-tenant response: Rattrap beats VM",
        "Rattrap",
        rt.mean_of(|r| r.response_time().as_secs_f64()),
        "VM",
        vm.mean_of(|r| r.response_time().as_secs_f64()),
    );
    // The two chess devices share one cached code copy on Rattrap…
    let chess_code_rt: u64 = rt
        .requests
        .iter()
        .filter(|r| r.kind == WorkloadKind::ChessGame)
        .map(|r| r.code_bytes_sent)
        .sum();
    let chess_code_vm: u64 = vm
        .requests
        .iter()
        .filter(|r| r.kind == WorkloadKind::ChessGame)
        .map(|r| r.code_bytes_sent)
        .sum();
    let apk = WorkloadKind::ChessGame.profile().app_code_bytes;
    sc.expect(
        "two chess devices share one cached APK on Rattrap",
        "1 copy vs 2 on VM",
        &format!("{} vs {}", chess_code_rt / apk, chess_code_vm / apk),
        chess_code_rt == apk && chess_code_vm == 2 * apk,
    );
    // The access controller analyzed each distinct app exactly once:
    // 3 checks per request × 100 requests.
    sc.expect(
        "access controller filtered every mixed-tenant request",
        "≥ 300 checks",
        &rt.access_checks.to_string(),
        rt.access_checks >= 300,
    );

    ExperimentOutput {
        id: "Mixed tenancy",
        body: table.render(),
        scorecard: sc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_tenancy_shape_holds() {
        let out = run(super::super::DEFAULT_SEED);
        assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
    }
}
