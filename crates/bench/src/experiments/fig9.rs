//! Fig. 9 — average performance of offloading requests: per-phase
//! decomposition for Rattrap / Rattrap(W/O) / VM, normalized to the VM
//! total, per workload. Also the §VI-C speedup bands.

use super::ExperimentOutput;
use analysis::{stacked_bars, Scorecard};
use rattrap::config::paper;
use rattrap::{run_scenario, PlatformKind, ScenarioConfig, SimulationReport};
use std::collections::BTreeMap;
use workloads::WorkloadKind;

/// Mean phase seconds of a report: (compute, prep, transfer).
fn mean_phases(rep: &SimulationReport) -> (f64, f64, f64) {
    (
        rep.mean_of(|r| r.phases.computation_execution.as_secs_f64()),
        rep.mean_of(|r| r.phases.runtime_preparation.as_secs_f64()),
        rep.mean_of(|r| (r.phases.data_transfer + r.phases.network_connection).as_secs_f64()),
    )
}

/// Mean phase decomposition over [`super::replications`] independent
/// runs on derived seeds, executed in parallel — results are identical
/// to the serial loop (the vendored `rayon` preserves input order).
fn replicated_phases(platform: PlatformKind, kind: WorkloadKind, seed: u64) -> (f64, f64, f64) {
    let runs = super::replicate(seed, super::replications(), |s| {
        let cfg = ScenarioConfig::paper_default(platform.config(), kind, s);
        mean_phases(&run_scenario(cfg))
    });
    let n = runs.len() as f64;
    let sum = runs
        .iter()
        .fold((0.0, 0.0, 0.0), |a, r| (a.0 + r.0, a.1 + r.1, a.2 + r.2));
    (sum.0 / n, sum.1 / n, sum.2 / n)
}

/// Run Fig. 9: §VI-C setup (5 devices × 20 requests, LAN WiFi), three
/// platforms per workload, identical request inflow, averaged over
/// parallel replications.
pub fn run(seed: u64) -> ExperimentOutput {
    let mut body = String::new();
    let mut sc = Scorecard::new();
    let mut prep_speedups = Vec::new();
    let mut transfer_speedups = Vec::new();
    let mut compute_speedups_rt = Vec::new();
    let mut compute_speedups_wo = Vec::new();

    for kind in WorkloadKind::ALL {
        let mut phases: BTreeMap<PlatformKind, (f64, f64, f64)> = BTreeMap::new();
        for platform in PlatformKind::ALL {
            phases.insert(platform, replicated_phases(platform, kind, seed));
        }
        let vm = phases[&PlatformKind::VmBaseline];
        let vm_total = vm.0 + vm.1 + vm.2;
        let entries: Vec<(String, Vec<f64>)> = PlatformKind::ALL
            .iter()
            .map(|p| {
                let (c, r, t) = phases[p];
                (
                    p.label().to_string(),
                    vec![c / vm_total, r / vm_total, t / vm_total],
                )
            })
            .collect();
        body.push_str(&stacked_bars(
            &format!("Fig. 9 ({}) — normalized mean request time", kind.label()),
            &["compute", "runtime prep", "data transfer"],
            &entries,
            50,
        ));
        body.push('\n');

        let rt = phases[&PlatformKind::Rattrap];
        let wo = phases[&PlatformKind::RattrapWithout];
        prep_speedups.push(vm.1 / rt.1);
        transfer_speedups.push(vm.2 / rt.2);
        compute_speedups_rt.push(vm.0 / rt.0);
        compute_speedups_wo.push(vm.0 / wo.0);

        sc.less(
            &format!("{}: Rattrap total below VM total", kind.label()),
            "Rattrap",
            rt.0 + rt.1 + rt.2,
            "VM",
            vm_total,
        );
        sc.less(
            &format!("{}: W/O total between Rattrap and VM", kind.label()),
            "Rattrap(W/O)",
            wo.0 + wo.1 + wo.2,
            "VM",
            vm_total,
        );
    }

    // §VI-C bands (generous slack: queueing noise and our substrate).
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    sc.in_band(
        "runtime-prep speedup, Rattrap (band 16.29–16.98)",
        paper::PREP_SPEEDUP_RATTRAP,
        mean(&prep_speedups),
        0.35,
    );
    sc.in_band(
        "data-transfer speedup, Rattrap (band 1.17–2.04)",
        paper::TRANSFER_SPEEDUP_RATTRAP,
        mean(&transfer_speedups),
        0.30,
    );
    sc.in_band(
        "computation speedup, Rattrap (band 1.05–1.40)",
        paper::COMPUTE_SPEEDUP_RATTRAP,
        mean(&compute_speedups_rt),
        0.15,
    );
    sc.in_band(
        "computation speedup, W/O (band 1.02–1.13)",
        paper::COMPUTE_SPEEDUP_WO,
        mean(&compute_speedups_wo),
        0.10,
    );

    body.push_str(&format!(
        "speedups vs VM — prep: {:?}\n           transfer: {:?}\n            compute: {:?}\n",
        prep_speedups
            .iter()
            .map(|x| (x * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
        transfer_speedups
            .iter()
            .map(|x| (x * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
        compute_speedups_rt
            .iter()
            .map(|x| (x * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
    ));

    ExperimentOutput {
        id: "Fig. 9",
        body,
        scorecard: sc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_reproduces_section_vi_c() {
        let out = run(super::super::DEFAULT_SEED);
        assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
    }

    #[test]
    fn parallel_replications_identical_to_serial() {
        let seed = super::super::DEFAULT_SEED;
        let parallel = replicated_phases(PlatformKind::Rattrap, WorkloadKind::Ocr, seed);
        // The serial reference: same derived seeds, plain loop.
        let runs: Vec<(f64, f64, f64)> = (0..super::super::replications())
            .map(|i| {
                let cfg = ScenarioConfig::paper_default(
                    PlatformKind::Rattrap.config(),
                    WorkloadKind::Ocr,
                    simkit::derive_seed(seed, i),
                );
                mean_phases(&run_scenario(cfg))
            })
            .collect();
        let n = runs.len() as f64;
        let serial = runs
            .iter()
            .fold((0.0, 0.0, 0.0), |a, r| (a.0 + r.0, a.1 + r.1, a.2 + r.2));
        let serial = (serial.0 / n, serial.1 / n, serial.2 / n);
        // Bit-identical, not approximately equal: same seeds, same
        // fold order, order-preserving parallel map.
        assert_eq!(parallel, serial);
    }
}
