//! `exp_drift` — modeled-vs-real latency error per kernel.
//!
//! The calibrated cycle profiles price every offloaded request in
//! megacycles; the four kernels are genuinely executable. This
//! experiment runs each kernel for real on an [`exec::RealBackend`]
//! pool across all input sizes, compares the median wall time with the
//! cycle model's charge at the paper server's clock, and reports the
//! drift ratio `real / modeled` per `(kernel, size)` cell — the
//! calibration signal the committed
//! `crates/exec/data/calibration.json` records.
//!
//! Determinism caveat: wall times depend on the machine, so the drift
//! *values* are not pinned by any golden; what the scorecard pins is
//! coverage (all four kernels, all sizes), output verifiability
//! (checksums match an independent execution), and that replaying the
//! identity calibration reproduces the modeled rattrap digest bit for
//! bit.

use super::ExperimentOutput;
use analysis::{Scorecard, Table};
use exec::{measure_drift, DriftConfig, DriftRow, RealBackend, ReplayBackend, SizeClass};
use rattrap::platform::PlatformKind;
use rattrap::simulation::{ScenarioConfig, Simulation};
use std::sync::Arc;
use workloads::WorkloadKind;

/// Run the drift sweep: every kernel at every size, `reps` repetitions
/// per cell (1 in smoke mode — CI bounds wall time, not precision).
pub fn sweep(seed: u64, smoke: bool) -> Vec<DriftRow> {
    let cfg = DriftConfig {
        reps: if smoke { 1 } else { 5 },
        seed,
        ..DriftConfig::default()
    };
    let backend = RealBackend::new(2);
    measure_drift(&backend, &cfg)
}

fn digest_with(seed: u64, backend: exec::BackendHandle) -> u64 {
    let cfg =
        ScenarioConfig::paper_default(PlatformKind::Rattrap.config(), WorkloadKind::Ocr, seed);
    let mut sim = Simulation::new(cfg);
    sim.set_backend(backend);
    sim.run().digest()
}

/// Run the drift study (smoke mode via `RATTRAP_BENCH_SMOKE`).
pub fn run(seed: u64) -> ExperimentOutput {
    let smoke = super::smoke();
    let rows = sweep(seed, smoke);

    let mut table = Table::new(
        "modeled vs real kernel latency (paper server @ 2.66 GHz)",
        &[
            "Kernel",
            "Size",
            "Modeled ms",
            "Real ms",
            "Drift ×",
            "Checksum",
        ],
    );
    for r in &rows {
        table.row(&[
            r.kind.label().to_string(),
            r.size.label().to_string(),
            format!("{:.2}", r.modeled_ms),
            format!("{:.2}", r.real_ms),
            format!("{:.3}", r.ratio),
            format!("{:016x}", r.checksum),
        ]);
    }

    let mut sc = Scorecard::new();
    let cells = WorkloadKind::ALL.len() * SizeClass::ALL.len();
    sc.expect(
        "every kernel measured at every size",
        &format!("{cells} cells"),
        &format!("{} cells", rows.len()),
        rows.len() == cells,
    );
    sc.expect(
        "drift ratios are finite and positive",
        "0 < ratio < ∞",
        &format!(
            "min {:.3}, max {:.3}",
            rows.iter().map(|r| r.ratio).fold(f64::INFINITY, f64::min),
            rows.iter().map(|r| r.ratio).fold(0.0, f64::max)
        ),
        rows.iter().all(|r| r.ratio.is_finite() && r.ratio > 0.0),
    );
    let verifiable = rows
        .iter()
        .all(|r| exec::execute_kernel(r.kind, r.size, seed).checksum == r.checksum);
    sc.expect(
        "real outputs verifiable by independent re-execution",
        "checksums reproduce",
        if verifiable { "all match" } else { "MISMATCH" },
        verifiable,
    );
    sc.expect(
        "real wall grows with input size",
        "L > S per kernel",
        "per-kernel monotone S→L",
        WorkloadKind::ALL.iter().all(|&k| {
            let ms = |s: SizeClass| {
                rows.iter()
                    .find(|r| r.kind == k && r.size == s)
                    .map(|r| r.real_ms)
                    .unwrap_or(0.0)
            };
            ms(SizeClass::Large) > ms(SizeClass::Small)
        }),
    );
    let modeled_digest = digest_with(seed, exec::modeled());
    let replay_digest = digest_with(seed, Arc::new(ReplayBackend::identity()));
    sc.expect(
        "identity replay ≡ modeled (engine digest)",
        "bit-identical",
        &format!("{modeled_digest:016x} vs {replay_digest:016x}"),
        modeled_digest == replay_digest,
    );

    ExperimentOutput {
        id: "Drift",
        body: table.render(),
        scorecard: sc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_covers_all_cells() {
        let rows = sweep(super::super::DEFAULT_SEED, true);
        assert_eq!(rows.len(), 12);
    }
}
