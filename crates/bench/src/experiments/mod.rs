//! One module per table/figure of the paper's evaluation. Each exposes
//! a `run(seed) -> ExperimentOutput` so the `exp_*` binaries stay thin
//! and integration tests can exercise the full harness.

pub mod ablations;
pub mod decision;
pub mod docker;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig3;
pub mod fig9;
pub mod mixed;
pub mod osprofile;
pub mod robustness;
pub mod scheduler;
pub mod table1;
pub mod table2;

use analysis::Scorecard;

/// What every experiment produces: human-readable output plus the
/// paper-vs-measured scorecard.
#[derive(Debug)]
pub struct ExperimentOutput {
    /// Experiment id, e.g. `"Table I"`.
    pub id: &'static str,
    /// Rendered tables/figures.
    pub body: String,
    /// Shape checks against the published numbers.
    pub scorecard: Scorecard,
}

impl ExperimentOutput {
    /// Render body + scorecard.
    pub fn render(&self) -> String {
        format!("{}\n{}\n", self.body, self.scorecard.render())
    }
}

/// The default seed the binaries use (override with the first CLI arg).
pub const DEFAULT_SEED: u64 = 20170529; // IPDPS'17 started May 29, 2017

/// Number of independent replications the averaging experiments run.
pub const REPLICATIONS: u64 = 3;

/// Run `n` independent replications of `f` in parallel, one derived
/// seed each, returning results in replication order.
///
/// Replication `i` always receives `derive_seed(seed, i)`, and the
/// vendored `rayon` collects in input order, so the output is
/// bit-identical to the serial loop `(0..n).map(..)` — parallelism is
/// pure wall-clock speedup, never a source of nondeterminism.
pub fn replicate<R: Send>(seed: u64, n: u64, f: impl Fn(u64) -> R + Sync) -> Vec<R> {
    use rayon::prelude::*;
    let seeds: Vec<u64> = (0..n).map(|i| simkit::derive_seed(seed, i)).collect();
    seeds.par_iter().map(|&s| f(s)).collect()
}

/// Parse the seed from CLI args.
pub fn seed_from_args() -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}
