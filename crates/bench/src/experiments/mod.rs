//! One module per table/figure of the paper's evaluation. Each exposes
//! a `run(seed) -> ExperimentOutput` so the `exp_*` binaries stay thin
//! and integration tests can exercise the full harness.

pub mod ablations;
pub mod cluster;
pub mod decision;
pub mod docker;
pub mod drift;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig3;
pub mod fig9;
pub mod geo;
pub mod mixed;
pub mod osprofile;
pub mod robustness;
pub mod scheduler;
pub mod storm;
pub mod table1;
pub mod table2;

use analysis::Scorecard;

/// What every experiment produces: human-readable output plus the
/// paper-vs-measured scorecard.
#[derive(Debug)]
pub struct ExperimentOutput {
    /// Experiment id, e.g. `"Table I"`.
    pub id: &'static str,
    /// Rendered tables/figures.
    pub body: String,
    /// Shape checks against the published numbers.
    pub scorecard: Scorecard,
}

impl ExperimentOutput {
    /// Render body + scorecard.
    pub fn render(&self) -> String {
        format!("{}\n{}\n", self.body, self.scorecard.render())
    }
}

/// The default seed the binaries use (override with the first CLI arg).
pub const DEFAULT_SEED: u64 = 20170529; // IPDPS'17 started May 29, 2017

/// Number of independent replications the averaging experiments run.
pub const REPLICATIONS: u64 = 3;

/// `true` when `RATTRAP_BENCH_SMOKE` is set (to anything but `0`): CI
/// smoke mode. Experiments shrink to one replication and reduced
/// request counts so the whole suite finishes in seconds. Smoke runs
/// check that the harness *executes*, not that the paper's numbers
/// hold — scorecards still render but bands may miss.
pub fn smoke() -> bool {
    std::env::var("RATTRAP_BENCH_SMOKE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// Replications to run: [`REPLICATIONS`] normally, 1 in smoke mode.
pub fn replications() -> u64 {
    if smoke() {
        1
    } else {
        REPLICATIONS
    }
}

/// Per-device request count for sweep experiments: `full` normally, a
/// quarter (at least 2) in smoke mode.
pub fn smoke_requests(full: u32) -> u32 {
    if smoke() {
        (full / 4).max(2)
    } else {
        full
    }
}

/// Run `n` independent replications of `f` in parallel, one derived
/// seed each, returning results in replication order.
///
/// Replication `i` always receives `derive_seed(seed, i)`, and the
/// vendored `rayon` collects in input order, so the output is
/// bit-identical to the serial loop `(0..n).map(..)` — parallelism is
/// pure wall-clock speedup, never a source of nondeterminism.
pub fn replicate<R: Send>(seed: u64, n: u64, f: impl Fn(u64) -> R + Sync) -> Vec<R> {
    use rayon::prelude::*;
    let seeds: Vec<u64> = (0..n).map(|i| simkit::derive_seed(seed, i)).collect();
    seeds.par_iter().map(|&s| f(s)).collect()
}

/// Parse the seed from CLI args.
pub fn seed_from_args() -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Parse an engine selector: `serial`, `sharded` (one thread per
/// core), or `sharded:N`.
pub fn parse_engine(s: &str) -> Option<fleet::EngineMode> {
    match s {
        "serial" => Some(fleet::EngineMode::Serial),
        "sharded" => Some(fleet::EngineMode::Sharded(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )),
        _ => s
            .strip_prefix("sharded:")
            .and_then(|n| n.parse().ok())
            .map(fleet::EngineMode::Sharded),
    }
}

/// The engine the `RATTRAP_ENGINE` env var selects (fleet experiments
/// and ci.sh smoke honour it); unset or unparsable means serial. Both
/// engines produce bit-identical reports — the knob trades memory for
/// wall-clock only, so every scorecard holds either way.
pub fn engine_from_env() -> fleet::EngineMode {
    std::env::var("RATTRAP_ENGINE")
        .ok()
        .as_deref()
        .and_then(parse_engine)
        .unwrap_or(fleet::EngineMode::Serial)
}

/// Human-readable label for an engine mode (run-meta, JSON reports).
pub fn engine_label(mode: fleet::EngineMode) -> String {
    match mode {
        fleet::EngineMode::Serial => "serial".to_owned(),
        fleet::EngineMode::Sharded(n) => format!("sharded:{n}"),
    }
}
