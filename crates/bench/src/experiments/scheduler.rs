//! Scheduler ablation — the warm-pool trade-off the paper's
//! introduction discusses: "pre-starting VMs can reduce the VM startup
//! time, but it would inevitably incur high resource cost".
//!
//! We quantify both sides on trace-driven arrivals: warm spares remove
//! the remaining cold starts, at the price of held memory; with
//! Rattrap's 1.75 s container start the on-demand platform is already
//! close to just-in-time, so the warm pool buys little — exactly the
//! paper's argument for fixing the runtime instead of pre-provisioning.

use super::ExperimentOutput;
use analysis::{fnum, fpct, Scorecard, Table};
use rattrap::{run_scenario, ArrivalModel, PlatformKind, ScenarioConfig, SimulationReport};
use simkit::SimDuration;
use traces::{generate, TraceConfig};
use workloads::WorkloadKind;

fn trace_scenario(
    platform: rattrap::PlatformConfig,
    trace: Vec<Vec<simkit::SimTime>>,
    seed: u64,
) -> ScenarioConfig {
    let users = trace.len() as u32;
    ScenarioConfig {
        arrivals: ArrivalModel::Trace(trace),
        devices: users,
        requests_per_device: 0,
        sample_horizon: SimDuration::from_secs(60),
        ..ScenarioConfig::paper_default(platform, WorkloadKind::ChessGame, seed)
    }
}

fn summarize(rep: &SimulationReport) -> (f64, f64, f64) {
    (
        rep.failure_rate(),
        rep.mean_of(|r| r.phases.runtime_preparation.as_secs_f64()),
        rep.peak_memory_bytes as f64 / (1024.0 * 1024.0),
    )
}

/// Run the warm-pool ablation on a 3 h trace.
pub fn run(seed: u64) -> ExperimentOutput {
    let trace = generate(&TraceConfig {
        duration: SimDuration::from_secs(3 * 3600),
        seed,
        ..Default::default()
    });
    let mut sc = Scorecard::new();
    let mut table = Table::new(
        "Monitor & Scheduler: warm-pool ablation (ChessGame trace)",
        &["Configuration", "Failures", "MeanPrep(s)", "PeakMem(MiB)"],
    );

    let mut results = Vec::new();
    for (label, spares) in [
        ("Rattrap on-demand", 0usize),
        ("Rattrap + 1 warm spare", 1),
        ("Rattrap + 2 warm spares", 2),
    ] {
        let platform = PlatformKind::Rattrap.config().with_warm_spares(spares);
        let rep = run_scenario(trace_scenario(platform, trace.clone(), seed));
        let (fail, prep, mem) = summarize(&rep);
        table.row(&[label.to_string(), fpct(fail), fnum(prep, 3), fnum(mem, 0)]);
        results.push((fail, prep, mem));
    }
    // The VM baseline for contrast: pre-starting would be the only cure.
    let vm = run_scenario(trace_scenario(
        PlatformKind::VmBaseline.config(),
        trace.clone(),
        seed,
    ));
    let (vm_fail, vm_prep, vm_mem) = summarize(&vm);
    table.row(&[
        "VM on-demand".to_string(),
        fpct(vm_fail),
        fnum(vm_prep, 3),
        fnum(vm_mem, 0),
    ]);

    let (od_fail, od_prep, od_mem) = results[0];
    let (w2_fail, w2_prep, w2_mem) = results[2];
    sc.expect(
        "warm spares do not hurt failures",
        "failures(warm2) ≤ failures(on-demand)",
        &format!("{} vs {}", fpct(w2_fail), fpct(od_fail)),
        w2_fail <= od_fail + 1e-9,
    );
    sc.less(
        "warm spares cut mean prep",
        "warm-2",
        w2_prep,
        "on-demand",
        od_prep,
    );
    sc.expect(
        "warm pool costs held memory",
        "peak(warm2) ≥ peak(on-demand)",
        &format!("{w2_mem:.0} vs {od_mem:.0} MiB"),
        w2_mem >= od_mem,
    );
    sc.less(
        "even on-demand Rattrap beats the VM on failures",
        "Rattrap on-demand",
        od_fail,
        "VM",
        vm_fail,
    );
    sc.less(
        "on-demand Rattrap prep beats the VM's",
        "Rattrap",
        od_prep,
        "VM",
        vm_prep,
    );
    sc.expect(
        "Rattrap's on-demand start is already near just-in-time",
        "warm-pool prep saving < 1 s",
        &format!("{:.3}s", od_prep - w2_prep),
        od_prep - w2_prep < 1.0,
    );
    let _ = vm_mem;

    ExperimentOutput {
        id: "Scheduler ablation",
        body: table.render(),
        scorecard: sc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_ablation_shape_holds() {
        let out = run(super::super::DEFAULT_SEED);
        assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
    }
}
