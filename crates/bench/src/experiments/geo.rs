//! Geo — the multi-region edge hierarchy's evaluation (`exp_geo`).
//!
//! The paper offloads to one nearby server; this experiment asks what
//! happens when the users are planetary and the hardware is not: three
//! regions on a WAN ring, each with a capacity-fixed edge PoP and an
//! elastic regional core, against the obvious alternative — the same
//! total hardware centralized in one region, with every remote user
//! paying the WAN to reach it.
//!
//! 1. **Latency at the edge** — per-region p50/p99 response under a
//!    sun-following diurnal load (each region's LiveLab day is shifted
//!    by its timezone). The acceptance bar: geo beats the centralized
//!    baseline's p99 in every remote region.
//! 2. **Cloud-burst** — edge PoPs run all hosts active (a PoP has no
//!    spare racks); when one saturates, the autoscaler borrows standby
//!    hosts from the regional core. The run must show bursts.
//! 3. **Follow-the-sun** — the rebalancer migrates warm containers
//!    from the hottest edge to the coldest across regions over the
//!    WAN fabric. The run must complete cross-region migrations.
//!
//! The WAN model is deliberately pessimistic about per-flow transfer
//! speed: `INTER_REGION_FLOW_BPS` reflects what a single mobile-
//! offloading flow actually sustains across a continent at ~150 ms
//! RTT (a few Mbit/s), not the provisioned trunk capacity — that is
//! the regime where edge locality pays. Migration checkpoints are
//! bulk transfers striped across parallel streams, so they keep the
//! provisioned `inter_bps` backbone rate.
//!
//! Every number is engine-independent; the headline geo run doubles as
//! a cross-engine determinism check (serial vs sharded replay).

use super::ExperimentOutput;
use analysis::{fnum, Scorecard, Table};
use fleet::EngineMode;
use geo::{run_geo_with, GeoConfig, GeoReport, TierSpec};
use obsv::Recorder;
use simkit::SimDuration;

/// Regions on the WAN ring.
pub const REGIONS: usize = 3;

/// Effective per-flow throughput across one or more inter-region hops
/// (bytes/s): ~4 Mbit/s, a single TCP flow at intercontinental RTT.
const INTER_REGION_FLOW_BPS: f64 = 5.0e5;

/// One-way inter-region hop latency added per ring hop.
const HOP_RTT_MS: u64 = 75;

fn wan(cfg: &mut GeoConfig) {
    cfg.wan.flow_bps = Some(INTER_REGION_FLOW_BPS);
    cfg.wan.hop_rtt = SimDuration::from_millis(HOP_RTT_MS);
    // Ten simulated minutes of each region's (offset) LiveLab day —
    // enough for the autoscaler and rebalancer to act at both scales.
    cfg.traffic.duration = SimDuration::from_secs(600);
    // The diurnal imbalance (one region at peak while another sleeps)
    // is the signal; key the rebalancer low enough to act on it.
    cfg.rebalance.imbalance_threshold = 0.10;
    cfg.rebalance.min_interval = SimDuration::from_secs(30);
}

/// Per-region sizing: users, edge hosts (all active — a PoP is
/// capacity-fixed), core (hosts, initially active; the rest is the
/// burst pool).
fn sizing(smoke: bool) -> (u32, usize, (usize, usize)) {
    if smoke {
        (500, 2, (4, 1))
    } else {
        (34_000, 104, (80, 24))
    }
}

/// The geo deployment: hardware at every region's edge and core.
pub fn geo_cfg(seed: u64, smoke: bool) -> GeoConfig {
    let (users, edge, (core, core_active)) = sizing(smoke);
    let mut cfg = GeoConfig::paper_default(REGIONS, seed);
    wan(&mut cfg);
    for r in &mut cfg.regions {
        r.users = users;
        r.edge.hosts = edge;
        r.edge.initial_active = edge;
        r.core.hosts = core;
        r.core.initial_active = core_active;
    }
    cfg
}

/// The centralized baseline: identical users, identical total
/// hardware, all of it in region 0 — regions 1.. are users-only, and
/// every one of their requests crosses the WAN.
pub fn single_region_cfg(seed: u64, smoke: bool) -> GeoConfig {
    let (users, edge, (core, core_active)) = sizing(smoke);
    let mut cfg = GeoConfig::paper_default(REGIONS, seed);
    wan(&mut cfg);
    for r in &mut cfg.regions {
        r.users = users;
        r.edge = TierSpec {
            hosts: 0,
            initial_active: 0,
            ..TierSpec::edge()
        };
        r.core = TierSpec {
            hosts: 0,
            initial_active: 0,
            ..TierSpec::core()
        };
    }
    cfg.regions[0].edge = TierSpec {
        hosts: edge * REGIONS,
        initial_active: edge * REGIONS,
        ..TierSpec::edge()
    };
    cfg.regions[0].core = TierSpec {
        hosts: core * REGIONS,
        initial_active: core_active * REGIONS,
        ..TierSpec::core()
    };
    cfg
}

fn terminal_ok(rep: &GeoReport) -> bool {
    rep.summary.completed_remote + rep.summary.fallback_local + rep.summary.abandoned
        == rep.summary.submitted
}

/// Run the geo study with an explicit smoke flag.
pub fn run_scaled(seed: u64, smoke: bool) -> ExperimentOutput {
    run_scaled_with(seed, smoke, super::engine_from_env())
}

/// Run the geo study under an explicit engine. The headline run is
/// replayed under the *other* engine family (serial ↔ sharded) and the
/// digests must match bit for bit.
pub fn run_scaled_with(seed: u64, smoke: bool, engine: EngineMode) -> ExperimentOutput {
    let gcfg = geo_cfg(seed, smoke);
    let bcfg = single_region_cfg(seed, smoke);

    let grep = run_geo_with(&gcfg, Recorder::disabled(), engine);
    let brep = run_geo_with(&bcfg, Recorder::disabled(), engine);

    // Cross-engine determinism on the headline run.
    let other = match engine {
        EngineMode::Serial => EngineMode::Sharded(2),
        EngineMode::Sharded(_) => EngineMode::Serial,
    };
    let replay = run_geo_with(&gcfg, Recorder::disabled(), other);

    let total_users: u32 = gcfg.regions.iter().map(|r| r.users).sum();
    let mut table = Table::new(
        &format!(
            "latency at the edge — {total_users} users, {REGIONS} regions, diurnal offsets, \
             geo vs centralized ({} engine)",
            super::engine_label(engine),
        ),
        &[
            "Region",
            "Submitted",
            "Cross-region",
            "geo p50 (s)",
            "geo p99 (s)",
            "central p50 (s)",
            "central p99 (s)",
            "p99 delta",
        ],
    );
    for (i, (g, b)) in grep
        .summary
        .regions
        .iter()
        .zip(&brep.summary.regions)
        .enumerate()
    {
        table.row(&[
            i.to_string(),
            g.submitted.to_string(),
            format!(
                "{:.1}%",
                100.0 * g.cross_region as f64 / g.submitted.max(1) as f64
            ),
            fnum(g.p50_response_s, 2),
            fnum(g.p99_response_s, 2),
            fnum(b.p50_response_s, 2),
            fnum(b.p99_response_s, 2),
            format!("{:+.2}s", g.p99_response_s - b.p99_response_s),
        ]);
    }

    let mb = |bytes: u64| format!("{:.1} MB", bytes as f64 / 1e6);
    let mut ctable = Table::new(
        "control plane — burst, rebalance, WAN traffic",
        &["Metric", "geo", "centralized"],
    );
    ctable.row(&[
        "core scale-ups".into(),
        grep.control.scale_ups.to_string(),
        brep.control.scale_ups.to_string(),
    ]);
    ctable.row(&[
        "cloud-bursts (edge → core standby)".into(),
        grep.control.bursts.to_string(),
        brep.control.bursts.to_string(),
    ]);
    ctable.row(&[
        "drains".into(),
        grep.control.drains.to_string(),
        brep.control.drains.to_string(),
    ]);
    ctable.row(&[
        "migrations completed".into(),
        format!(
            "{} of {}",
            grep.control.migrations_completed, grep.control.migrations_started
        ),
        format!(
            "{} of {}",
            brep.control.migrations_completed, brep.control.migrations_started
        ),
    ]);
    ctable.row(&[
        "migration bytes over the fabric".into(),
        mb(grep.control.migration_bytes),
        mb(brep.control.migration_bytes),
    ]);
    ctable.row(&[
        "request payload over the WAN".into(),
        mb(grep.control.wan_request_bytes),
        mb(brep.control.wan_request_bytes),
    ]);
    ctable.row(&[
        "cross-region routes".into(),
        grep.control.cross_region_routes.to_string(),
        brep.control.cross_region_routes.to_string(),
    ]);
    ctable.row(&[
        "shed".into(),
        grep.control.shed.to_string(),
        brep.control.shed.to_string(),
    ]);
    ctable.row(&[
        "delivered".into(),
        format!(
            "{} remote + {} local of {}",
            grep.summary.completed_remote, grep.summary.fallback_local, grep.summary.submitted
        ),
        format!(
            "{} remote + {} local of {}",
            brep.summary.completed_remote, brep.summary.fallback_local, brep.summary.submitted
        ),
    ]);

    let mut sc = Scorecard::new();
    let remote_win = (1..REGIONS)
        .all(|r| grep.summary.regions[r].p99_response_s < brep.summary.regions[r].p99_response_s);
    sc.expect(
        "geo wins p99 in every remote region",
        "geo p99 < centralized p99 for regions 1..",
        &(1..REGIONS)
            .map(|r| {
                format!(
                    "r{r}: {:.2} vs {:.2}",
                    grep.summary.regions[r].p99_response_s, brep.summary.regions[r].p99_response_s
                )
            })
            .collect::<Vec<_>>()
            .join(", "),
        remote_win,
    );
    sc.expect(
        "the home edge serves the majority of geo traffic",
        "cross-region routes < 50% of submitted",
        &format!(
            "{} of {}",
            grep.control.cross_region_routes, grep.summary.submitted
        ),
        grep.control.cross_region_routes * 2 < grep.summary.submitted,
    );
    sc.expect(
        "a saturated edge bursts into core standby",
        "bursts ≥ 1",
        &grep.control.bursts.to_string(),
        grep.control.bursts >= 1,
    );
    sc.expect(
        "follow-the-sun completes warm migrations",
        "migrations completed ≥ 1",
        &grep.control.migrations_completed.to_string(),
        grep.control.migrations_completed >= 1,
    );
    sc.expect(
        "centralizing pushes the remote payload across the WAN",
        "centralized WAN request bytes > geo's",
        &format!(
            "{} vs {}",
            mb(brep.control.wan_request_bytes),
            mb(grep.control.wan_request_bytes)
        ),
        brep.control.wan_request_bytes > grep.control.wan_request_bytes,
    );
    sc.expect(
        "every request reaches a terminal phase (both deployments)",
        "remote + local + abandoned = submitted",
        &format!(
            "geo {} of {}, centralized {} of {}",
            grep.summary.completed_remote + grep.summary.fallback_local + grep.summary.abandoned,
            grep.summary.submitted,
            brep.summary.completed_remote + brep.summary.fallback_local + brep.summary.abandoned,
            brep.summary.submitted,
        ),
        terminal_ok(&grep) && terminal_ok(&brep),
    );
    sc.expect(
        "same seed, either engine, bit-identical report",
        &format!("{:#018x}", grep.digest()),
        &format!("{:#018x}", replay.digest()),
        grep.digest() == replay.digest(),
    );

    ExperimentOutput {
        id: "Geo",
        body: format!("{}\n{}", table.render(), ctable.render()),
        scorecard: sc,
    }
}

/// Run the geo study (smoke mode via `RATTRAP_BENCH_SMOKE`).
pub fn run(seed: u64) -> ExperimentOutput {
    run_scaled(seed, super::smoke())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_scorecard_passes_in_smoke_scale() {
        let out = run_scaled(super::super::DEFAULT_SEED, true);
        assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
    }
}
