//! Fig. 3 — composition of migrated data per Android VM: mobile code
//! vs files + parameters vs control messages.

use super::ExperimentOutput;
use analysis::{stacked_bars, Scorecard};
use rattrap::{run_scenario, PlatformKind, ScenarioConfig};
use workloads::WorkloadKind;

/// Run Fig. 3: the VM platform with 5 devices (= 5 VMs); for each VM,
/// break its migrated data into the three components.
pub fn run(seed: u64) -> ExperimentOutput {
    let mut body = String::new();
    let mut sc = Scorecard::new();

    for kind in WorkloadKind::ALL {
        let cfg = ScenarioConfig::paper_default(PlatformKind::VmBaseline.config(), kind, seed);
        let report = run_scenario(cfg);
        let profile = kind.profile();

        // Per-VM (device) composition, normalized per VM.
        let mut entries = Vec::new();
        let mut code_fracs = Vec::new();
        for vm in 0..5u32 {
            let reqs: Vec<_> = report.requests.iter().filter(|r| r.device == vm).collect();
            let code: u64 = reqs.iter().map(|r| r.code_bytes_sent).sum();
            let control: u64 = reqs.len() as u64 * profile.control_bytes;
            let files: u64 = reqs.iter().map(|r| r.upload_bytes).sum::<u64>() - code - control;
            let total = (code + files + control).max(1) as f64;
            entries.push((
                format!("VM {}", vm + 1),
                vec![
                    code as f64 / total,
                    files as f64 / total,
                    control as f64 / total,
                ],
            ));
            code_fracs.push(code as f64 / total);
        }
        body.push_str(&stacked_bars(
            &format!(
                "Fig. 3 ({}) — migrated-data composition per VM",
                kind.label()
            ),
            &["mobile code", "files+params", "control"],
            &entries,
            40,
        ));
        body.push('\n');

        // Observation 3: the same code is pushed into every VM…
        sc.expect(
            &format!("{}: every VM received one code copy", kind.label()),
            "5 × app code",
            &format!(
                "{} bytes total",
                report
                    .requests
                    .iter()
                    .map(|r| r.code_bytes_sent)
                    .sum::<u64>()
            ),
            report
                .requests
                .iter()
                .map(|r| r.code_bytes_sent)
                .sum::<u64>()
                == 5 * profile.app_code_bytes,
        );
        // …and for ChessGame/Linpack the code is > 50 % of migrated data.
        let mean_code_frac = code_fracs.iter().sum::<f64>() / code_fracs.len() as f64;
        match kind {
            WorkloadKind::ChessGame | WorkloadKind::Linpack => {
                sc.expect(
                    &format!("{}: mobile code > 50% of migrated data", kind.label()),
                    "> 0.5",
                    &format!("{mean_code_frac:.2}"),
                    mean_code_frac > 0.5,
                );
            }
            WorkloadKind::Ocr | WorkloadKind::VirusScan => {
                sc.expect(
                    &format!("{}: payload-dominated migration", kind.label()),
                    "code < 50%",
                    &format!("{mean_code_frac:.2}"),
                    mean_code_frac < 0.5,
                );
            }
        }
    }

    ExperimentOutput {
        id: "Fig. 3",
        body,
        scorecard: sc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_reproduces_observation3() {
        let out = run(super::super::DEFAULT_SEED);
        assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
    }
}
