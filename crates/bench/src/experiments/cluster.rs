//! Cluster — the fleet control plane's evaluation (`exp_cluster`).
//!
//! The paper runs one Rattrap server; this experiment runs N of them
//! under `fleet`'s router/admission/autoscaler/rebalancer and asks the
//! questions a deployment would:
//!
//! 1. **Scaling** — does cloud throughput scale with host count on a
//!    skewed LiveLab day heavy enough to saturate one server? The
//!    acceptance bar is ≥ 2× from one host to four.
//! 2. **Faults + rebalancing** — with host crashes injected and an
//!    aggressive imbalance threshold, do crash re-routes and
//!    checkpoint migrations actually happen, and does the exported
//!    obsv trace carry the evidence (migrate spans, reroute instants)?
//! 3. **Elasticity** — starting from a single active host with three
//!    standby, does the credit-damped autoscaler grow the fleet and
//!    land near the static-fleet throughput?
//!
//! Every run is seeded-deterministic; the 4-host scaling cell doubles
//! as a digest-equality check, and the faulty cell is run twice (bare
//! and traced) to prove observation does not perturb the simulation.

use super::ExperimentOutput;
use analysis::{fnum, Scorecard, Table};
use fleet::{run_fleet_with, EngineMode, FleetConfig, FleetReport};
use obsv::{Recorder, RecorderConfig, Subsystem, TraceEvent};
use rayon::prelude::*;
use simkit::faults::FaultConfig;
use simkit::SimDuration;

/// Host counts swept by the scaling study.
pub const HOST_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Users that saturate even the 8-host cell on the LanWifi scenario
/// (one server peaks around 5 req/s remote; 1600 users at LiveLab
/// session rates offer ~28 req/s, so every fleet below eight hosts
/// sheds and the 4 → 8 cell still shows headroom).
const STRESS_USERS: u32 = 1600;

/// The scaling-sweep scenario at `hosts` hosts.
pub fn scaling_cfg(hosts: usize, seed: u64, smoke: bool) -> FleetConfig {
    let mut cfg = FleetConfig::paper_default(hosts, seed);
    cfg.traffic.users = STRESS_USERS;
    if smoke {
        cfg.traffic.duration = SimDuration::from_secs(900);
    }
    cfg
}

/// The fault study: four hosts, crash-heavy plan, rebalancer keyed
/// low enough that the skew across hosts triggers migrations.
fn faulty_cfg(seed: u64, smoke: bool) -> FleetConfig {
    let mut cfg = FleetConfig::paper_default(4, seed);
    cfg.traffic.users = 400;
    cfg.faults = FaultConfig::scaled(if smoke { 2.0 } else { 1.0 });
    cfg.rebalance.imbalance_threshold = 0.25;
    if smoke {
        cfg.traffic.duration = SimDuration::from_secs(1200);
    }
    cfg
}

/// The elasticity study: same hardware as the 4-host cell, but only
/// one host routable at t = 0 — growth is the autoscaler's job.
fn elastic_cfg(seed: u64, smoke: bool) -> FleetConfig {
    let mut cfg = FleetConfig::paper_default(4, seed);
    cfg.traffic.users = 400;
    cfg.initial_active = 1;
    cfg.autoscale = fleet::AutoscalePolicy::standard();
    if smoke {
        cfg.traffic.duration = SimDuration::from_secs(900);
    }
    cfg
}

/// Count trace evidence: completed `migrate` root spans (Virt) and
/// crash `reroute` instants (Fleet).
fn trace_evidence(events: &[TraceEvent]) -> (u64, u64) {
    let mut migrates = 0;
    let mut reroutes = 0;
    for ev in events {
        match ev {
            TraceEvent::Begin {
                subsystem: Subsystem::Virt,
                name: "migrate",
                ..
            } => migrates += 1,
            TraceEvent::Instant {
                subsystem: Subsystem::Fleet,
                name: "reroute",
                ..
            } => reroutes += 1,
            _ => {}
        }
    }
    (migrates, reroutes)
}

/// Run the cluster study with an explicit smoke flag (tests use this
/// to stay fast regardless of the environment).
pub fn run_scaled(seed: u64, smoke: bool) -> ExperimentOutput {
    run_scaled_with(seed, smoke, super::engine_from_env())
}

/// Run the cluster study under an explicit engine. Every number in
/// the output is identical across engines (the digests are pinned to
/// it); the engine changes wall-clock only.
pub fn run_scaled_with(seed: u64, smoke: bool, engine: EngineMode) -> ExperimentOutput {
    let run_fleet = |cfg: &FleetConfig| run_fleet_with(cfg, Recorder::disabled(), engine);
    let run_fleet_traced = |cfg: &FleetConfig, rec: Recorder| run_fleet_with(cfg, rec, engine);

    // ---- scaling sweep: independent cells, run in parallel. -------------
    let reports: Vec<FleetReport> = HOST_COUNTS
        .par_iter()
        .map(|&h| run_fleet(&scaling_cfg(h, seed, smoke)))
        .collect();
    let rps: Vec<f64> = reports.iter().map(|r| r.summary.throughput_rps).collect();

    let mut table = Table::new(
        &format!("fleet scaling — {STRESS_USERS} LiveLab users, skewed apps, static fleet"),
        &[
            "Hosts",
            "Submitted",
            "Remote",
            "Local",
            "Shed",
            "Cloud req/s",
            "Speedup",
            "p95 (s)",
        ],
    );
    for (r, &h) in reports.iter().zip(&HOST_COUNTS) {
        table.row(&[
            h.to_string(),
            r.summary.submitted.to_string(),
            r.summary.completed_remote.to_string(),
            r.summary.fallback_local.to_string(),
            r.control.shed.to_string(),
            fnum(r.summary.throughput_rps, 2),
            format!("{:.2}x", r.summary.throughput_rps / rps[0].max(1e-9)),
            fnum(r.summary.p95_response_s, 2),
        ]);
    }

    // Determinism: the 4-host cell replayed must be bit-identical.
    let four = &reports[2];
    let replay = run_fleet(&scaling_cfg(4, seed, smoke));

    // ---- fault + rebalance study, bare and traced. ----------------------
    let faulty = run_fleet(&faulty_cfg(seed, smoke));
    let rec = Recorder::enabled(RecorderConfig::default());
    let traced = run_fleet_traced(&faulty_cfg(seed, smoke), rec.clone());
    let snap = rec.snapshot();
    let (migrate_spans, reroute_instants) = trace_evidence(&snap.events);

    let mut ftable = Table::new(
        "faults + rebalancing — 4 hosts, crash plan, threshold 0.25",
        &["Metric", "Engine count", "Trace evidence"],
    );
    ftable.row(&[
        "host crashes".into(),
        faulty.control.host_crashes.to_string(),
        "—".into(),
    ]);
    ftable.row(&[
        "crash re-routes".into(),
        faulty.control.crash_reroutes.to_string(),
        format!("{reroute_instants} reroute instants"),
    ]);
    ftable.row(&[
        "migrations completed".into(),
        faulty.control.migrations_completed.to_string(),
        format!("{migrate_spans} migrate spans"),
    ]);
    ftable.row(&[
        "migration bytes".into(),
        faulty.control.migration_bytes.to_string(),
        "—".into(),
    ]);
    ftable.row(&[
        "delivered".into(),
        format!(
            "{} remote + {} local of {}",
            faulty.summary.completed_remote,
            faulty.summary.fallback_local,
            faulty.summary.submitted
        ),
        "—".into(),
    ]);

    // ---- elasticity study. ----------------------------------------------
    let elastic = run_fleet(&elastic_cfg(seed, smoke));
    let static_peer = {
        let mut cfg = elastic_cfg(seed, smoke);
        cfg.initial_active = 4;
        cfg.autoscale = fleet::AutoscalePolicy::static_fleet();
        run_fleet(&cfg)
    };
    let mut etable = Table::new(
        "elasticity — 1 active + 3 standby vs. static 4-host fleet",
        &[
            "Fleet",
            "Scale-ups",
            "Drains",
            "Cloud req/s",
            "Remote",
            "Local",
        ],
    );
    etable.row(&[
        "elastic".into(),
        elastic.control.scale_ups.to_string(),
        elastic.control.drains.to_string(),
        fnum(elastic.summary.throughput_rps, 2),
        elastic.summary.completed_remote.to_string(),
        elastic.summary.fallback_local.to_string(),
    ]);
    etable.row(&[
        "static-4".into(),
        "0".into(),
        "0".into(),
        fnum(static_peer.summary.throughput_rps, 2),
        static_peer.summary.completed_remote.to_string(),
        static_peer.summary.fallback_local.to_string(),
    ]);

    // ---- scorecard. ------------------------------------------------------
    let mut sc = Scorecard::new();
    sc.expect(
        "throughput scales ≥ 2x from 1 to 4 hosts",
        "speedup ≥ 2.0",
        &format!("{:.2}x", rps[2] / rps[0].max(1e-9)),
        rps[2] >= 2.0 * rps[0],
    );
    sc.expect(
        "throughput is monotone over 1 → 2 → 4 hosts",
        "non-decreasing",
        &format!("{:.2} / {:.2} / {:.2}", rps[0], rps[1], rps[2]),
        rps[0] <= rps[1] && rps[1] <= rps[2],
    );
    sc.expect(
        "doubling 4 to 8 hosts still adds headroom",
        "≥ 1.3x the 4-host cell",
        &format!("{:.2} vs {:.2}", rps[3], rps[2]),
        rps[3] >= 1.3 * rps[2],
    );
    sc.expect(
        "same seed, same fleet, bit-identical report",
        &format!("{:#018x}", four.digest()),
        &format!("{:#018x}", replay.digest()),
        four.digest() == replay.digest(),
    );
    sc.expect(
        "tracing does not perturb the faulty run",
        &format!("{:#018x}", faulty.digest()),
        &format!("{:#018x}", traced.digest()),
        faulty.digest() == traced.digest(),
    );
    sc.expect(
        "crashes strand requests that get re-routed",
        "crashes ≥ 1 ∧ re-routes ≥ 1",
        &format!(
            "{} crashes, {} re-routes",
            faulty.control.host_crashes, faulty.control.crash_reroutes
        ),
        faulty.control.host_crashes >= 1 && faulty.control.crash_reroutes >= 1,
    );
    sc.expect(
        "the rebalancer migrates warm containers",
        "migrations completed ≥ 1",
        &faulty.control.migrations_completed.to_string(),
        faulty.control.migrations_completed >= 1,
    );
    sc.expect(
        "the exported trace carries the evidence",
        "migrate spans ≥ 1 ∧ reroute instants ≥ 1",
        &format!("{migrate_spans} spans, {reroute_instants} instants"),
        migrate_spans >= 1 && reroute_instants >= 1,
    );
    sc.expect(
        "every faulty-run request reaches a terminal phase",
        "remote + local + abandoned = submitted",
        &format!(
            "{} + {} + {} = {}",
            faulty.summary.completed_remote,
            faulty.summary.fallback_local,
            faulty.summary.abandoned,
            faulty.summary.submitted
        ),
        faulty.summary.completed_remote + faulty.summary.fallback_local + faulty.summary.abandoned
            == faulty.summary.submitted,
    );
    sc.expect(
        "the autoscaler grows a one-host fleet under load",
        "scale-ups ≥ 1",
        &elastic.control.scale_ups.to_string(),
        elastic.control.scale_ups >= 1,
    );
    sc.expect(
        "elastic fleet lands near static throughput",
        "≥ 0.8x static-4",
        &format!(
            "{:.2} vs {:.2}",
            elastic.summary.throughput_rps, static_peer.summary.throughput_rps
        ),
        elastic.summary.throughput_rps >= 0.8 * static_peer.summary.throughput_rps,
    );

    ExperimentOutput {
        id: "Cluster",
        body: format!(
            "{}\n{}\n{}",
            table.render(),
            ftable.render(),
            etable.render()
        ),
        scorecard: sc,
    }
}

/// Run the cluster study (smoke mode via `RATTRAP_BENCH_SMOKE`).
pub fn run(seed: u64) -> ExperimentOutput {
    run_scaled(seed, super::smoke())
}

/// The headline stress scenario: a metropolitan deployment's worth of
/// handsets against a 256-host fleet. A minute of simulated time at
/// LiveLab session rates offers ~37k req/s — an order of magnitude
/// past the fleet's ~2.7k req/s service ceiling, so the run exercises
/// every path (admission shed, device fallback, warm routing) at full
/// pressure. Smoke mode shrinks it to 20k users on 32 hosts.
pub fn mega_cfg(seed: u64, smoke: bool) -> FleetConfig {
    let (hosts, users) = if smoke {
        (32, 20_000)
    } else {
        (256, 1_000_000)
    };
    let mut cfg = FleetConfig::paper_default(hosts, seed);
    cfg.traffic.users = users;
    cfg.traffic.duration = SimDuration::from_secs(60);
    cfg
}

/// Run the mega stress study under an explicit engine.
pub fn run_mega_with(seed: u64, smoke: bool, engine: EngineMode) -> ExperimentOutput {
    let cfg = mega_cfg(seed, smoke);
    let t = std::time::Instant::now();
    let rep = run_fleet_with(&cfg, Recorder::disabled(), engine);
    let wall = t.elapsed().as_secs_f64();

    let mut table = Table::new(
        &format!(
            "mega stress — {} users, {} hosts, {}s horizon ({} engine)",
            cfg.traffic.users,
            cfg.host_specs.len(),
            cfg.traffic.duration.as_secs_f64(),
            super::engine_label(engine),
        ),
        &["Metric", "Value"],
    );
    table.row(&["submitted".into(), rep.summary.submitted.to_string()]);
    table.row(&[
        "completed remote".into(),
        rep.summary.completed_remote.to_string(),
    ]);
    table.row(&[
        "fallback local".into(),
        rep.summary.fallback_local.to_string(),
    ]);
    table.row(&["shed".into(), rep.control.shed.to_string()]);
    table.row(&["cloud req/s".into(), fnum(rep.summary.throughput_rps, 2)]);
    table.row(&[
        "p95 response (s)".into(),
        fnum(rep.summary.p95_response_s, 2),
    ]);
    table.row(&["engine wall (s)".into(), fnum(wall, 1)]);

    let mut sc = Scorecard::new();
    sc.expect(
        "the run saturates the fleet",
        "submitted ≫ remote capacity",
        &format!(
            "{} submitted, {} remote",
            rep.summary.submitted, rep.summary.completed_remote
        ),
        rep.summary.submitted > rep.summary.completed_remote,
    );
    sc.expect(
        "every request reaches a terminal phase",
        "remote + local + abandoned = submitted",
        &format!(
            "{} + {} + {} = {}",
            rep.summary.completed_remote,
            rep.summary.fallback_local,
            rep.summary.abandoned,
            rep.summary.submitted
        ),
        rep.summary.completed_remote + rep.summary.fallback_local + rep.summary.abandoned
            == rep.summary.submitted,
    );
    sc.expect(
        "the engine completes in minutes, not hours",
        "wall < 600 s",
        &format!("{wall:.1} s"),
        wall < 600.0,
    );

    ExperimentOutput {
        id: "Mega",
        body: table.render(),
        scorecard: sc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_scorecard_passes_in_smoke_scale() {
        let out = run_scaled(super::super::DEFAULT_SEED, true);
        assert!(out.scorecard.all_ok(), "\n{}", out.scorecard.render());
    }
}
