//! Run metadata — seed, toolchain pin, git SHA, smoke flag — stamped
//! into every bench report header and every exported trace so CI
//! artifacts are self-describing.

use obsv::Recorder;

/// The `channel` line of the committed toolchain pin, resolved at
/// compile time so the binary reports the pin it was built under.
const TOOLCHAIN_TOML: &str = include_str!("../../../rust-toolchain.toml");

/// Metadata describing one bench/experiment invocation.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// Root seed the run derives every replication seed from.
    pub seed: u64,
    /// Toolchain channel pinned in `rust-toolchain.toml`.
    pub toolchain: String,
    /// Git commit SHA (from `GITHUB_SHA` in CI, else `.git/HEAD`).
    pub git_sha: String,
    /// Whether `RATTRAP_BENCH_SMOKE` shrank the run.
    pub smoke: bool,
    /// Fleet engine variant (`RATTRAP_ENGINE` / `--engine`): `serial`
    /// or `sharded:N`. Reports are bit-identical across variants, so
    /// this is provenance, not a result axis.
    pub engine: String,
}

/// Parse the pinned channel out of the committed toolchain file.
fn pinned_channel() -> String {
    TOOLCHAIN_TOML
        .lines()
        .find_map(|l| l.strip_prefix("channel = \""))
        .and_then(|rest| rest.strip_suffix('"'))
        .unwrap_or("unknown")
        .to_owned()
}

/// Resolve the current commit: `GITHUB_SHA` when CI provides it, else
/// follow `.git/HEAD` (walking up from the working directory — bench
/// binaries run from the repo root or a crate dir). `"unknown"` when
/// neither source exists (e.g. an unpacked source tarball).
fn git_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    let mut dir = std::env::current_dir().unwrap_or_default();
    for _ in 0..6 {
        let head = dir.join(".git/HEAD");
        if let Ok(contents) = std::fs::read_to_string(&head) {
            let contents = contents.trim();
            if let Some(reference) = contents.strip_prefix("ref: ") {
                if let Ok(sha) = std::fs::read_to_string(dir.join(".git").join(reference)) {
                    return sha.trim().to_owned();
                }
            } else if !contents.is_empty() {
                return contents.to_owned(); // detached HEAD
            }
        }
        if !dir.pop() {
            break;
        }
    }
    "unknown".to_owned()
}

impl RunMeta {
    /// Capture the metadata of the current invocation.
    pub fn capture(seed: u64) -> Self {
        RunMeta {
            seed,
            toolchain: pinned_channel(),
            git_sha: git_sha(),
            smoke: crate::experiments::smoke(),
            engine: crate::experiments::engine_label(crate::experiments::engine_from_env()),
        }
    }

    /// One-line report header, printed before every experiment body.
    pub fn header(&self) -> String {
        format!(
            "# run-meta: seed={} toolchain={} git={} smoke={} engine={}",
            self.seed, self.toolchain, self.git_sha, self.smoke, self.engine
        )
    }

    /// Stamp the metadata into a recorder so exported traces carry it
    /// in their `metadata` object.
    pub fn apply(&self, rec: &Recorder) {
        rec.set_meta("seed", self.seed.to_string());
        rec.set_meta("toolchain", self.toolchain.clone());
        rec.set_meta("git_sha", self.git_sha.clone());
        rec.set_meta("smoke", self.smoke.to_string());
        rec.set_meta("engine", self.engine.clone());
    }
}

/// Print the run-meta header for an experiment binary.
pub fn print_header(seed: u64) {
    println!("{}", RunMeta::capture(seed).header());
}

/// Resolve a bench baseline output path: the `env_var` override when
/// set, else `default`. Relative paths are anchored at the *workspace
/// root*, not the process working directory — `cargo bench` runs
/// bench executables with the package dir (`crates/bench`) as cwd, so
/// a raw relative path would land baselines (and CI gate candidates
/// like `perf-engine.json`) two levels below where every consumer
/// looks for them.
pub fn baseline_out(env_var: &str, default: &str) -> std::path::PathBuf {
    let raw = std::env::var(env_var).unwrap_or_else(|_| default.to_owned());
    let path = std::path::PathBuf::from(&raw);
    if path.is_absolute() {
        path
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toolchain_pin_is_parsed_from_the_committed_file() {
        let meta = RunMeta::capture(7);
        assert_eq!(meta.toolchain, "stable");
        assert!(meta.header().contains("seed=7"));
        assert!(meta.header().contains("toolchain=stable"));
    }

    #[test]
    fn metadata_lands_in_exported_traces() {
        let rec = obsv::Recorder::enabled(obsv::RecorderConfig::default());
        RunMeta::capture(42).apply(&rec);
        let snap = rec.snapshot();
        assert_eq!(snap.meta.get("seed").map(String::as_str), Some("42"));
        assert!(snap.meta.contains_key("git_sha"));
        let trace = snap.chrome_trace();
        assert!(trace.contains("\"toolchain\""));
        obsv::json::parse(&trace).expect("trace with metadata parses");
    }
}
