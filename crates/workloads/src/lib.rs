//! # workloads — the four benchmark applications, for real
//!
//! The paper evaluates four representative offloading workloads
//! (§III-A). This crate implements each as genuinely executable Rust —
//! not stubs — plus the calibrated offload profiles the discrete-event
//! simulation ships over its simulated network:
//!
//! * [`ocr`] — bitmap-font rendering with noise + a template-matching
//!   recogniser (the paper uses Tesseract through JNI).
//! * [`chess`] — a full legal-move chess engine (castling, en passant,
//!   promotion; perft-validated) with alpha-beta search (CuckooChess in
//!   the paper).
//! * [`virusscan`] — a from-scratch Aho–Corasick signature scanner over
//!   synthetic corpora.
//! * [`linpack`] — LU factorisation with partial pivoting and the
//!   classic residual acceptance check.
//! * [`profile`] — per-workload task descriptors (code size, payload,
//!   compute megacycles, offload I/O) reverse-engineered from Table II,
//!   Fig. 1 and Fig. 3.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calibration;
pub mod chess;
pub mod linpack;
pub mod ocr;
pub mod profile;
pub mod virusscan;

pub use profile::{TaskRequest, WorkloadKind, WorkloadProfile};
