//! Linpack — the pure-computation benchmark (§III-A): LU factorisation
//! with partial pivoting, solve, residual check and MFLOPS reporting,
//! "implemented in ordinary Android Java" in the paper.

use simkit::SimRng;

/// A dense row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of order `n`.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Order of the matrix.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n + c] = v;
    }

    /// Random matrix with entries in `[-0.5, 0.5]` — the classic Linpack
    /// `matgen`.
    pub fn random(n: usize, rng: &mut SimRng) -> Self {
        let mut m = Matrix::zeros(n);
        for v in m.data.iter_mut() {
            *v = rng.uniform01() - 0.5;
        }
        m
    }

    /// y = A·x.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.n..(r + 1) * self.n];
            *yr = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }
}

/// Error when the matrix is singular (zero pivot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Singular {
    /// Column where factorisation failed.
    pub column: usize,
}

impl std::fmt::Display for Singular {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular at column {}", self.column)
    }
}

impl std::error::Error for Singular {}

/// LU factorisation (in place) with partial pivoting — `dgefa`.
/// Returns the pivot index vector.
pub fn lu_factor(a: &mut Matrix) -> Result<Vec<usize>, Singular> {
    let n = a.order();
    let mut pivots = Vec::with_capacity(n);
    for k in 0..n {
        // Find pivot.
        let mut p = k;
        let mut max = a.get(k, k).abs();
        for r in (k + 1)..n {
            let v = a.get(r, k).abs();
            if v > max {
                max = v;
                p = r;
            }
        }
        if max < 1e-300 {
            return Err(Singular { column: k });
        }
        pivots.push(p);
        if p != k {
            for c in 0..n {
                let tmp = a.get(k, c);
                a.set(k, c, a.get(p, c));
                a.set(p, c, tmp);
            }
        }
        // Eliminate below.
        let pivot = a.get(k, k);
        for r in (k + 1)..n {
            let factor = a.get(r, k) / pivot;
            a.set(r, k, factor);
            for c in (k + 1)..n {
                let v = a.get(r, c) - factor * a.get(k, c);
                a.set(r, c, v);
            }
        }
    }
    Ok(pivots)
}

/// Solve `LU x = b` given the factorisation — `dgesl`.
pub fn lu_solve(lu: &Matrix, pivots: &[usize], b: &[f64]) -> Vec<f64> {
    let n = lu.order();
    assert_eq!(b.len(), n);
    let mut x = b.to_vec();
    // Apply the full permutation first (the factorisation swaps whole
    // rows, LAPACK-style, so P must be applied to b before any
    // elimination — interleaving would corrupt already-reduced entries).
    for (k, &p) in pivots.iter().enumerate().take(n) {
        x.swap(k, p);
    }
    // Forward substitution through L (unit diagonal).
    for k in 0..n {
        for r in (k + 1)..n {
            x[r] -= lu.get(r, k) * x[k];
        }
    }
    // Back substitution.
    for k in (0..n).rev() {
        x[k] /= lu.get(k, k);
        for r in 0..k {
            x[r] -= lu.get(r, k) * x[k];
        }
    }
    x
}

/// Result of one Linpack run.
#[derive(Debug, Clone, PartialEq)]
pub struct LinpackResult {
    /// Matrix order.
    pub n: usize,
    /// Max-norm of `A·x − b` (should be ~1e-10 for well-conditioned A).
    pub residual: f64,
    /// Normalised residual (the Linpack acceptance metric).
    pub normalized_residual: f64,
    /// Floating-point operations performed (2n³/3 + 2n²).
    pub flops: f64,
}

/// Run the Linpack benchmark at order `n` with a seeded generator.
pub fn run(n: usize, rng: &mut SimRng) -> Result<LinpackResult, Singular> {
    let a = Matrix::random(n, rng);
    let x_true = vec![1.0; n];
    let b = a.mul_vec(&x_true);
    let mut lu = a.clone();
    let pivots = lu_factor(&mut lu)?;
    let x = lu_solve(&lu, &pivots, &b);
    // Residual ‖A·x − b‖∞.
    let ax = a.mul_vec(&x);
    let residual = ax
        .iter()
        .zip(&b)
        .map(|(p, q)| (p - q).abs())
        .fold(0.0f64, f64::max);
    let norm_a = (0..n)
        .map(|r| (0..n).map(|c| a.get(r, c).abs()).sum::<f64>())
        .fold(0.0f64, f64::max);
    let norm_x = x.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
    let eps = f64::EPSILON;
    let normalized_residual = residual / (norm_a * norm_x * n as f64 * eps);
    let nf = n as f64;
    Ok(LinpackResult {
        n,
        residual,
        normalized_residual,
        flops: 2.0 / 3.0 * nf * nf * nf + 2.0 * nf * nf,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0x11A9)
    }

    #[test]
    fn solves_known_system() {
        // A = [[2,1],[1,3]], x = [1,2] → b = [4,7].
        let mut a = Matrix::zeros(2);
        a.set(0, 0, 2.0);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 1, 3.0);
        let b = a.mul_vec(&[1.0, 2.0]);
        let mut lu = a.clone();
        let piv = lu_factor(&mut lu).unwrap();
        let x = lu_solve(&lu, &piv, &b);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // a11 = 0 forces a row swap.
        let mut a = Matrix::zeros(2);
        a.set(0, 0, 0.0);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 1, 0.0);
        let b = vec![3.0, 5.0]; // x = [5, 3]
        let mut lu = a.clone();
        let piv = lu_factor(&mut lu).unwrap();
        let x = lu_solve(&lu, &piv, &b);
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::zeros(3);
        let mut lu = a.clone();
        assert_eq!(lu_factor(&mut lu), Err(Singular { column: 0 }));
    }

    #[test]
    fn benchmark_run_passes_residual_check() {
        let r = run(100, &mut rng()).unwrap();
        assert_eq!(r.n, 100);
        // The canonical Linpack pass criterion.
        assert!(
            r.normalized_residual < 16.0,
            "normalized residual {}",
            r.normalized_residual
        );
        assert!(r.residual < 1e-9, "residual {}", r.residual);
        assert!(r.flops > 600_000.0);
    }

    #[test]
    fn flops_grow_cubically() {
        let small = run(40, &mut rng()).unwrap();
        let large = run(80, &mut rng()).unwrap();
        let ratio = large.flops / small.flops;
        assert!(ratio > 7.0 && ratio < 9.0, "ratio {ratio}");
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(50, &mut SimRng::new(9)).unwrap();
        let b = run(50, &mut SimRng::new(9)).unwrap();
        assert_eq!(a.residual.to_bits(), b.residual.to_bits());
    }
}
