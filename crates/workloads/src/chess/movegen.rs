//! Legal move generation, make/unmake, and perft validation.

use super::board::{Board, Castling, Color, Piece, PieceKind, Square};

/// A chess move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Move {
    /// Origin square.
    pub from: Square,
    /// Destination square.
    pub to: Square,
    /// Promotion piece kind, when a pawn reaches the last rank.
    pub promotion: Option<PieceKind>,
}

impl Move {
    /// Plain move constructor.
    pub fn new(from: Square, to: Square) -> Move {
        Move {
            from,
            to,
            promotion: None,
        }
    }

    /// UCI text, e.g. `e2e4` or `e7e8q`.
    pub fn uci(&self) -> String {
        let mut s = format!("{}{}", self.from.name(), self.to.name());
        if let Some(p) = self.promotion {
            s.push(match p {
                PieceKind::Queen => 'q',
                PieceKind::Rook => 'r',
                PieceKind::Bishop => 'b',
                PieceKind::Knight => 'n',
                _ => '?',
            });
        }
        s
    }

    /// Parse UCI text against no particular position.
    pub fn parse_uci(s: &str) -> Option<Move> {
        if s.len() < 4 {
            return None;
        }
        let from = Square::parse(&s[0..2])?;
        let to = Square::parse(&s[2..4])?;
        let promotion = match s.as_bytes().get(4) {
            None => None,
            Some(b'q') => Some(PieceKind::Queen),
            Some(b'r') => Some(PieceKind::Rook),
            Some(b'b') => Some(PieceKind::Bishop),
            Some(b'n') => Some(PieceKind::Knight),
            _ => return None,
        };
        Some(Move {
            from,
            to,
            promotion,
        })
    }
}

const KNIGHT_DELTAS: [(i8, i8); 8] = [
    (1, 2),
    (2, 1),
    (2, -1),
    (1, -2),
    (-1, -2),
    (-2, -1),
    (-2, 1),
    (-1, 2),
];
const KING_DELTAS: [(i8, i8); 8] = [
    (0, 1),
    (1, 1),
    (1, 0),
    (1, -1),
    (0, -1),
    (-1, -1),
    (-1, 0),
    (-1, 1),
];
const BISHOP_DIRS: [(i8, i8); 4] = [(1, 1), (1, -1), (-1, -1), (-1, 1)];
const ROOK_DIRS: [(i8, i8); 4] = [(0, 1), (1, 0), (0, -1), (-1, 0)];

/// Is `sq` attacked by any piece of `by`?
pub fn is_attacked(board: &Board, sq: Square, by: Color) -> bool {
    // Pawns: a pawn of `by` on sq - forward ± 1 file attacks sq.
    let back = -by.forward();
    for df in [-1i8, 1] {
        if let Some(p) = sq.offset(df, back).and_then(|s| board.piece_at(s)) {
            if p.color == by && p.kind == PieceKind::Pawn {
                return true;
            }
        }
    }
    for (df, dr) in KNIGHT_DELTAS {
        if let Some(p) = sq.offset(df, dr).and_then(|s| board.piece_at(s)) {
            if p.color == by && p.kind == PieceKind::Knight {
                return true;
            }
        }
    }
    for (df, dr) in KING_DELTAS {
        if let Some(p) = sq.offset(df, dr).and_then(|s| board.piece_at(s)) {
            if p.color == by && p.kind == PieceKind::King {
                return true;
            }
        }
    }
    for (dirs, kinds) in [
        (BISHOP_DIRS, [PieceKind::Bishop, PieceKind::Queen]),
        (ROOK_DIRS, [PieceKind::Rook, PieceKind::Queen]),
    ] {
        for (df, dr) in dirs {
            let mut cur = sq;
            while let Some(next) = cur.offset(df, dr) {
                cur = next;
                if let Some(p) = board.piece_at(cur) {
                    if p.color == by && kinds.contains(&p.kind) {
                        return true;
                    }
                    break;
                }
            }
        }
    }
    false
}

/// Is the side to move in check?
pub fn in_check(board: &Board, color: Color) -> bool {
    match board.king_square(color) {
        Some(k) => is_attacked(board, k, color.opponent()),
        None => false,
    }
}

fn push_pawn_moves(board: &Board, from: Square, moves: &mut Vec<Move>) {
    let piece = board.piece_at(from).expect("caller checked");
    let color = piece.color;
    let fwd = color.forward();
    let last_rank = if color == Color::White { 7 } else { 0 };
    let start_rank = if color == Color::White { 1 } else { 6 };

    let add = |to: Square, moves: &mut Vec<Move>| {
        if to.rank() == last_rank {
            for kind in [
                PieceKind::Queen,
                PieceKind::Rook,
                PieceKind::Bishop,
                PieceKind::Knight,
            ] {
                moves.push(Move {
                    from,
                    to,
                    promotion: Some(kind),
                });
            }
        } else {
            moves.push(Move::new(from, to));
        }
    };

    // Single and double push.
    if let Some(one) = from.offset(0, fwd) {
        if board.piece_at(one).is_none() {
            add(one, moves);
            if from.rank() == start_rank {
                if let Some(two) = from.offset(0, 2 * fwd) {
                    if board.piece_at(two).is_none() {
                        moves.push(Move::new(from, two));
                    }
                }
            }
        }
    }
    // Captures (incl. en passant).
    for df in [-1i8, 1] {
        if let Some(to) = from.offset(df, fwd) {
            match board.piece_at(to) {
                Some(p) if p.color != color => add(to, moves),
                None if board.en_passant == Some(to) => moves.push(Move::new(from, to)),
                _ => {}
            }
        }
    }
}

fn push_leaper_moves(board: &Board, from: Square, deltas: &[(i8, i8)], moves: &mut Vec<Move>) {
    let color = board.piece_at(from).expect("caller checked").color;
    for &(df, dr) in deltas {
        if let Some(to) = from.offset(df, dr) {
            match board.piece_at(to) {
                Some(p) if p.color == color => {}
                _ => moves.push(Move::new(from, to)),
            }
        }
    }
}

fn push_slider_moves(board: &Board, from: Square, dirs: &[(i8, i8)], moves: &mut Vec<Move>) {
    let color = board.piece_at(from).expect("caller checked").color;
    for &(df, dr) in dirs {
        let mut cur = from;
        while let Some(to) = cur.offset(df, dr) {
            cur = to;
            match board.piece_at(to) {
                None => moves.push(Move::new(from, to)),
                Some(p) => {
                    if p.color != color {
                        moves.push(Move::new(from, to));
                    }
                    break;
                }
            }
        }
    }
}

fn push_castling(board: &Board, moves: &mut Vec<Move>) {
    let color = board.side;
    let rank = if color == Color::White { 0 } else { 7 };
    let (king_side, queen_side) = match color {
        Color::White => (board.castling.white_king, board.castling.white_queen),
        Color::Black => (board.castling.black_king, board.castling.black_queen),
    };
    let king_sq = Square::at(4, rank);
    if board.piece_at(king_sq)
        != Some(Piece {
            color,
            kind: PieceKind::King,
        })
    {
        return;
    }
    let enemy = color.opponent();
    if is_attacked(board, king_sq, enemy) {
        return;
    }
    if king_side
        && board.piece_at(Square::at(5, rank)).is_none()
        && board.piece_at(Square::at(6, rank)).is_none()
        && board.piece_at(Square::at(7, rank))
            == Some(Piece {
                color,
                kind: PieceKind::Rook,
            })
        && !is_attacked(board, Square::at(5, rank), enemy)
        && !is_attacked(board, Square::at(6, rank), enemy)
    {
        moves.push(Move::new(king_sq, Square::at(6, rank)));
    }
    if queen_side
        && board.piece_at(Square::at(3, rank)).is_none()
        && board.piece_at(Square::at(2, rank)).is_none()
        && board.piece_at(Square::at(1, rank)).is_none()
        && board.piece_at(Square::at(0, rank))
            == Some(Piece {
                color,
                kind: PieceKind::Rook,
            })
        && !is_attacked(board, Square::at(3, rank), enemy)
        && !is_attacked(board, Square::at(2, rank), enemy)
    {
        moves.push(Move::new(king_sq, Square::at(2, rank)));
    }
}

/// All pseudo-legal moves for the side to move (may leave own king in
/// check; filtered by [`legal_moves`]).
pub fn pseudo_legal_moves(board: &Board) -> Vec<Move> {
    let mut moves = Vec::with_capacity(48);
    for (from, piece) in board.pieces_of(board.side) {
        match piece.kind {
            PieceKind::Pawn => push_pawn_moves(board, from, &mut moves),
            PieceKind::Knight => push_leaper_moves(board, from, &KNIGHT_DELTAS, &mut moves),
            PieceKind::King => push_leaper_moves(board, from, &KING_DELTAS, &mut moves),
            PieceKind::Bishop => push_slider_moves(board, from, &BISHOP_DIRS, &mut moves),
            PieceKind::Rook => push_slider_moves(board, from, &ROOK_DIRS, &mut moves),
            PieceKind::Queen => {
                push_slider_moves(board, from, &BISHOP_DIRS, &mut moves);
                push_slider_moves(board, from, &ROOK_DIRS, &mut moves);
            }
        }
    }
    push_castling(board, &mut moves);
    moves
}

/// Apply `mv` to a copy of `board`, returning the successor position.
/// The move must be at least pseudo-legal.
pub fn apply_move(board: &Board, mv: Move) -> Board {
    let mut b = board.clone();
    let piece = b.piece_at(mv.from).expect("move has a piece on its origin");
    let color = piece.color;
    let captured = b.piece_at(mv.to);

    // En-passant capture removes the pawn behind the target square.
    if piece.kind == PieceKind::Pawn && Some(mv.to) == b.en_passant && captured.is_none() {
        let victim = mv
            .to
            .offset(0, -color.forward())
            .expect("ep victim on board");
        b.set_piece(victim, None);
    }

    // Castling: move the rook as well.
    if piece.kind == PieceKind::King && (mv.to.file() as i8 - mv.from.file() as i8).abs() == 2 {
        let rank = mv.from.rank();
        let (rook_from, rook_to) = if mv.to.file() == 6 {
            (Square::at(7, rank), Square::at(5, rank))
        } else {
            (Square::at(0, rank), Square::at(3, rank))
        };
        let rook = b.piece_at(rook_from);
        b.set_piece(rook_from, None);
        b.set_piece(rook_to, rook);
    }

    b.set_piece(mv.from, None);
    let placed = match mv.promotion {
        Some(kind) => Piece { color, kind },
        None => piece,
    };
    b.set_piece(mv.to, Some(placed));

    // En-passant availability.
    b.en_passant = if piece.kind == PieceKind::Pawn
        && (mv.to.rank() as i8 - mv.from.rank() as i8).abs() == 2
    {
        mv.from.offset(0, color.forward())
    } else {
        None
    };

    // Castling-rights updates.
    let mut c = b.castling;
    let touch = |c: &mut Castling, sq: Square| match (sq.file(), sq.rank()) {
        (4, 0) => {
            c.white_king = false;
            c.white_queen = false;
        }
        (0, 0) => c.white_queen = false,
        (7, 0) => c.white_king = false,
        (4, 7) => {
            c.black_king = false;
            c.black_queen = false;
        }
        (0, 7) => c.black_queen = false,
        (7, 7) => c.black_king = false,
        _ => {}
    };
    touch(&mut c, mv.from);
    touch(&mut c, mv.to);
    b.castling = c;

    // Clocks.
    if piece.kind == PieceKind::Pawn || captured.is_some() {
        b.halfmove_clock = 0;
    } else {
        b.halfmove_clock += 1;
    }
    if color == Color::Black {
        b.fullmove += 1;
    }
    b.side = color.opponent();
    b
}

/// All strictly legal moves for the side to move.
pub fn legal_moves(board: &Board) -> Vec<Move> {
    pseudo_legal_moves(board)
        .into_iter()
        .filter(|&mv| !in_check(&apply_move(board, mv), board.side))
        .collect()
}

/// Count leaf nodes of the move tree to `depth` — the standard
/// correctness oracle for move generators.
pub fn perft(board: &Board, depth: u32) -> u64 {
    if depth == 0 {
        return 1;
    }
    let moves = legal_moves(board);
    if depth == 1 {
        return moves.len() as u64;
    }
    moves
        .iter()
        .map(|&mv| perft(&apply_move(board, mv), depth - 1))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perft_from_start_position() {
        // Known values: 20, 400, 8902, 197281.
        let b = Board::start();
        assert_eq!(perft(&b, 1), 20);
        assert_eq!(perft(&b, 2), 400);
        assert_eq!(perft(&b, 3), 8_902);
    }

    #[test]
    fn perft_kiwipete_catches_castling_and_ep_bugs() {
        // "Kiwipete": the classic stress position. Depth 1 = 48, 2 = 2039.
        let b =
            Board::from_fen("r3k2r/p1ppqpb1/bn2pnp1/3PN3/1p2P3/2N2Q1p/PPPBBPPP/R3K2R w KQkq - 0 1")
                .unwrap();
        assert_eq!(perft(&b, 1), 48);
        assert_eq!(perft(&b, 2), 2_039);
    }

    #[test]
    fn perft_position3_en_passant_heavy() {
        // CPW position 3: depth 1 = 14, 2 = 191, 3 = 2812.
        let b = Board::from_fen("8/2p5/3p4/KP5r/1R3p1k/8/4P1P1/8 w - - 0 1").unwrap();
        assert_eq!(perft(&b, 1), 14);
        assert_eq!(perft(&b, 2), 191);
        assert_eq!(perft(&b, 3), 2_812);
    }

    #[test]
    fn perft_promotion_position() {
        // CPW position 5: depth 1 = 44, 2 = 1486.
        let b =
            Board::from_fen("rnbq1k1r/pp1Pbppp/2p5/8/2B5/8/PPP1NnPP/RNBQK2R w KQ - 1 8").unwrap();
        assert_eq!(perft(&b, 1), 44);
        assert_eq!(perft(&b, 2), 1_486);
    }

    #[test]
    fn en_passant_capture_removes_victim() {
        let b = Board::from_fen("8/8/8/3pP3/8/8/8/k1K5 w - d6 0 1").unwrap();
        let ep = Move::new(Square::parse("e5").unwrap(), Square::parse("d6").unwrap());
        assert!(legal_moves(&b).contains(&ep));
        let after = apply_move(&b, ep);
        assert_eq!(
            after.piece_at(Square::parse("d5").unwrap()),
            None,
            "victim pawn gone"
        );
        assert_eq!(
            after.piece_at(Square::parse("d6").unwrap()).unwrap().kind,
            PieceKind::Pawn
        );
    }

    #[test]
    fn castling_moves_rook_and_clears_rights() {
        let b = Board::from_fen("r3k2r/8/8/8/8/8/8/R3K2R w KQkq - 0 1").unwrap();
        let oo = Move::new(Square::parse("e1").unwrap(), Square::parse("g1").unwrap());
        assert!(legal_moves(&b).contains(&oo));
        let after = apply_move(&b, oo);
        assert_eq!(
            after.piece_at(Square::parse("f1").unwrap()).unwrap().kind,
            PieceKind::Rook
        );
        assert_eq!(after.piece_at(Square::parse("h1").unwrap()), None);
        assert!(!after.castling.white_king && !after.castling.white_queen);
        assert!(after.castling.black_king, "black rights untouched");
    }

    #[test]
    fn cannot_castle_through_check() {
        // Black rook on f8 covers f1.
        let b = Board::from_fen("5r2/8/8/8/8/8/8/R3K2R w KQ - 0 1").unwrap();
        let oo = Move::new(Square::parse("e1").unwrap(), Square::parse("g1").unwrap());
        assert!(
            !legal_moves(&b).contains(&oo),
            "castling through f1 is illegal"
        );
        let ooo = Move::new(Square::parse("e1").unwrap(), Square::parse("c1").unwrap());
        assert!(legal_moves(&b).contains(&ooo), "queenside is fine");
    }

    #[test]
    fn pinned_piece_cannot_move() {
        // White knight on e4 pinned to the king by a rook on e8.
        let b = Board::from_fen("4r3/8/8/8/4N3/8/8/4K3 w - - 0 1").unwrap();
        let knight_moves: Vec<_> = legal_moves(&b)
            .into_iter()
            .filter(|m| m.from == Square::parse("e4").unwrap())
            .collect();
        assert!(knight_moves.is_empty(), "pinned knight must stay");
    }

    #[test]
    fn promotion_generates_four_pieces() {
        let b = Board::from_fen("8/P7/8/8/8/8/8/k1K5 w - - 0 1").unwrap();
        let promos: Vec<_> = legal_moves(&b)
            .into_iter()
            .filter(|m| m.from == Square::parse("a7").unwrap())
            .collect();
        assert_eq!(promos.len(), 4);
        assert!(promos.iter().all(|m| m.promotion.is_some()));
        let after = apply_move(&b, promos[0]);
        assert_eq!(
            after.piece_at(Square::parse("a8").unwrap()).unwrap().kind,
            PieceKind::Queen
        );
    }

    #[test]
    fn checkmate_has_no_legal_moves() {
        // Fool's mate final position; white is mated.
        let b = Board::from_fen("rnb1kbnr/pppp1ppp/8/4p3/6Pq/5P2/PPPPP2P/RNBQKBNR w KQkq - 1 3")
            .unwrap();
        assert!(in_check(&b, Color::White));
        assert!(legal_moves(&b).is_empty());
    }

    #[test]
    fn stalemate_has_no_moves_but_no_check() {
        let b = Board::from_fen("7k/5Q2/6K1/8/8/8/8/8 b - - 0 1").unwrap();
        assert!(!in_check(&b, Color::Black));
        assert!(legal_moves(&b).is_empty());
    }

    #[test]
    fn uci_round_trip() {
        for s in ["e2e4", "e7e8q", "a1h8", "b7b8n"] {
            assert_eq!(Move::parse_uci(s).unwrap().uci(), s);
        }
        assert!(Move::parse_uci("e2").is_none());
        assert!(Move::parse_uci("e2e4x").is_none());
    }
}
