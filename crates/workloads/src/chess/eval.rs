//! Static position evaluation: material plus piece-square tables.

use super::board::{Board, Color, PieceKind, Square};

/// Centipawn value of a piece.
pub fn piece_value(kind: PieceKind) -> i32 {
    match kind {
        PieceKind::Pawn => 100,
        PieceKind::Knight => 320,
        PieceKind::Bishop => 330,
        PieceKind::Rook => 500,
        PieceKind::Queen => 900,
        PieceKind::King => 0, // king safety handled positionally
    }
}

// Piece-square tables from the classic "simplified evaluation function",
// oriented for White (rank 0 at the bottom of each array = rank 1).
#[rustfmt::skip]
const PAWN_PST: [i32; 64] = [
     0,  0,  0,  0,  0,  0,  0,  0,
     5, 10, 10,-20,-20, 10, 10,  5,
     5, -5,-10,  0,  0,-10, -5,  5,
     0,  0,  0, 20, 20,  0,  0,  0,
     5,  5, 10, 25, 25, 10,  5,  5,
    10, 10, 20, 30, 30, 20, 10, 10,
    50, 50, 50, 50, 50, 50, 50, 50,
     0,  0,  0,  0,  0,  0,  0,  0,
];

#[rustfmt::skip]
const KNIGHT_PST: [i32; 64] = [
    -50,-40,-30,-30,-30,-30,-40,-50,
    -40,-20,  0,  5,  5,  0,-20,-40,
    -30,  5, 10, 15, 15, 10,  5,-30,
    -30,  0, 15, 20, 20, 15,  0,-30,
    -30,  5, 15, 20, 20, 15,  5,-30,
    -30,  0, 10, 15, 15, 10,  0,-30,
    -40,-20,  0,  0,  0,  0,-20,-40,
    -50,-40,-30,-30,-30,-30,-40,-50,
];

#[rustfmt::skip]
const BISHOP_PST: [i32; 64] = [
    -20,-10,-10,-10,-10,-10,-10,-20,
    -10,  5,  0,  0,  0,  0,  5,-10,
    -10, 10, 10, 10, 10, 10, 10,-10,
    -10,  0, 10, 10, 10, 10,  0,-10,
    -10,  5,  5, 10, 10,  5,  5,-10,
    -10,  0,  5, 10, 10,  5,  0,-10,
    -10,  0,  0,  0,  0,  0,  0,-10,
    -20,-10,-10,-10,-10,-10,-10,-20,
];

#[rustfmt::skip]
const ROOK_PST: [i32; 64] = [
     0,  0,  0,  5,  5,  0,  0,  0,
    -5,  0,  0,  0,  0,  0,  0, -5,
    -5,  0,  0,  0,  0,  0,  0, -5,
    -5,  0,  0,  0,  0,  0,  0, -5,
    -5,  0,  0,  0,  0,  0,  0, -5,
    -5,  0,  0,  0,  0,  0,  0, -5,
     5, 10, 10, 10, 10, 10, 10,  5,
     0,  0,  0,  0,  0,  0,  0,  0,
];

#[rustfmt::skip]
const QUEEN_PST: [i32; 64] = [
    -20,-10,-10, -5, -5,-10,-10,-20,
    -10,  0,  5,  0,  0,  0,  0,-10,
    -10,  5,  5,  5,  5,  5,  0,-10,
      0,  0,  5,  5,  5,  5,  0, -5,
     -5,  0,  5,  5,  5,  5,  0, -5,
    -10,  0,  5,  5,  5,  5,  0,-10,
    -10,  0,  0,  0,  0,  0,  0,-10,
    -20,-10,-10, -5, -5,-10,-10,-20,
];

#[rustfmt::skip]
const KING_PST: [i32; 64] = [
     20, 30, 10,  0,  0, 10, 30, 20,
     20, 20,  0,  0,  0,  0, 20, 20,
    -10,-20,-20,-20,-20,-20,-20,-10,
    -20,-30,-30,-40,-40,-30,-30,-20,
    -30,-40,-40,-50,-50,-40,-40,-30,
    -30,-40,-40,-50,-50,-40,-40,-30,
    -30,-40,-40,-50,-50,-40,-40,-30,
    -30,-40,-40,-50,-50,-40,-40,-30,
];

fn pst(kind: PieceKind, sq: Square, color: Color) -> i32 {
    let idx = match color {
        Color::White => sq.0 as usize,
        // Mirror vertically for black.
        Color::Black => (sq.0 ^ 56) as usize,
    };
    match kind {
        PieceKind::Pawn => PAWN_PST[idx],
        PieceKind::Knight => KNIGHT_PST[idx],
        PieceKind::Bishop => BISHOP_PST[idx],
        PieceKind::Rook => ROOK_PST[idx],
        PieceKind::Queen => QUEEN_PST[idx],
        PieceKind::King => KING_PST[idx],
    }
}

/// Evaluate `board` in centipawns from the **side-to-move** perspective
/// (positive = good for the player to move), as negamax search expects.
pub fn evaluate(board: &Board) -> i32 {
    let mut score = 0;
    for color in [Color::White, Color::Black] {
        let sign = if color == board.side { 1 } else { -1 };
        for (sq, piece) in board.pieces_of(color) {
            score += sign * (piece_value(piece.kind) + pst(piece.kind, sq, color));
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_position_is_balanced() {
        let b = Board::start();
        assert_eq!(evaluate(&b), 0, "symmetric position evaluates to zero");
    }

    #[test]
    fn extra_queen_dominates() {
        let b = Board::from_fen("4k3/8/8/8/8/8/8/3QK3 w - - 0 1").unwrap();
        assert!(evaluate(&b) > 800, "white queen up: {}", evaluate(&b));
        let b_black_view = Board::from_fen("4k3/8/8/8/8/8/8/3QK3 b - - 0 1").unwrap();
        assert!(
            evaluate(&b_black_view) < -800,
            "same position from black's view"
        );
    }

    #[test]
    fn central_knight_beats_corner_knight() {
        let central = Board::from_fen("4k3/8/8/8/4N3/8/8/4K3 w - - 0 1").unwrap();
        let corner = Board::from_fen("4k3/8/8/8/8/8/8/N3K3 w - - 0 1").unwrap();
        assert!(evaluate(&central) > evaluate(&corner));
    }

    #[test]
    fn pst_is_colour_mirrored() {
        // A white pawn on e4 and a black pawn on e5 are the same shape.
        assert_eq!(
            pst(PieceKind::Pawn, Square::parse("e4").unwrap(), Color::White),
            pst(PieceKind::Pawn, Square::parse("e5").unwrap(), Color::Black)
        );
    }

    #[test]
    fn piece_values_ordered() {
        assert!(piece_value(PieceKind::Queen) > piece_value(PieceKind::Rook));
        assert!(piece_value(PieceKind::Rook) > piece_value(PieceKind::Bishop));
        assert!(piece_value(PieceKind::Bishop) >= piece_value(PieceKind::Knight));
        assert!(piece_value(PieceKind::Knight) > piece_value(PieceKind::Pawn));
    }
}
