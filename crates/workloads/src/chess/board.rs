//! Chess board representation (8×8 mailbox) with FEN support.
//!
//! The ChessGame benchmark is an Android port of the CuckooChess
//! engine; this module is the board layer of our from-scratch engine.

use std::fmt;

/// Piece colour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Color {
    /// White to move first.
    White,
    /// Black.
    Black,
}

impl Color {
    /// The opposing colour.
    pub const fn opponent(self) -> Color {
        match self {
            Color::White => Color::Black,
            Color::Black => Color::White,
        }
    }

    /// Pawn push direction (+1 rank for white, −1 for black).
    pub const fn forward(self) -> i8 {
        match self {
            Color::White => 1,
            Color::Black => -1,
        }
    }
}

/// Piece type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PieceKind {
    /// Pawn.
    Pawn,
    /// Knight.
    Knight,
    /// Bishop.
    Bishop,
    /// Rook.
    Rook,
    /// Queen.
    Queen,
    /// King.
    King,
}

/// A coloured piece.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Piece {
    /// Owner.
    pub color: Color,
    /// Kind.
    pub kind: PieceKind,
}

impl Piece {
    /// FEN character for the piece.
    pub fn to_char(self) -> char {
        let c = match self.kind {
            PieceKind::Pawn => 'p',
            PieceKind::Knight => 'n',
            PieceKind::Bishop => 'b',
            PieceKind::Rook => 'r',
            PieceKind::Queen => 'q',
            PieceKind::King => 'k',
        };
        match self.color {
            Color::White => c.to_ascii_uppercase(),
            Color::Black => c,
        }
    }

    /// Parse a FEN piece character.
    pub fn from_char(c: char) -> Option<Piece> {
        let color = if c.is_ascii_uppercase() {
            Color::White
        } else {
            Color::Black
        };
        let kind = match c.to_ascii_lowercase() {
            'p' => PieceKind::Pawn,
            'n' => PieceKind::Knight,
            'b' => PieceKind::Bishop,
            'r' => PieceKind::Rook,
            'q' => PieceKind::Queen,
            'k' => PieceKind::King,
            _ => return None,
        };
        Some(Piece { color, kind })
    }
}

/// A square index 0..64 (a1 = 0, h1 = 7, a8 = 56).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Square(pub u8);

impl Square {
    /// Build from file (0..8) and rank (0..8).
    pub fn at(file: u8, rank: u8) -> Square {
        debug_assert!(file < 8 && rank < 8);
        Square(rank * 8 + file)
    }

    /// File 0..8 (a..h).
    pub const fn file(self) -> u8 {
        self.0 % 8
    }

    /// Rank 0..8 (1..8).
    pub const fn rank(self) -> u8 {
        self.0 / 8
    }

    /// Offset by (df, dr); `None` if off the board.
    pub fn offset(self, df: i8, dr: i8) -> Option<Square> {
        let f = self.file() as i8 + df;
        let r = self.rank() as i8 + dr;
        if (0..8).contains(&f) && (0..8).contains(&r) {
            Some(Square::at(f as u8, r as u8))
        } else {
            None
        }
    }

    /// Algebraic name, e.g. `"e4"`.
    pub fn name(self) -> String {
        format!("{}{}", (b'a' + self.file()) as char, self.rank() + 1)
    }

    /// Parse algebraic notation.
    pub fn parse(s: &str) -> Option<Square> {
        let bytes = s.as_bytes();
        if bytes.len() != 2 {
            return None;
        }
        let file = bytes[0].checked_sub(b'a')?;
        let rank = bytes[1].checked_sub(b'1')?;
        if file < 8 && rank < 8 {
            Some(Square::at(file, rank))
        } else {
            None
        }
    }
}

/// Castling availability flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Castling {
    /// White may castle kingside.
    pub white_king: bool,
    /// White may castle queenside.
    pub white_queen: bool,
    /// Black may castle kingside.
    pub black_king: bool,
    /// Black may castle queenside.
    pub black_queen: bool,
}

/// Full game position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Board {
    squares: [Option<Piece>; 64],
    /// Side to move.
    pub side: Color,
    /// Castling rights.
    pub castling: Castling,
    /// En-passant target square, if the last move was a double push.
    pub en_passant: Option<Square>,
    /// Halfmove clock for the 50-move rule.
    pub halfmove_clock: u32,
    /// Fullmove number.
    pub fullmove: u32,
}

/// Errors from FEN parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FenError(pub String);

impl fmt::Display for FenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid FEN: {}", self.0)
    }
}

impl std::error::Error for FenError {}

impl Board {
    /// An empty board, white to move.
    pub fn empty() -> Self {
        Board {
            squares: [None; 64],
            side: Color::White,
            castling: Castling::default(),
            en_passant: None,
            halfmove_clock: 0,
            fullmove: 1,
        }
    }

    /// The standard starting position.
    pub fn start() -> Self {
        Board::from_fen("rnbqkbnr/pppppppp/8/8/8/8/PPPPPPPP/RNBQKBNR w KQkq - 0 1")
            .expect("start FEN is valid")
    }

    /// Piece at a square.
    #[inline]
    pub fn piece_at(&self, sq: Square) -> Option<Piece> {
        self.squares[sq.0 as usize]
    }

    /// Place (or clear) a piece.
    #[inline]
    pub fn set_piece(&mut self, sq: Square, piece: Option<Piece>) {
        self.squares[sq.0 as usize] = piece;
    }

    /// Find the king of `color`.
    pub fn king_square(&self, color: Color) -> Option<Square> {
        (0..64).map(Square).find(|&sq| {
            self.squares[sq.0 as usize]
                == Some(Piece {
                    color,
                    kind: PieceKind::King,
                })
        })
    }

    /// All `(square, piece)` pairs for `color`, ascending square.
    pub fn pieces_of(&self, color: Color) -> Vec<(Square, Piece)> {
        (0..64)
            .filter_map(|i| {
                self.squares[i as usize]
                    .filter(|p| p.color == color)
                    .map(|p| (Square(i), p))
            })
            .collect()
    }

    /// Parse a FEN string.
    pub fn from_fen(fen: &str) -> Result<Board, FenError> {
        let fields: Vec<&str> = fen.split_whitespace().collect();
        if fields.len() < 4 {
            return Err(FenError(format!(
                "expected ≥4 fields, got {}",
                fields.len()
            )));
        }
        let mut board = Board::empty();
        let ranks: Vec<&str> = fields[0].split('/').collect();
        if ranks.len() != 8 {
            return Err(FenError(format!("expected 8 ranks, got {}", ranks.len())));
        }
        for (i, rank_str) in ranks.iter().enumerate() {
            let rank = 7 - i as u8;
            let mut file = 0u8;
            for c in rank_str.chars() {
                if let Some(skip) = c.to_digit(10) {
                    file += skip as u8;
                } else {
                    let piece =
                        Piece::from_char(c).ok_or_else(|| FenError(format!("bad piece '{c}'")))?;
                    if file >= 8 {
                        return Err(FenError(format!("rank {} overflows", rank + 1)));
                    }
                    board.set_piece(Square::at(file, rank), Some(piece));
                    file += 1;
                }
            }
            if file != 8 {
                return Err(FenError(format!("rank {} has {file} files", rank + 1)));
            }
        }
        board.side = match fields[1] {
            "w" => Color::White,
            "b" => Color::Black,
            other => return Err(FenError(format!("bad side '{other}'"))),
        };
        board.castling = Castling {
            white_king: fields[2].contains('K'),
            white_queen: fields[2].contains('Q'),
            black_king: fields[2].contains('k'),
            black_queen: fields[2].contains('q'),
        };
        board.en_passant = match fields[3] {
            "-" => None,
            sq => Some(Square::parse(sq).ok_or_else(|| FenError(format!("bad ep '{sq}'")))?),
        };
        board.halfmove_clock = fields.get(4).and_then(|s| s.parse().ok()).unwrap_or(0);
        board.fullmove = fields.get(5).and_then(|s| s.parse().ok()).unwrap_or(1);
        Ok(board)
    }

    /// Serialize to FEN.
    pub fn to_fen(&self) -> String {
        let mut out = String::new();
        for rank in (0..8).rev() {
            let mut empty = 0;
            for file in 0..8 {
                match self.piece_at(Square::at(file, rank)) {
                    Some(p) => {
                        if empty > 0 {
                            out.push_str(&empty.to_string());
                            empty = 0;
                        }
                        out.push(p.to_char());
                    }
                    None => empty += 1,
                }
            }
            if empty > 0 {
                out.push_str(&empty.to_string());
            }
            if rank > 0 {
                out.push('/');
            }
        }
        out.push(' ');
        out.push(match self.side {
            Color::White => 'w',
            Color::Black => 'b',
        });
        out.push(' ');
        let c = &self.castling;
        if !(c.white_king || c.white_queen || c.black_king || c.black_queen) {
            out.push('-');
        } else {
            if c.white_king {
                out.push('K');
            }
            if c.white_queen {
                out.push('Q');
            }
            if c.black_king {
                out.push('k');
            }
            if c.black_queen {
                out.push('q');
            }
        }
        out.push(' ');
        match self.en_passant {
            Some(sq) => out.push_str(&sq.name()),
            None => out.push('-'),
        }
        out.push_str(&format!(" {} {}", self.halfmove_clock, self.fullmove));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_position_layout() {
        let b = Board::start();
        assert_eq!(
            b.piece_at(Square::parse("e1").unwrap()),
            Some(Piece {
                color: Color::White,
                kind: PieceKind::King
            })
        );
        assert_eq!(
            b.piece_at(Square::parse("d8").unwrap()),
            Some(Piece {
                color: Color::Black,
                kind: PieceKind::Queen
            })
        );
        assert_eq!(b.piece_at(Square::parse("e4").unwrap()), None);
        assert_eq!(b.pieces_of(Color::White).len(), 16);
        assert_eq!(b.pieces_of(Color::Black).len(), 16);
    }

    #[test]
    fn fen_round_trip() {
        let fens = [
            "rnbqkbnr/pppppppp/8/8/8/8/PPPPPPPP/RNBQKBNR w KQkq - 0 1",
            "r3k2r/p1ppqpb1/bn2pnp1/3PN3/1p2P3/2N2Q1p/PPPBBPPP/R3K2R w KQkq - 0 1",
            "8/2p5/3p4/KP5r/1R3p1k/8/4P1P1/8 w - - 0 1",
            "rnbq1k1r/pp1Pbppp/2p5/8/2B5/8/PPP1NnPP/RNBQK2R w KQ - 1 8",
        ];
        for fen in fens {
            let b = Board::from_fen(fen).unwrap();
            assert_eq!(b.to_fen(), fen);
        }
    }

    #[test]
    fn fen_errors() {
        assert!(Board::from_fen("").is_err());
        assert!(Board::from_fen("8/8/8/8/8/8/8 w - -").is_err(), "7 ranks");
        assert!(
            Board::from_fen("9/8/8/8/8/8/8/8 w - -").is_err(),
            "bad file count"
        );
        assert!(
            Board::from_fen("x7/8/8/8/8/8/8/8 w - -").is_err(),
            "bad piece"
        );
        assert!(
            Board::from_fen("8/8/8/8/8/8/8/8 z - -").is_err(),
            "bad side"
        );
    }

    #[test]
    fn square_algebra() {
        let e4 = Square::parse("e4").unwrap();
        assert_eq!(e4.name(), "e4");
        assert_eq!(e4.file(), 4);
        assert_eq!(e4.rank(), 3);
        assert_eq!(e4.offset(0, 1), Square::parse("e5"));
        assert_eq!(e4.offset(-4, 0), Square::parse("a4"));
        assert_eq!(Square::parse("a1").unwrap().offset(-1, 0), None);
        assert_eq!(Square::parse("h8").unwrap().offset(1, 1), None);
        assert_eq!(Square::parse("i9"), None);
        assert_eq!(Square::parse(""), None);
    }

    #[test]
    fn king_lookup() {
        let b = Board::start();
        assert_eq!(b.king_square(Color::White), Square::parse("e1"));
        assert_eq!(b.king_square(Color::Black), Square::parse("e8"));
        assert_eq!(Board::empty().king_square(Color::White), None);
    }

    #[test]
    fn color_helpers() {
        assert_eq!(Color::White.opponent(), Color::Black);
        assert_eq!(Color::White.forward(), 1);
        assert_eq!(Color::Black.forward(), -1);
    }
}
