//! Negamax alpha-beta search with iterative deepening and a quiescence
//! stage — the compute kernel the ChessGame workload offloads.

use super::board::Board;
use super::eval::{evaluate, piece_value};
use super::movegen::{apply_move, in_check, legal_moves, Move};
use super::zobrist::{Bound, TranspositionTable, TtEntry, Zobrist};

/// Score representing a forced mate (offset by ply so nearer mates win).
pub const MATE_SCORE: i32 = 100_000;

/// Result of a search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResult {
    /// Best move found, `None` if the position is terminal.
    pub best_move: Option<Move>,
    /// Score in centipawns from the side to move's perspective.
    pub score: i32,
    /// Leaf + interior nodes visited.
    pub nodes: u64,
    /// Depth actually completed.
    pub depth: u32,
}

/// Alpha-beta searcher with a node budget (the offloading framework
/// bounds work per request rather than wall time, keeping the
/// simulation deterministic).
#[derive(Debug)]
pub struct Searcher {
    nodes: u64,
    node_budget: u64,
    table: Option<(Zobrist, TranspositionTable)>,
}

impl Searcher {
    /// A searcher allowed to visit at most `node_budget` nodes.
    pub fn new(node_budget: u64) -> Self {
        Searcher {
            nodes: 0,
            node_budget,
            table: None,
        }
    }

    /// Enable a transposition table with `slots` entries.
    pub fn with_table(mut self, slots: usize) -> Self {
        self.table = Some((Zobrist::new(), TranspositionTable::new(slots)));
        self
    }

    /// Transposition-table statistics `(hits, misses, stores)`.
    pub fn table_stats(&self) -> Option<(u64, u64, u64)> {
        self.table.as_ref().map(|(_, tt)| tt.stats())
    }

    fn out_of_budget(&self) -> bool {
        self.nodes >= self.node_budget
    }

    /// Quiescence: resolve captures so the horizon effect doesn't
    /// dominate the static eval.
    fn quiesce(&mut self, board: &Board, mut alpha: i32, beta: i32) -> i32 {
        self.nodes += 1;
        let stand_pat = evaluate(board);
        if stand_pat >= beta {
            return beta;
        }
        alpha = alpha.max(stand_pat);
        if self.out_of_budget() {
            return alpha;
        }
        let mut captures: Vec<Move> = legal_moves(board)
            .into_iter()
            .filter(|m| board.piece_at(m.to).is_some())
            .collect();
        // MVV ordering: take the biggest victim first.
        captures.sort_by_key(|m| {
            std::cmp::Reverse(
                board
                    .piece_at(m.to)
                    .map(|p| piece_value(p.kind))
                    .unwrap_or(0),
            )
        });
        for mv in captures {
            let score = -self.quiesce(&apply_move(board, mv), -beta, -alpha);
            if score >= beta {
                return beta;
            }
            alpha = alpha.max(score);
            if self.out_of_budget() {
                break;
            }
        }
        alpha
    }

    fn negamax(&mut self, board: &Board, depth: u32, mut alpha: i32, beta: i32, ply: i32) -> i32 {
        let moves = legal_moves(board);
        if moves.is_empty() {
            self.nodes += 1;
            return if in_check(board, board.side) {
                -(MATE_SCORE - ply) // mated: worse when nearer
            } else {
                0 // stalemate
            };
        }
        if depth == 0 {
            return self.quiesce(board, alpha, beta);
        }
        self.nodes += 1;
        let alpha_orig = alpha;

        // Transposition-table probe: a deep-enough stored score can
        // answer the node outright; its best move improves ordering.
        let key = self.table.as_ref().map(|(z, _)| z.hash(board));
        let mut tt_move: Option<Move> = None;
        if let (Some(key), Some((_, tt))) = (key, self.table.as_mut()) {
            if let Some(e) = tt.probe(key) {
                tt_move = e.best;
                // Mate scores are ply-relative; skip the cutoff for them
                // to avoid distance distortion, but keep the move hint.
                if e.depth >= depth && e.score.abs() < MATE_SCORE - 1000 {
                    match e.bound {
                        Bound::Exact => return e.score,
                        Bound::Lower if e.score >= beta => return e.score,
                        Bound::Upper if e.score <= alpha => return e.score,
                        _ => {}
                    }
                }
            }
        }

        // Order: TT move first, then captures of big victims, then rest.
        let mut ordered = moves;
        ordered.sort_by_key(|m| {
            let tt_bonus = if Some(*m) == tt_move { 100_000 } else { 0 };
            std::cmp::Reverse(
                tt_bonus
                    + board
                        .piece_at(m.to)
                        .map(|p| piece_value(p.kind))
                        .unwrap_or(-1),
            )
        });

        let mut best = -MATE_SCORE - 1;
        let mut best_move = None;
        for mv in ordered {
            let score = -self.negamax(&apply_move(board, mv), depth - 1, -beta, -alpha, ply + 1);
            if score > best {
                best = score;
                best_move = Some(mv);
            }
            alpha = alpha.max(score);
            if alpha >= beta || self.out_of_budget() {
                break;
            }
        }

        if let (Some(key), Some((_, tt))) = (key, self.table.as_mut()) {
            let bound = if best <= alpha_orig {
                Bound::Upper
            } else if best >= beta {
                Bound::Lower
            } else {
                Bound::Exact
            };
            tt.store(TtEntry {
                key,
                depth,
                score: best,
                bound,
                best: best_move,
            });
        }
        best
    }

    /// Iterative-deepening search to `max_depth`.
    pub fn search(&mut self, board: &Board, max_depth: u32) -> SearchResult {
        let moves = legal_moves(board);
        if moves.is_empty() {
            let score = if in_check(board, board.side) {
                -MATE_SCORE
            } else {
                0
            };
            return SearchResult {
                best_move: None,
                score,
                nodes: 1,
                depth: 0,
            };
        }
        let mut best_move = moves[0];
        let mut best_score = 0;
        let mut completed = 0;
        for depth in 1..=max_depth {
            let mut iter_best = moves[0];
            let mut iter_score = -MATE_SCORE - 1;
            let mut alpha = -MATE_SCORE - 1;
            for &mv in &moves {
                let score = -self.negamax(
                    &apply_move(board, mv),
                    depth - 1,
                    -MATE_SCORE - 1,
                    -alpha,
                    1,
                );
                if score > iter_score {
                    iter_score = score;
                    iter_best = mv;
                }
                alpha = alpha.max(score);
                if self.out_of_budget() {
                    break;
                }
            }
            if self.out_of_budget() && depth > 1 {
                break; // keep the last fully trusted iteration
            }
            best_move = iter_best;
            best_score = iter_score;
            completed = depth;
            if self.out_of_budget() {
                break;
            }
        }
        SearchResult {
            best_move: Some(best_move),
            score: best_score,
            nodes: self.nodes,
            depth: completed,
        }
    }
}

/// Convenience: search `board` to `depth` with a large node budget.
pub fn best_move(board: &Board, depth: u32) -> SearchResult {
    Searcher::new(u64::MAX).search(board, depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chess::board::Square;

    #[test]
    fn finds_mate_in_one() {
        // Back-rank mate: Ra8#.
        let b = Board::from_fen("6k1/5ppp/8/8/8/8/8/R5K1 w - - 0 1").unwrap();
        let r = best_move(&b, 3);
        assert_eq!(r.best_move.unwrap().uci(), "a1a8");
        assert!(r.score > MATE_SCORE - 100, "mate score, got {}", r.score);
    }

    #[test]
    fn takes_the_hanging_queen() {
        // White rook can capture an undefended queen on d8… from d1.
        let b = Board::from_fen("3q2k1/8/8/8/8/8/8/3R2K1 w - - 0 1").unwrap();
        let r = best_move(&b, 3);
        assert_eq!(r.best_move.unwrap().to, Square::parse("d8").unwrap());
    }

    #[test]
    fn avoids_losing_the_queen_for_nothing() {
        // Queen attacked by a pawn; depth-2 search must move it away
        // rather than shuffle the king.
        let b = Board::from_fen("6k1/8/8/3p4/4Q3/8/8/6K1 w - - 0 1").unwrap();
        let r = best_move(&b, 3);
        let mv = r.best_move.unwrap();
        if mv.from == Square::parse("e4").unwrap() {
            // Queen moved: must not be capturable by the pawn.
            assert_ne!(
                mv.to.name(),
                "d5".to_string() /* defended? no – d5 capture is fine */
            );
        }
        // Whatever it chose, the score must not reflect a lost queen.
        assert!(r.score > -400, "score {}", r.score);
    }

    #[test]
    fn terminal_positions_report_correctly() {
        let mate = Board::from_fen("rnb1kbnr/pppp1ppp/8/4p3/6Pq/5P2/PPPPP2P/RNBQKBNR w KQkq - 1 3")
            .unwrap();
        let r = best_move(&mate, 2);
        assert_eq!(r.best_move, None);
        assert_eq!(r.score, -MATE_SCORE);

        let stale = Board::from_fen("7k/5Q2/6K1/8/8/8/8/8 b - - 0 1").unwrap();
        let r = best_move(&stale, 2);
        assert_eq!(r.best_move, None);
        assert_eq!(r.score, 0);
    }

    #[test]
    fn deeper_search_visits_more_nodes() {
        let b = Board::start();
        let shallow = best_move(&b, 1);
        let deep = best_move(&b, 3);
        assert!(
            deep.nodes > 10 * shallow.nodes,
            "{} vs {}",
            deep.nodes,
            shallow.nodes
        );
        assert_eq!(deep.depth, 3);
    }

    #[test]
    fn node_budget_caps_work() {
        let b = Board::start();
        let mut s = Searcher::new(500);
        let r = s.search(&b, 12);
        assert!(r.nodes <= 1_000, "budget roughly respected: {}", r.nodes);
        assert!(r.best_move.is_some(), "still returns a move");
        assert!(r.depth < 12, "cannot complete depth 12 in 500 nodes");
    }

    #[test]
    fn tt_search_agrees_with_plain_search() {
        for fen in [
            "r3k2r/p1ppqpb1/bn2pnp1/3PN3/1p2P3/2N2Q1p/PPPBBPPP/R3K2R w KQkq - 0 1",
            "rnbqkbnr/pppppppp/8/8/8/8/PPPPPPPP/RNBQKBNR w KQkq - 0 1",
            "3q2k1/8/8/8/8/8/8/3R2K1 w - - 0 1",
        ] {
            let b = Board::from_fen(fen).unwrap();
            let plain = Searcher::new(u64::MAX).search(&b, 3);
            let with_tt = Searcher::new(u64::MAX).with_table(1 << 14).search(&b, 3);
            assert_eq!(with_tt.best_move, plain.best_move, "{fen}");
            assert_eq!(with_tt.score, plain.score, "{fen}");
        }
    }

    #[test]
    fn tt_reduces_node_count_at_depth() {
        let b =
            Board::from_fen("r3k2r/p1ppqpb1/bn2pnp1/3PN3/1p2P3/2N2Q1p/PPPBBPPP/R3K2R w KQkq - 0 1")
                .unwrap();
        let plain = Searcher::new(u64::MAX).search(&b, 4);
        let mut tt_searcher = Searcher::new(u64::MAX).with_table(1 << 16);
        let with_tt = tt_searcher.search(&b, 4);
        assert!(
            with_tt.nodes < plain.nodes,
            "TT should prune: {} vs {}",
            with_tt.nodes,
            plain.nodes
        );
        let (hits, _, stores) = tt_searcher.table_stats().unwrap();
        assert!(hits > 0, "table was consulted");
        assert!(stores > 0, "table was populated");
    }

    #[test]
    fn search_is_deterministic() {
        let b =
            Board::from_fen("r3k2r/p1ppqpb1/bn2pnp1/3PN3/1p2P3/2N2Q1p/PPPBBPPP/R3K2R w KQkq - 0 1")
                .unwrap();
        let a = best_move(&b, 3);
        let c = best_move(&b, 3);
        assert_eq!(a, c);
    }
}
