//! Zobrist hashing and a transposition table — the search accelerator a
//! real CuckooChess-class engine relies on.

use super::board::{Board, Color, PieceKind};
use super::movegen::Move;

/// Deterministic pseudo-random table built with SplitMix64 so every
/// build of the engine hashes identically.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn piece_index(kind: PieceKind) -> usize {
    match kind {
        PieceKind::Pawn => 0,
        PieceKind::Knight => 1,
        PieceKind::Bishop => 2,
        PieceKind::Rook => 3,
        PieceKind::Queen => 4,
        PieceKind::King => 5,
    }
}

/// Zobrist key material.
#[derive(Debug)]
pub struct Zobrist {
    /// [color][piece][square]
    pieces: [[[u64; 64]; 6]; 2],
    side_to_move: u64,
    castling: [u64; 4],
    en_passant_file: [u64; 8],
}

impl Zobrist {
    /// Build the shared table.
    pub fn new() -> Self {
        let mut seed = 0xC4E5_5E55_0B5E_55EDu64;
        let mut next = || {
            seed = splitmix(seed);
            seed
        };
        let mut pieces = [[[0u64; 64]; 6]; 2];
        for color in &mut pieces {
            for piece in color.iter_mut() {
                for sq in piece.iter_mut() {
                    *sq = next();
                }
            }
        }
        Zobrist {
            pieces,
            side_to_move: next(),
            castling: [next(), next(), next(), next()],
            en_passant_file: [
                next(),
                next(),
                next(),
                next(),
                next(),
                next(),
                next(),
                next(),
            ],
        }
    }

    /// Hash a full position.
    pub fn hash(&self, board: &Board) -> u64 {
        let mut h = 0u64;
        for color in [Color::White, Color::Black] {
            let ci = if color == Color::White { 0 } else { 1 };
            for (sq, piece) in board.pieces_of(color) {
                h ^= self.pieces[ci][piece_index(piece.kind)][sq.0 as usize];
            }
        }
        if board.side == Color::Black {
            h ^= self.side_to_move;
        }
        let c = board.castling;
        for (i, flag) in [c.white_king, c.white_queen, c.black_king, c.black_queen]
            .into_iter()
            .enumerate()
        {
            if flag {
                h ^= self.castling[i];
            }
        }
        if let Some(ep) = board.en_passant {
            h ^= self.en_passant_file[ep.file() as usize];
        }
        h
    }
}

impl Default for Zobrist {
    fn default() -> Self {
        Zobrist::new()
    }
}

/// Bound type of a stored score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Exact minimax value.
    Exact,
    /// Score is a lower bound (fail-high / beta cutoff).
    Lower,
    /// Score is an upper bound (fail-low).
    Upper,
}

/// One transposition-table entry.
#[derive(Debug, Clone, Copy)]
pub struct TtEntry {
    /// Full Zobrist key (verification against index collisions).
    pub key: u64,
    /// Remaining search depth the score was computed at.
    pub depth: u32,
    /// Stored score (centipawns).
    pub score: i32,
    /// Score bound.
    pub bound: Bound,
    /// Best move found at this node, if any.
    pub best: Option<Move>,
}

/// A fixed-size, always-replace transposition table.
#[derive(Debug)]
pub struct TranspositionTable {
    entries: Vec<Option<TtEntry>>,
    mask: usize,
    hits: u64,
    misses: u64,
    stores: u64,
}

impl TranspositionTable {
    /// A table with `capacity` slots, rounded up to a power of two.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(16);
        TranspositionTable {
            entries: vec![None; cap],
            mask: cap - 1,
            hits: 0,
            misses: 0,
            stores: 0,
        }
    }

    /// Probe for `key`; returns entries whose full key matches.
    pub fn probe(&mut self, key: u64) -> Option<TtEntry> {
        match self.entries[(key as usize) & self.mask] {
            Some(e) if e.key == key => {
                self.hits += 1;
                Some(e)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store an entry, preferring deeper searches on collision.
    pub fn store(&mut self, entry: TtEntry) {
        let idx = (entry.key as usize) & self.mask;
        let replace = match self.entries[idx] {
            Some(old) => old.key == entry.key || entry.depth >= old.depth,
            None => true,
        };
        if replace {
            self.entries[idx] = Some(entry);
            self.stores += 1;
        }
    }

    /// (hits, misses, stores) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.stores)
    }

    /// Slots in the table.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chess::movegen::{apply_move, legal_moves};

    #[test]
    fn hash_is_deterministic_across_instances() {
        let z1 = Zobrist::new();
        let z2 = Zobrist::new();
        let b = Board::start();
        assert_eq!(z1.hash(&b), z2.hash(&b));
    }

    #[test]
    fn transposition_same_position_same_hash() {
        // 1.Nf3 Nf6 2.Ng1 Ng8 returns to the start position (minus
        // move counters, which Zobrist ignores).
        let z = Zobrist::new();
        let b = Board::start();
        let h0 = z.hash(&b);
        let path = ["g1f3", "g8f6", "f3g1", "f6g8"];
        let mut cur = b;
        for uci in path {
            let mv = legal_moves(&cur)
                .into_iter()
                .find(|m| m.uci() == uci)
                .unwrap_or_else(|| panic!("{uci} is legal"));
            cur = apply_move(&cur, mv);
        }
        assert_eq!(z.hash(&cur), h0, "transposition back to start");
    }

    #[test]
    fn different_positions_different_hashes() {
        let z = Zobrist::new();
        let b = Board::start();
        let mut seen = std::collections::HashSet::new();
        seen.insert(z.hash(&b));
        for mv in legal_moves(&b) {
            let h = z.hash(&apply_move(&b, mv));
            assert!(seen.insert(h), "collision after {}", mv.uci());
        }
    }

    #[test]
    fn side_to_move_and_ep_affect_hash() {
        let z = Zobrist::new();
        let w = Board::from_fen("4k3/8/8/8/8/8/8/4K3 w - - 0 1").unwrap();
        let b = Board::from_fen("4k3/8/8/8/8/8/8/4K3 b - - 0 1").unwrap();
        assert_ne!(z.hash(&w), z.hash(&b));
        let ep = Board::from_fen("4k3/8/8/3pP3/8/8/8/4K3 w - d6 0 1").unwrap();
        let no_ep = Board::from_fen("4k3/8/8/3pP3/8/8/8/4K3 w - - 0 1").unwrap();
        assert_ne!(z.hash(&ep), z.hash(&no_ep));
    }

    #[test]
    fn castling_rights_affect_hash() {
        let z = Zobrist::new();
        let all = Board::from_fen("r3k2r/8/8/8/8/8/8/R3K2R w KQkq - 0 1").unwrap();
        let none = Board::from_fen("r3k2r/8/8/8/8/8/8/R3K2R w - - 0 1").unwrap();
        assert_ne!(z.hash(&all), z.hash(&none));
    }

    #[test]
    fn tt_probe_store_cycle() {
        let mut tt = TranspositionTable::new(1024);
        assert!(tt.probe(42).is_none());
        tt.store(TtEntry {
            key: 42,
            depth: 3,
            score: 17,
            bound: Bound::Exact,
            best: None,
        });
        let e = tt.probe(42).expect("stored");
        assert_eq!(e.score, 17);
        assert_eq!(e.bound, Bound::Exact);
        let (hits, misses, stores) = tt.stats();
        assert_eq!((hits, misses, stores), (1, 1, 1));
    }

    #[test]
    fn tt_collision_keeps_deeper_entry() {
        let mut tt = TranspositionTable::new(16);
        // Two keys landing in the same slot (same low bits).
        let a = 0x10u64;
        let b = a + tt.capacity() as u64;
        tt.store(TtEntry {
            key: a,
            depth: 6,
            score: 1,
            bound: Bound::Exact,
            best: None,
        });
        tt.store(TtEntry {
            key: b,
            depth: 2,
            score: 2,
            bound: Bound::Exact,
            best: None,
        });
        assert!(
            tt.probe(a).is_some(),
            "deeper entry survives a shallow challenger"
        );
        assert!(tt.probe(b).is_none());
        tt.store(TtEntry {
            key: b,
            depth: 9,
            score: 2,
            bound: Bound::Exact,
            best: None,
        });
        assert!(tt.probe(b).is_some(), "deeper challenger replaces");
    }

    #[test]
    fn tt_verifies_full_key() {
        let mut tt = TranspositionTable::new(16);
        let a = 0x20u64;
        let aliased = a + tt.capacity() as u64; // same slot, different key
        tt.store(TtEntry {
            key: a,
            depth: 1,
            score: 5,
            bound: Bound::Exact,
            best: None,
        });
        assert!(
            tt.probe(aliased).is_none(),
            "index collision must not alias"
        );
    }
}
