//! ChessGame — the interactive, network-chatty benchmark (§III-A).
//!
//! An Android port of the CuckooChess engine in the paper; here a
//! from-scratch legal-move engine with alpha-beta search. The offloaded
//! unit of work is "given this FEN, find the best move to depth d".

pub mod board;
pub mod eval;
pub mod movegen;
pub mod search;
pub mod zobrist;

pub use board::{Board, Color, Piece, PieceKind, Square};
pub use movegen::{apply_move, in_check, legal_moves, perft, Move};
pub use search::{best_move, SearchResult, Searcher};
pub use zobrist::{Bound, TranspositionTable, TtEntry, Zobrist};

/// One offloadable chess request: position + search depth.
#[derive(Debug, Clone)]
pub struct ChessRequest {
    /// Position to analyse, as FEN.
    pub fen: String,
    /// Search depth.
    pub depth: u32,
}

/// Execute a chess request (the code that would run inside the Cloud
/// Android Container). Returns the UCI best move, score and node count.
pub fn execute(req: &ChessRequest) -> Result<SearchResult, board::FenError> {
    let b = Board::from_fen(&req.fen)?;
    Ok(best_move(&b, req.depth))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execute_end_to_end() {
        let req = ChessRequest {
            fen: Board::start().to_fen(),
            depth: 2,
        };
        let r = execute(&req).unwrap();
        assert!(r.best_move.is_some());
        assert!(r.nodes > 20);
    }

    #[test]
    fn execute_rejects_bad_fen() {
        let req = ChessRequest {
            fen: "not a fen".into(),
            depth: 2,
        };
        assert!(execute(&req).is_err());
    }
}
