//! Offloading profiles of the four benchmarks.
//!
//! The discrete-event simulation does not ship real bitmaps over the
//! simulated network; it ships *calibrated task descriptors*. The
//! calibration is reverse-engineered from the paper's own measurements
//! (Table II totals over 5 devices × 20 requests, Fig. 3 data
//! composition, Fig. 1 phase durations), so the phase decompositions
//! the harness produces match the published workload behaviour. The
//! real compute kernels live next door ([`crate::ocr`], [`crate::chess`],
//! [`crate::virusscan`], [`crate::linpack`]) and are benchmarked with
//! Criterion to validate the relative compute weights.

use simkit::units::Megacycles;
use simkit::SimRng;

/// The four benchmark applications (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorkloadKind {
    /// Image tool: compute-intensive with file transfer.
    Ocr,
    /// Game: interactive, network-chatty, small bursts of compute.
    ChessGame,
    /// Anti-virus: I/O heavy.
    VirusScan,
    /// Mathematical tool: pure computation.
    Linpack,
}

impl WorkloadKind {
    /// All workloads, in the paper's presentation order.
    pub const ALL: [WorkloadKind; 4] = [
        WorkloadKind::Ocr,
        WorkloadKind::ChessGame,
        WorkloadKind::VirusScan,
        WorkloadKind::Linpack,
    ];

    /// Display label.
    pub const fn label(self) -> &'static str {
        match self {
            WorkloadKind::Ocr => "OCR",
            WorkloadKind::ChessGame => "ChessGame",
            WorkloadKind::VirusScan => "VirusScan",
            WorkloadKind::Linpack => "Linpack",
        }
    }

    /// Android application id (the App Warehouse cache key base).
    pub const fn app_id(self) -> &'static str {
        match self {
            WorkloadKind::Ocr => "com.bench.ocr",
            WorkloadKind::ChessGame => "com.bench.chessgame",
            WorkloadKind::VirusScan => "com.bench.virusscan",
            WorkloadKind::Linpack => "com.bench.linpack",
        }
    }

    /// The calibrated offloading profile, read from the one documented
    /// table in [`crate::calibration`]. The table's provenance (which
    /// paper figure pins which column) is documented there; changing a
    /// cell changes every golden digest.
    pub fn profile(self) -> WorkloadProfile {
        let row = crate::calibration::row(self);
        WorkloadProfile {
            kind: self,
            app_code_bytes: row.app_code_bytes,
            payload_bytes_mean: row.payload_bytes_mean,
            payload_cv: row.payload_cv,
            control_bytes: row.control_bytes,
            result_bytes_mean: row.result_bytes_mean,
            compute_megacycles_mean: row.compute_megacycles_mean,
            compute_cv: row.compute_cv,
            offload_io_factor: row.offload_io_factor,
            think_time_secs: row.think_time_secs,
        }
    }
}

/// Calibrated per-workload parameters driving the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Which workload this is.
    pub kind: WorkloadKind,
    /// Size of the mobile code (APK) pushed to a fresh runtime.
    pub app_code_bytes: u64,
    /// Mean per-request file + parameter bytes.
    pub payload_bytes_mean: u64,
    /// Coefficient of variation of the payload size.
    pub payload_cv: f64,
    /// Control-message bytes per request.
    pub control_bytes: u64,
    /// Mean result bytes returned to the device.
    pub result_bytes_mean: u64,
    /// Mean compute work per request, in megacycles.
    pub compute_megacycles_mean: f64,
    /// Coefficient of variation of the compute work.
    pub compute_cv: f64,
    /// Server-side offloading I/O per request, as a multiple of the
    /// payload (writes + re-reads of migrated files).
    pub offload_io_factor: f64,
    /// Mean think time between a device's consecutive requests, seconds.
    pub think_time_secs: f64,
}

/// One sampled offloading task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskRequest {
    /// Workload this task belongs to.
    pub kind: WorkloadKind,
    /// File + parameter bytes uploaded with the request.
    pub payload_bytes: u64,
    /// Control-message bytes (always uploaded).
    pub control_bytes: u64,
    /// Result bytes downloaded.
    pub result_bytes: u64,
    /// Compute work.
    pub compute: Megacycles,
    /// Server-side file I/O triggered by the task.
    pub io_bytes: u64,
}

impl WorkloadProfile {
    /// Sample one task from the profile's distributions.
    pub fn sample(&self, rng: &mut SimRng) -> TaskRequest {
        let payload = rng
            .normal_at_least(
                self.payload_bytes_mean as f64,
                self.payload_bytes_mean as f64 * self.payload_cv,
                self.payload_bytes_mean as f64 * 0.2,
            )
            .round() as u64;
        let compute = rng.normal_at_least(
            self.compute_megacycles_mean,
            self.compute_megacycles_mean * self.compute_cv,
            self.compute_megacycles_mean * 0.15,
        );
        let result = rng
            .normal_at_least(
                self.result_bytes_mean as f64,
                self.result_bytes_mean as f64 * 0.2,
                16.0,
            )
            .round() as u64;
        TaskRequest {
            kind: self.kind,
            payload_bytes: payload,
            control_bytes: self.control_bytes,
            result_bytes: result,
            compute: Megacycles(compute),
            io_bytes: (payload as f64 * self.offload_io_factor).round() as u64,
        }
    }

    /// Mean uploaded bytes per request (payload + control), excluding code.
    pub fn mean_request_upload(&self) -> u64 {
        self.payload_bytes_mean + self.control_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_ids_distinct() {
        let mut labels: Vec<_> = WorkloadKind::ALL.iter().map(|w| w.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 4);
        assert!(WorkloadKind::ALL
            .iter()
            .all(|w| w.app_id().starts_with("com.bench.")));
    }

    #[test]
    fn chess_code_dominates_migrated_data() {
        // Fig. 3: for ChessGame and Linpack the mobile code is >50 % of
        // migrated data over a 20-request VM session.
        for kind in [WorkloadKind::ChessGame, WorkloadKind::Linpack] {
            let p = kind.profile();
            let code = p.app_code_bytes as f64;
            let rest = (20 * p.mean_request_upload()) as f64;
            assert!(
                code / (code + rest) > 0.5,
                "{}: {}",
                kind.label(),
                code / (code + rest)
            );
        }
        // …while OCR and VirusScan are payload-dominated.
        for kind in [WorkloadKind::Ocr, WorkloadKind::VirusScan] {
            let p = kind.profile();
            let code = p.app_code_bytes as f64;
            let rest = (20 * p.mean_request_upload()) as f64;
            assert!(code / (code + rest) < 0.5, "{}", kind.label());
        }
    }

    #[test]
    fn virusscan_has_heaviest_io() {
        let io = |k: WorkloadKind| {
            let p = k.profile();
            p.payload_bytes_mean as f64 * p.offload_io_factor
        };
        assert!(io(WorkloadKind::VirusScan) > io(WorkloadKind::Ocr));
        assert!(io(WorkloadKind::VirusScan) > io(WorkloadKind::ChessGame));
        assert!(io(WorkloadKind::Linpack) == 0.0);
    }

    #[test]
    fn sampling_is_deterministic_and_positive() {
        let p = WorkloadKind::Ocr.profile();
        let a = p.sample(&mut SimRng::new(5));
        let b = p.sample(&mut SimRng::new(5));
        assert_eq!(a, b);
        assert!(a.payload_bytes > 0);
        assert!(a.compute.0 > 0.0);
    }

    #[test]
    fn sample_means_track_profile() {
        let p = WorkloadKind::VirusScan.profile();
        let mut rng = SimRng::new(6);
        let n = 4000;
        let mean_payload: f64 = (0..n)
            .map(|_| p.sample(&mut rng).payload_bytes as f64)
            .sum::<f64>()
            / n as f64;
        let expected = p.payload_bytes_mean as f64;
        assert!(
            (mean_payload - expected).abs() / expected < 0.05,
            "mean {mean_payload} vs {expected}"
        );
    }

    #[test]
    fn table2_reverse_engineering_holds() {
        // With 5 runtimes and 100 requests, VM-mode upload minus
        // Rattrap-mode upload should be ≈ 4 app-code copies (Table II).
        for kind in WorkloadKind::ALL {
            let p = kind.profile();
            let rattrap = 100 * p.mean_request_upload() + p.app_code_bytes;
            let vm = 100 * p.mean_request_upload() + 5 * p.app_code_bytes;
            assert_eq!(vm - rattrap, 4 * p.app_code_bytes);
            assert!(rattrap < vm);
        }
    }
}
