//! The VirusScan workload: a synthetic signature database, a synthetic
//! file corpus, and a scanner that checks the corpus against the
//! database — "spawns more I/O requests than other benchmarks" (§III-A).

use super::aho::AhoCorasick;
use simkit::SimRng;

/// A virus signature: name + byte pattern.
#[derive(Debug, Clone)]
pub struct Signature {
    /// Malware family name.
    pub name: String,
    /// Byte pattern scanned for.
    pub pattern: Vec<u8>,
}

/// Generate a deterministic signature database of `count` entries with
/// patterns of 8–24 bytes.
pub fn generate_database(count: usize, rng: &mut SimRng) -> Vec<Signature> {
    (0..count)
        .map(|i| {
            let len = rng.uniform_u64(8, 24) as usize;
            // High bytes make accidental matches in ASCII-ish corpora rare.
            let pattern: Vec<u8> = (0..len).map(|_| rng.uniform_u64(128, 255) as u8).collect();
            Signature {
                name: format!("SIG-{i:05}"),
                pattern,
            }
        })
        .collect()
}

/// A synthetic file to scan.
#[derive(Debug, Clone)]
pub struct CorpusFile {
    /// File name.
    pub name: String,
    /// File contents.
    pub data: Vec<u8>,
    /// Ground truth: indices of signatures implanted in the file.
    pub implanted: Vec<usize>,
}

/// Generate `count` files of ~`mean_size` bytes; a fraction
/// `infection_rate` get a random signature implanted at a random offset.
pub fn generate_corpus(
    count: usize,
    mean_size: usize,
    infection_rate: f64,
    db: &[Signature],
    rng: &mut SimRng,
) -> Vec<CorpusFile> {
    (0..count)
        .map(|i| {
            let size =
                (rng.normal_at_least(mean_size as f64, mean_size as f64 * 0.3, 64.0)) as usize;
            // Printable-ASCII body: disjoint from the high-byte signatures.
            let mut data: Vec<u8> = (0..size).map(|_| rng.uniform_u64(32, 126) as u8).collect();
            let mut implanted = Vec::new();
            if !db.is_empty() && rng.bernoulli(infection_rate) {
                let sig = rng.uniform_u64(0, db.len() as u64 - 1) as usize;
                let pat = &db[sig].pattern;
                if data.len() > pat.len() {
                    let at = rng.uniform_u64(0, (data.len() - pat.len()) as u64) as usize;
                    data[at..at + pat.len()].copy_from_slice(pat);
                    implanted.push(sig);
                }
            }
            CorpusFile {
                name: format!("file-{i:04}.bin"),
                data,
                implanted,
            }
        })
        .collect()
}

/// Result of scanning one corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanReport {
    /// Files scanned.
    pub files_scanned: usize,
    /// Bytes read.
    pub bytes_scanned: u64,
    /// `(file index, signature index)` detections.
    pub detections: Vec<(usize, usize)>,
}

/// Scan `corpus` against `db`.
pub fn scan(db: &[Signature], corpus: &[CorpusFile]) -> ScanReport {
    let ac = AhoCorasick::build(&db.iter().map(|s| s.pattern.as_slice()).collect::<Vec<_>>());
    let mut report = ScanReport {
        files_scanned: 0,
        bytes_scanned: 0,
        detections: Vec::new(),
    };
    for (fi, file) in corpus.iter().enumerate() {
        report.files_scanned += 1;
        report.bytes_scanned += file.data.len() as u64;
        let mut hits: Vec<usize> = ac.find_all(&file.data).iter().map(|m| m.pattern).collect();
        hits.sort_unstable();
        hits.dedup();
        for sig in hits {
            report.detections.push((fi, sig));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0x5CA4)
    }

    #[test]
    fn database_is_deterministic() {
        let a = generate_database(50, &mut rng());
        let b = generate_database(50, &mut rng());
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pattern, y.pattern);
        }
    }

    #[test]
    fn scan_finds_every_implant_and_nothing_else() {
        let mut r = rng();
        let db = generate_database(200, &mut r);
        let corpus = generate_corpus(80, 4096, 0.25, &db, &mut r);
        let report = scan(&db, &corpus);
        assert_eq!(report.files_scanned, 80);
        // Every implanted signature is detected…
        for (fi, file) in corpus.iter().enumerate() {
            for &sig in &file.implanted {
                assert!(
                    report.detections.contains(&(fi, sig)),
                    "missed implant {sig} in file {fi}"
                );
            }
        }
        // …and there are no false positives (ASCII body vs high-byte
        // signatures).
        let truth: usize = corpus.iter().map(|f| f.implanted.len()).sum();
        assert_eq!(report.detections.len(), truth);
        assert!(truth > 5, "infection rate should implant a good handful");
    }

    #[test]
    fn clean_corpus_scans_clean() {
        let mut r = rng();
        let db = generate_database(100, &mut r);
        let corpus = generate_corpus(20, 2048, 0.0, &db, &mut r);
        let report = scan(&db, &corpus);
        assert!(report.detections.is_empty());
        assert!(report.bytes_scanned > 20 * 1000);
    }

    #[test]
    fn empty_inputs() {
        let report = scan(&[], &[]);
        assert_eq!(report.files_scanned, 0);
        assert_eq!(report.bytes_scanned, 0);
        assert!(report.detections.is_empty());
    }
}
