//! From-scratch Aho–Corasick multi-pattern matcher — the signature
//! engine behind the VirusScan benchmark.

use std::collections::VecDeque;

/// A match: which pattern, ending at which byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternMatch {
    /// Index of the matched pattern (order of insertion).
    pub pattern: usize,
    /// Byte offset one past the end of the match.
    pub end: usize,
}

#[derive(Debug, Clone)]
struct Node {
    /// Child per byte value; u32::MAX = absent.
    next: Box<[u32; 256]>,
    /// Failure link.
    fail: u32,
    /// Pattern indices ending at this node.
    output: Vec<usize>,
}

impl Node {
    fn new() -> Self {
        Node {
            next: Box::new([u32::MAX; 256]),
            fail: 0,
            output: Vec::new(),
        }
    }
}

/// Compiled Aho–Corasick automaton over byte patterns.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    nodes: Vec<Node>,
    pattern_lens: Vec<usize>,
}

impl AhoCorasick {
    /// Build the automaton from `patterns`. Empty patterns are ignored.
    pub fn build<P: AsRef<[u8]>>(patterns: &[P]) -> Self {
        let mut nodes = vec![Node::new()];
        let mut pattern_lens = Vec::with_capacity(patterns.len());
        // Trie construction.
        for (idx, pat) in patterns.iter().enumerate() {
            let bytes = pat.as_ref();
            pattern_lens.push(bytes.len());
            if bytes.is_empty() {
                continue;
            }
            let mut cur = 0u32;
            for &b in bytes {
                let slot = nodes[cur as usize].next[b as usize];
                cur = if slot == u32::MAX {
                    let id = nodes.len() as u32;
                    nodes[cur as usize].next[b as usize] = id;
                    nodes.push(Node::new());
                    id
                } else {
                    slot
                };
            }
            nodes[cur as usize].output.push(idx);
        }
        // BFS to set failure links and convert to a full goto function.
        let mut queue = VecDeque::new();
        for b in 0..256 {
            let child = nodes[0].next[b];
            if child == u32::MAX {
                nodes[0].next[b] = 0;
            } else {
                nodes[child as usize].fail = 0;
                queue.push_back(child);
            }
        }
        while let Some(u) = queue.pop_front() {
            let fail_u = nodes[u as usize].fail;
            // Merge outputs along the failure chain.
            let inherited = nodes[fail_u as usize].output.clone();
            nodes[u as usize].output.extend(inherited);
            for b in 0..256 {
                let child = nodes[u as usize].next[b];
                let via_fail = nodes[fail_u as usize].next[b];
                if child == u32::MAX {
                    nodes[u as usize].next[b] = via_fail;
                } else {
                    nodes[child as usize].fail = via_fail;
                    queue.push_back(child);
                }
            }
        }
        AhoCorasick {
            nodes,
            pattern_lens,
        }
    }

    /// Number of automaton states.
    pub fn state_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of patterns compiled in.
    pub fn pattern_count(&self) -> usize {
        self.pattern_lens.len()
    }

    /// Length of pattern `idx`.
    pub fn pattern_len(&self, idx: usize) -> usize {
        self.pattern_lens[idx]
    }

    /// Find every match in `haystack` (overlapping included).
    pub fn find_all(&self, haystack: &[u8]) -> Vec<PatternMatch> {
        let mut out = Vec::new();
        let mut state = 0u32;
        for (i, &b) in haystack.iter().enumerate() {
            state = self.nodes[state as usize].next[b as usize];
            for &pat in &self.nodes[state as usize].output {
                out.push(PatternMatch {
                    pattern: pat,
                    end: i + 1,
                });
            }
        }
        out
    }

    /// Does `haystack` contain any pattern? Early-exits on first hit.
    pub fn contains_any(&self, haystack: &[u8]) -> bool {
        let mut state = 0u32;
        for &b in haystack {
            state = self.nodes[state as usize].next[b as usize];
            if !self.nodes[state as usize].output.is_empty() {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_he_she_his_hers() {
        let ac = AhoCorasick::build(&["he", "she", "his", "hers"]);
        let matches = ac.find_all(b"ushers");
        // "ushers" contains she (ends 4), he (ends 4), hers (ends 6).
        let found: Vec<(usize, usize)> = matches.iter().map(|m| (m.pattern, m.end)).collect();
        assert!(found.contains(&(1, 4)), "she");
        assert!(found.contains(&(0, 4)), "he");
        assert!(found.contains(&(3, 6)), "hers");
        assert_eq!(matches.len(), 3);
    }

    #[test]
    fn overlapping_matches_reported() {
        let ac = AhoCorasick::build(&["aa"]);
        let matches = ac.find_all(b"aaaa");
        assert_eq!(matches.len(), 3, "aa at ends 2,3,4");
    }

    #[test]
    fn no_match_in_clean_input() {
        let ac = AhoCorasick::build(&["virus", "trojan"]);
        assert!(ac.find_all(b"perfectly clean file contents").is_empty());
        assert!(!ac.contains_any(b"still clean"));
    }

    #[test]
    fn contains_any_early_exit_agrees_with_find_all() {
        let ac = AhoCorasick::build(&["abc", "bcd"]);
        for hay in [&b"xxabcdxx"[..], b"zzz", b"bcd", b"ab"] {
            assert_eq!(ac.contains_any(hay), !ac.find_all(hay).is_empty());
        }
    }

    #[test]
    fn binary_patterns() {
        let sig: &[u8] = &[0x4D, 0x5A, 0x90, 0x00];
        let ac = AhoCorasick::build(&[sig]);
        let mut hay = vec![0u8; 100];
        hay.extend_from_slice(sig);
        hay.extend_from_slice(&[1, 2, 3]);
        let m = ac.find_all(&hay);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].end, 104);
    }

    #[test]
    fn empty_patterns_ignored() {
        let ac = AhoCorasick::build(&["", "x"]);
        assert_eq!(ac.pattern_count(), 2);
        let m = ac.find_all(b"x");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].pattern, 1);
    }

    #[test]
    fn pattern_prefix_of_another() {
        let ac = AhoCorasick::build(&["ab", "abcd"]);
        let m = ac.find_all(b"abcd");
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn state_count_reflects_shared_prefixes() {
        let ac = AhoCorasick::build(&["abc", "abd"]);
        // root + a + b + c + d = 5 states.
        assert_eq!(ac.state_count(), 5);
    }
}
