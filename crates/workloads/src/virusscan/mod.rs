//! VirusScan — the I/O-heavy benchmark (§III-A): checks target files
//! against a virus database, spawning more I/O than the other workloads.

pub mod aho;
pub mod scanner;

pub use aho::{AhoCorasick, PatternMatch};
pub use scanner::{generate_corpus, generate_database, scan, CorpusFile, ScanReport, Signature};

/// One offloadable scan request.
#[derive(Debug, Clone)]
pub struct ScanRequest {
    /// Files to scan.
    pub corpus: Vec<CorpusFile>,
}

/// Execute a scan request against a database (the cloud side keeps the
/// database resident; the files are the migrated data).
pub fn execute(db: &[Signature], req: &ScanRequest) -> ScanReport {
    scan(db, &req.corpus)
}
