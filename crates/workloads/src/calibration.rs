//! The one calibration table behind every [`WorkloadProfile`].
//!
//! Every number the simulation charges for the four benchmarks is
//! derived from this table — nothing else in the workspace hard-codes
//! a profile constant. The values are reverse-engineered from the
//! paper's published measurements:
//!
//! | Workload  | code KiB | payload | p.cv | ctl B | result B | Mc   | c.cv | I/O× | think s |
//! |-----------|---------:|--------:|-----:|------:|---------:|-----:|-----:|-----:|--------:|
//! | OCR       |    1402  | 280 KiB | 0.30 |   410 |    1540  | 6650 | 0.25 |  2.0 |     6.0 |
//! | ChessGame |    2128  |  26 KiB | 0.40 |   610 |     348  | 1600 | 0.50 |  0.5 |     3.0 |
//! | VirusScan |    1730  | 902 KiB | 0.35 |   420 |  17 400  | 4500 | 0.30 |  2.5 |     8.0 |
//! | Linpack   |     134  |   260 B | 0.10 |    96 |     113  | 2400 | 0.10 |  0.0 |     5.0 |
//!
//! Provenance, column by column:
//!
//! * **code KiB** (`app_code_bytes`) — Table II upload totals: over
//!   100 requests across 5 runtimes, VM-mode upload exceeds
//!   Rattrap-mode upload by exactly 4 extra APK pushes, which pins the
//!   per-app code size (OCR ≈ 1.4 MB; ChessGame's engine + opening
//!   book is the largest; Linpack is a thin math kernel).
//! * **payload / p.cv** (`payload_bytes_mean`, `payload_cv`) — Fig. 3
//!   data composition: OCR ships a page bitmap (~280 KiB), VirusScan
//!   ships the file batch (~902 KiB), ChessGame ships a position and
//!   history (~26 KiB), Linpack ships parameters only (260 B, and the
//!   tightest spread).
//! * **ctl B / result B** (`control_bytes`, `result_bytes_mean`) —
//!   Fig. 3 residuals after code + payload: control-plane chatter per
//!   request and the returned result (VirusScan's 17.4 kB scan report
//!   is the outlier; the rest return a few hundred bytes).
//! * **Mc / c.cv** (`compute_megacycles_mean`, `compute_cv`) — Fig. 1
//!   phase durations scaled to the 2.66 GHz paper server; ChessGame is
//!   "relatively small … high fluctuation" (§III-C), hence the 0.50
//!   CV; Linpack's fixed-order solve is near-deterministic at 0.10.
//! * **I/O×** (`offload_io_factor`) — §III-C: server-side offloading
//!   I/O as a multiple of the payload. VirusScan "spawns more I/O
//!   requests than other benchmarks" (2.5×); Linpack performs none.
//! * **think s** (`think_time_secs`) — §VI inter-request pacing per
//!   workload session.
//!
//! Changing any cell changes charged work and therefore every golden
//! digest; the regression tests in `crates/rattrap/tests/` pin the
//! digests produced by exactly these values.

use crate::profile::WorkloadKind;

const KIB: u64 = 1024;

/// One row of the calibration table (one workload's constants).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalRow {
    /// Size of the mobile code (APK) pushed to a fresh runtime, bytes.
    pub app_code_bytes: u64,
    /// Mean per-request file + parameter bytes.
    pub payload_bytes_mean: u64,
    /// Coefficient of variation of the payload size.
    pub payload_cv: f64,
    /// Control-message bytes per request.
    pub control_bytes: u64,
    /// Mean result bytes returned to the device.
    pub result_bytes_mean: u64,
    /// Mean compute work per request, megacycles.
    pub compute_megacycles_mean: f64,
    /// Coefficient of variation of the compute work.
    pub compute_cv: f64,
    /// Server-side offloading I/O per request, as a multiple of the
    /// payload.
    pub offload_io_factor: f64,
    /// Mean think time between a device's consecutive requests, secs.
    pub think_time_secs: f64,
}

/// The table, in [`WorkloadKind::ALL`] order.
pub const TABLE: [CalRow; 4] = [
    // OCR — compute-intensive with file transfer.
    CalRow {
        app_code_bytes: 1402 * KIB,
        payload_bytes_mean: 280 * KIB,
        payload_cv: 0.30,
        control_bytes: 410,
        result_bytes_mean: 1540,
        compute_megacycles_mean: 6650.0,
        compute_cv: 0.25,
        offload_io_factor: 2.0,
        think_time_secs: 6.0,
    },
    // ChessGame — interactive, network-chatty, bursty compute.
    CalRow {
        app_code_bytes: 2128 * KIB,
        payload_bytes_mean: 26 * KIB,
        payload_cv: 0.40,
        control_bytes: 610,
        result_bytes_mean: 348,
        compute_megacycles_mean: 1600.0,
        compute_cv: 0.50,
        offload_io_factor: 0.5,
        think_time_secs: 3.0,
    },
    // VirusScan — I/O heavy.
    CalRow {
        app_code_bytes: 1730 * KIB,
        payload_bytes_mean: 902 * KIB,
        payload_cv: 0.35,
        control_bytes: 420,
        result_bytes_mean: 17_400,
        compute_megacycles_mean: 4500.0,
        compute_cv: 0.30,
        offload_io_factor: 2.5,
        think_time_secs: 8.0,
    },
    // Linpack — pure computation, parameter-sized requests.
    CalRow {
        app_code_bytes: 134 * KIB,
        payload_bytes_mean: 260,
        payload_cv: 0.10,
        control_bytes: 96,
        result_bytes_mean: 113,
        compute_megacycles_mean: 2400.0,
        compute_cv: 0.10,
        offload_io_factor: 0.0,
        think_time_secs: 5.0,
    },
];

/// The calibration row for one workload.
pub const fn row(kind: WorkloadKind) -> &'static CalRow {
    &TABLE[kind as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_indexed_in_all_order() {
        // `row()` indexes by discriminant; the discriminants must walk
        // ALL in order or the table silently shuffles.
        for (i, kind) in WorkloadKind::ALL.into_iter().enumerate() {
            assert_eq!(kind as usize, i, "{}", kind.label());
            assert_eq!(*row(kind), TABLE[i]);
        }
    }

    #[test]
    fn documented_invariants_hold() {
        // §III-C: VirusScan is the I/O outlier, ChessGame the CV
        // outlier, Linpack pure compute with the tightest spreads.
        let io = |k: WorkloadKind| row(k).payload_bytes_mean as f64 * row(k).offload_io_factor;
        assert!(WorkloadKind::ALL
            .iter()
            .all(|&k| io(WorkloadKind::VirusScan) >= io(k)));
        assert!(WorkloadKind::ALL
            .iter()
            .all(|&k| row(WorkloadKind::ChessGame).compute_cv >= row(k).compute_cv));
        assert_eq!(row(WorkloadKind::Linpack).offload_io_factor, 0.0);
        assert!(WorkloadKind::ALL
            .iter()
            .all(|&k| row(WorkloadKind::Linpack).payload_cv <= row(k).payload_cv));
    }
}
