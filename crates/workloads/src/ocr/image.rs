//! Grayscale images, text rendering and noise — the input side of the
//! OCR workload.

use super::font::{glyph, GLYPH_H, GLYPH_SPACING, GLYPH_W};
use simkit::SimRng;

/// An 8-bit grayscale image (0 = black ink, 255 = white paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major pixels.
    pub pixels: Vec<u8>,
}

impl GrayImage {
    /// A blank (white) image.
    pub fn blank(width: usize, height: usize) -> Self {
        GrayImage {
            width,
            height,
            pixels: vec![255; width * height],
        }
    }

    /// Pixel accessor.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.pixels[y * self.width + x]
    }

    /// Pixel mutator.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        self.pixels[y * self.width + x] = v;
    }

    /// Size in bytes when "transferred" (raw + small header).
    pub fn byte_size(&self) -> u64 {
        (self.pixels.len() + 16) as u64
    }
}

/// Integer scale factor applied when rendering glyphs (bigger scale =
/// more pixels = more OCR compute).
pub const RENDER_SCALE: usize = 3;

/// Render `text` (characters outside the alphabet become spaces) into a
/// fresh image, one line, glyphs scaled by [`RENDER_SCALE`].
pub fn render_text(text: &str) -> GrayImage {
    let cell_w = (GLYPH_W + GLYPH_SPACING) * RENDER_SCALE;
    let margin = 2 * RENDER_SCALE;
    let width = margin * 2 + cell_w * text.chars().count().max(1);
    let height = margin * 2 + GLYPH_H * RENDER_SCALE;
    let mut img = GrayImage::blank(width, height);
    for (i, ch) in text.chars().enumerate() {
        let g = glyph(ch).or_else(|| glyph(' ')).expect("space exists");
        let x0 = margin + i * cell_w;
        for gy in 0..GLYPH_H {
            for gx in 0..GLYPH_W {
                if super::font::pixel(g, gx, gy) {
                    for sy in 0..RENDER_SCALE {
                        for sx in 0..RENDER_SCALE {
                            img.set(
                                x0 + gx * RENDER_SCALE + sx,
                                margin + gy * RENDER_SCALE + sy,
                                0,
                            );
                        }
                    }
                }
            }
        }
    }
    img
}

/// Add zero-mean Gaussian noise with `sigma` gray levels and flip a
/// `salt_pepper` fraction of pixels to pure black/white.
pub fn add_noise(img: &mut GrayImage, sigma: f64, salt_pepper: f64, rng: &mut SimRng) {
    for p in img.pixels.iter_mut() {
        if rng.bernoulli(salt_pepper) {
            *p = if rng.bernoulli(0.5) { 0 } else { 255 };
        } else if sigma > 0.0 {
            let noisy = *p as f64 + rng.normal(0.0, sigma);
            *p = noisy.clamp(0.0, 255.0) as u8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_image_is_white() {
        let img = GrayImage::blank(10, 5);
        assert_eq!(img.get(0, 0), 255);
        assert_eq!(img.get(9, 4), 255);
        assert_eq!(img.pixels.len(), 50);
    }

    #[test]
    fn rendering_paints_ink() {
        let img = render_text("HI");
        let ink = img.pixels.iter().filter(|&&p| p == 0).count();
        assert!(ink > 50, "expected ink pixels, got {ink}");
        // Wider text → wider image.
        assert!(render_text("HELLO").width > img.width);
    }

    #[test]
    fn unknown_chars_render_as_space() {
        let with_punct = render_text("A!B");
        let with_space = render_text("A B");
        assert_eq!(with_punct.pixels, with_space.pixels);
    }

    #[test]
    fn noise_perturbs_pixels_deterministically() {
        let mut a = render_text("TEST");
        let mut b = a.clone();
        let clean = a.clone();
        add_noise(&mut a, 20.0, 0.01, &mut SimRng::new(7));
        add_noise(&mut b, 20.0, 0.01, &mut SimRng::new(7));
        assert_eq!(a.pixels, b.pixels, "same seed, same noise");
        assert_ne!(a.pixels, clean.pixels, "noise changed something");
    }

    #[test]
    fn byte_size_tracks_dimensions() {
        let img = GrayImage::blank(100, 50);
        assert_eq!(img.byte_size(), 5016);
    }
}
