//! A 5×7 bitmap font for the characters the OCR workload recognises.
//!
//! Each glyph is 7 rows of 5 bits, MSB = leftmost column.

/// Glyph width in pixels.
pub const GLYPH_W: usize = 5;
/// Glyph height in pixels.
pub const GLYPH_H: usize = 7;
/// Horizontal spacing between glyph cells.
pub const GLYPH_SPACING: usize = 1;

/// The recognisable alphabet, in template order.
pub const ALPHABET: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";

#[rustfmt::skip]
const GLYPHS: [[u8; 7]; 37] = [
    // A-Z
    [0b01110,0b10001,0b10001,0b11111,0b10001,0b10001,0b10001], // A
    [0b11110,0b10001,0b10001,0b11110,0b10001,0b10001,0b11110], // B
    [0b01110,0b10001,0b10000,0b10000,0b10000,0b10001,0b01110], // C
    [0b11110,0b10001,0b10001,0b10001,0b10001,0b10001,0b11110], // D
    [0b11111,0b10000,0b10000,0b11110,0b10000,0b10000,0b11111], // E
    [0b11111,0b10000,0b10000,0b11110,0b10000,0b10000,0b10000], // F
    [0b01110,0b10001,0b10000,0b10111,0b10001,0b10001,0b01111], // G
    [0b10001,0b10001,0b10001,0b11111,0b10001,0b10001,0b10001], // H
    [0b01110,0b00100,0b00100,0b00100,0b00100,0b00100,0b01110], // I
    [0b00111,0b00010,0b00010,0b00010,0b00010,0b10010,0b01100], // J
    [0b10001,0b10010,0b10100,0b11000,0b10100,0b10010,0b10001], // K
    [0b10000,0b10000,0b10000,0b10000,0b10000,0b10000,0b11111], // L
    [0b10001,0b11011,0b10101,0b10101,0b10001,0b10001,0b10001], // M
    [0b10001,0b11001,0b10101,0b10011,0b10001,0b10001,0b10001], // N
    [0b01110,0b10001,0b10001,0b10001,0b10001,0b10001,0b01110], // O
    [0b11110,0b10001,0b10001,0b11110,0b10000,0b10000,0b10000], // P
    [0b01110,0b10001,0b10001,0b10001,0b10101,0b10010,0b01101], // Q
    [0b11110,0b10001,0b10001,0b11110,0b10100,0b10010,0b10001], // R
    [0b01111,0b10000,0b10000,0b01110,0b00001,0b00001,0b11110], // S
    [0b11111,0b00100,0b00100,0b00100,0b00100,0b00100,0b00100], // T
    [0b10001,0b10001,0b10001,0b10001,0b10001,0b10001,0b01110], // U
    [0b10001,0b10001,0b10001,0b10001,0b10001,0b01010,0b00100], // V
    [0b10001,0b10001,0b10001,0b10101,0b10101,0b11011,0b10001], // W
    [0b10001,0b01010,0b00100,0b00100,0b00100,0b01010,0b10001], // X
    [0b10001,0b10001,0b01010,0b00100,0b00100,0b00100,0b00100], // Y
    [0b11111,0b00001,0b00010,0b00100,0b01000,0b10000,0b11111], // Z
    // 0-9
    [0b01110,0b10001,0b10011,0b10101,0b11001,0b10001,0b01110], // 0
    [0b00100,0b01100,0b00100,0b00100,0b00100,0b00100,0b01110], // 1
    [0b01110,0b10001,0b00001,0b00110,0b01000,0b10000,0b11111], // 2
    [0b11111,0b00010,0b00100,0b00110,0b00001,0b10001,0b01110], // 3
    [0b00010,0b00110,0b01010,0b10010,0b11111,0b00010,0b00010], // 4
    [0b11111,0b10000,0b11110,0b00001,0b00001,0b10001,0b01110], // 5
    [0b00110,0b01000,0b10000,0b11110,0b10001,0b10001,0b01110], // 6
    [0b11111,0b00001,0b00010,0b00100,0b01000,0b01000,0b01000], // 7
    [0b01110,0b10001,0b10001,0b01110,0b10001,0b10001,0b01110], // 8
    [0b01110,0b10001,0b10001,0b01111,0b00001,0b00010,0b01100], // 9
    // space
    [0, 0, 0, 0, 0, 0, 0],
];

/// Bitmap for `ch`, or `None` if outside the alphabet.
pub fn glyph(ch: char) -> Option<&'static [u8; 7]> {
    let idx = ALPHABET.find(ch.to_ascii_uppercase())?;
    Some(&GLYPHS[idx])
}

/// Character at template index `idx`.
pub fn char_at(idx: usize) -> char {
    ALPHABET.as_bytes()[idx] as char
}

/// Number of templates.
pub fn template_count() -> usize {
    ALPHABET.len()
}

/// Is pixel (x, y) of `g` set?
#[inline]
pub fn pixel(g: &[u8; 7], x: usize, y: usize) -> bool {
    debug_assert!(x < GLYPH_W && y < GLYPH_H);
    (g[y] >> (GLYPH_W - 1 - x)) & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_covers_templates() {
        assert_eq!(ALPHABET.len(), GLYPHS.len());
        assert_eq!(template_count(), 37);
    }

    #[test]
    fn glyph_lookup_is_case_insensitive() {
        assert_eq!(glyph('a'), glyph('A'));
        assert!(glyph('A').is_some());
        assert!(glyph('!').is_none());
    }

    #[test]
    fn glyphs_are_distinct() {
        for (i, gi) in GLYPHS.iter().enumerate() {
            for (j, gj) in GLYPHS.iter().enumerate().skip(i + 1) {
                assert_ne!(gi, gj, "{} and {} share a bitmap", char_at(i), char_at(j));
            }
        }
    }

    #[test]
    fn pixel_extraction() {
        let a = glyph('A').unwrap();
        // Row 0 of 'A' is 01110: x=0 clear, x=1..4 set, x=4 clear.
        assert!(!pixel(a, 0, 0));
        assert!(pixel(a, 1, 0));
        assert!(pixel(a, 3, 0));
        assert!(!pixel(a, 4, 0));
    }

    #[test]
    fn space_is_blank() {
        let s = glyph(' ').unwrap();
        for y in 0..GLYPH_H {
            for x in 0..GLYPH_W {
                assert!(!pixel(s, x, y));
            }
        }
    }
}
