//! Template-matching recogniser — the compute kernel of the OCR
//! workload (the paper's OCR uses Tesseract via JNI; ours is a
//! from-scratch correlation matcher over the same glyph geometry).

use super::font::{char_at, glyph, template_count, GLYPH_H, GLYPH_SPACING, GLYPH_W};
use super::image::{GrayImage, RENDER_SCALE};

/// Result of recognising one image.
#[derive(Debug, Clone, PartialEq)]
pub struct OcrResult {
    /// Recognised text.
    pub text: String,
    /// Mean per-character confidence in `[0, 1]`.
    pub confidence: f64,
    /// Template comparisons performed (compute-cost proxy).
    pub comparisons: u64,
}

/// Binarize with a fixed mid-gray threshold.
fn is_ink(img: &GrayImage, x: usize, y: usize) -> bool {
    img.get(x, y) < 128
}

/// Score a glyph template against the image cell at (x0, y0):
/// fraction of agreeing pixels over the scaled glyph box.
fn match_score(img: &GrayImage, x0: usize, y0: usize, g: &[u8; 7]) -> f64 {
    let mut agree = 0usize;
    let mut total = 0usize;
    for gy in 0..GLYPH_H {
        for gx in 0..GLYPH_W {
            let want = super::font::pixel(g, gx, gy);
            for sy in 0..RENDER_SCALE {
                for sx in 0..RENDER_SCALE {
                    let x = x0 + gx * RENDER_SCALE + sx;
                    let y = y0 + gy * RENDER_SCALE + sy;
                    if x < img.width && y < img.height {
                        total += 1;
                        if is_ink(img, x, y) == want {
                            agree += 1;
                        }
                    }
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        agree as f64 / total as f64
    }
}

/// Recognise a single-line image produced by
/// [`render_text`](super::image::render_text) (possibly noisy).
pub fn recognize(img: &GrayImage) -> OcrResult {
    let cell_w = (GLYPH_W + GLYPH_SPACING) * RENDER_SCALE;
    let margin = 2 * RENDER_SCALE;
    if img.width <= 2 * margin || img.height <= 2 * margin {
        return OcrResult {
            text: String::new(),
            confidence: 0.0,
            comparisons: 0,
        };
    }
    let cells = (img.width - 2 * margin) / cell_w;
    let mut text = String::with_capacity(cells);
    let mut conf_sum = 0.0;
    let mut comparisons = 0u64;
    for c in 0..cells {
        let x0 = margin + c * cell_w;
        let mut best = (0usize, -1.0f64);
        for t in 0..template_count() {
            let g = glyph(char_at(t)).expect("template chars have glyphs");
            let score = match_score(img, x0, margin, g);
            comparisons += 1;
            if score > best.1 {
                best = (t, score);
            }
        }
        text.push(char_at(best.0));
        conf_sum += best.1;
    }
    let confidence = if cells == 0 {
        0.0
    } else {
        conf_sum / cells as f64
    };
    // Trim trailing spaces the cell grid may have produced.
    let text = text.trim_end().to_string();
    OcrResult {
        text,
        confidence,
        comparisons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ocr::image::{add_noise, render_text};
    use simkit::SimRng;

    #[test]
    fn clean_text_round_trips() {
        for text in ["HELLO WORLD", "RATTRAP 2017", "THE QUICK BROWN FOX 123"] {
            let img = render_text(text);
            let r = recognize(&img);
            assert_eq!(r.text, text);
            assert!(r.confidence > 0.99, "confidence {}", r.confidence);
        }
    }

    #[test]
    fn survives_moderate_noise() {
        let mut rng = SimRng::new(42);
        let text = "OFFLOAD THIS TO THE CLOUD";
        let mut img = render_text(text);
        add_noise(&mut img, 30.0, 0.02, &mut rng);
        let r = recognize(&img);
        // Allow a couple of character errors under noise.
        let errors = r
            .text
            .chars()
            .zip(text.chars())
            .filter(|(a, b)| a != b)
            .count()
            + r.text.len().abs_diff(text.len());
        assert!(errors <= 2, "got {:?} ({errors} errors)", r.text);
    }

    #[test]
    fn heavy_noise_lowers_confidence() {
        let mut rng = SimRng::new(43);
        let mut clean = render_text("CONFIDENCE");
        let clean_conf = recognize(&clean).confidence;
        add_noise(&mut clean, 120.0, 0.25, &mut rng);
        let noisy_conf = recognize(&clean).confidence;
        assert!(noisy_conf < clean_conf);
    }

    #[test]
    fn comparisons_scale_with_text_length() {
        let short = recognize(&render_text("AB"));
        let long = recognize(&render_text("ABCDEFGH"));
        assert_eq!(short.comparisons, 2 * template_count() as u64);
        assert_eq!(long.comparisons, 8 * template_count() as u64);
    }

    #[test]
    fn degenerate_images() {
        let tiny = GrayImage::blank(3, 3);
        let r = recognize(&tiny);
        assert_eq!(r.text, "");
        assert_eq!(r.comparisons, 0);
    }
}
