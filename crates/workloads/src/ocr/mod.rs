//! OCR — the computation-intensive benchmark with file transfer
//! (§III-A). The paper's version wraps Google Tesseract behind JNI;
//! ours renders text to noisy bitmaps and recognises it with template
//! matching, exercising the same shape of work: a sizable image upload
//! followed by CPU-bound recognition.

pub mod font;
pub mod image;
pub mod recognize;

pub use image::{add_noise, render_text, GrayImage};
pub use recognize::{recognize, OcrResult};

use simkit::SimRng;

/// One offloadable OCR request: an image to recognise.
#[derive(Debug, Clone)]
pub struct OcrRequest {
    /// The scanned page.
    pub image: GrayImage,
    /// Ground-truth text (for accuracy checks; not transferred).
    pub truth: String,
}

/// Generate a request with `words` pseudo-words of noisy text.
pub fn generate_request(words: usize, rng: &mut SimRng) -> OcrRequest {
    const VOCAB: [&str; 12] = [
        "CLOUD",
        "MOBILE",
        "OFFLOAD",
        "CONTAINER",
        "ANDROID",
        "BINDER",
        "KERNEL",
        "RATTRAP",
        "DRIVER",
        "IMAGE",
        "CACHE",
        "LAYER",
    ];
    let text: Vec<&str> = (0..words)
        .map(|_| VOCAB[rng.uniform_u64(0, VOCAB.len() as u64 - 1) as usize])
        .collect();
    let truth = text.join(" ");
    let mut image = render_text(&truth);
    add_noise(&mut image, 25.0, 0.01, rng);
    OcrRequest { image, truth }
}

/// Execute an OCR request (cloud-side code path).
pub fn execute(req: &OcrRequest) -> OcrResult {
    recognize(&req.image)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_requests_recognise_accurately() {
        let mut rng = SimRng::new(1);
        let req = generate_request(5, &mut rng);
        let r = execute(&req);
        let errors = r
            .text
            .chars()
            .zip(req.truth.chars())
            .filter(|(a, b)| a != b)
            .count()
            + r.text.len().abs_diff(req.truth.len());
        assert!(errors <= 2, "truth {:?} got {:?}", req.truth, r.text);
    }

    #[test]
    fn request_sizes_grow_with_words() {
        let mut rng = SimRng::new(2);
        let small = generate_request(2, &mut rng);
        let large = generate_request(20, &mut rng);
        assert!(large.image.byte_size() > 5 * small.image.byte_size());
    }
}
