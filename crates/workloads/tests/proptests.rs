//! Property tests for the workload kernels — each implementation is
//! checked against a reference model or an algebraic invariant.

use proptest::prelude::*;
use simkit::SimRng;
use workloads::chess::{apply_move, legal_moves, Board, Color, PieceKind};
use workloads::linpack::{lu_factor, lu_solve, Matrix};
use workloads::ocr::{recognize, render_text};
use workloads::virusscan::AhoCorasick;

/// Naive multi-pattern search as the Aho–Corasick reference.
fn naive_find_all(patterns: &[Vec<u8>], hay: &[u8]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (pi, pat) in patterns.iter().enumerate() {
        if pat.is_empty() {
            continue;
        }
        for end in pat.len()..=hay.len() {
            if &hay[end - pat.len()..end] == pat.as_slice() {
                out.push((pi, end));
            }
        }
    }
    out.sort_unstable();
    out
}

proptest! {
    /// Aho–Corasick finds exactly what the naive scan finds, for any
    /// patterns and haystack.
    #[test]
    fn aho_corasick_matches_naive(
        patterns in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..6), 1..8),
        hay in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let ac = AhoCorasick::build(&patterns);
        let mut got: Vec<(usize, usize)> =
            ac.find_all(&hay).iter().map(|m| (m.pattern, m.end)).collect();
        got.sort_unstable();
        prop_assert_eq!(got, naive_find_all(&patterns, &hay));
    }

    /// Random legal game walks preserve chess invariants: exactly one
    /// king per side, pawn counts never grow, FEN round-trips.
    #[test]
    fn chess_random_walk_invariants(seed in any::<u64>(), plies in 1usize..40) {
        let mut rng = SimRng::new(seed);
        let mut board = Board::start();
        for _ in 0..plies {
            let moves = legal_moves(&board);
            if moves.is_empty() {
                break; // mate or stalemate
            }
            let mv = moves[rng.uniform_u64(0, moves.len() as u64 - 1) as usize];
            board = apply_move(&board, mv);
            for color in [Color::White, Color::Black] {
                let kings = board
                    .pieces_of(color)
                    .iter()
                    .filter(|(_, p)| p.kind == PieceKind::King)
                    .count();
                prop_assert_eq!(kings, 1, "exactly one {:?} king", color);
                let pawns = board
                    .pieces_of(color)
                    .iter()
                    .filter(|(_, p)| p.kind == PieceKind::Pawn)
                    .count();
                prop_assert!(pawns <= 8);
                prop_assert!(board.pieces_of(color).len() <= 16);
            }
            let fen = board.to_fen();
            prop_assert_eq!(Board::from_fen(&fen).unwrap().to_fen(), fen);
        }
    }

    /// The side NOT to move is never in check (kings can't be captured).
    #[test]
    fn chess_opponent_never_left_in_check(seed in any::<u64>(), plies in 1usize..30) {
        let mut rng = SimRng::new(seed);
        let mut board = Board::start();
        for _ in 0..plies {
            let moves = legal_moves(&board);
            if moves.is_empty() {
                break;
            }
            let mv = moves[rng.uniform_u64(0, moves.len() as u64 - 1) as usize];
            board = apply_move(&board, mv);
            prop_assert!(
                !workloads::chess::in_check(&board, board.side.opponent()),
                "mover left their king hanging after {}",
                mv.uci()
            );
        }
    }

    /// LU solve: A·x recovers b for random well-conditioned systems.
    #[test]
    fn linpack_solves_random_systems(seed in any::<u64>(), n in 2usize..40) {
        let mut rng = SimRng::new(seed);
        let mut a = Matrix::random(n, &mut rng);
        // Diagonal dominance guarantees nonsingularity.
        for i in 0..n {
            let v = a.get(i, i) + n as f64;
            a.set(i, i, v);
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 1.5).collect();
        let b = a.mul_vec(&x_true);
        let mut lu = a.clone();
        let piv = lu_factor(&mut lu).expect("diagonally dominant");
        let x = lu_solve(&lu, &piv, &b);
        for (got, want) in x.iter().zip(&x_true) {
            prop_assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    /// OCR round-trips any clean text over its alphabet.
    #[test]
    fn ocr_clean_roundtrip(words in prop::collection::vec("[A-Z0-9]{1,8}", 1..5)) {
        let text = words.join(" ");
        let img = render_text(&text);
        let r = recognize(&img);
        prop_assert_eq!(r.text, text);
        prop_assert!(r.confidence > 0.99);
    }
}
