//! Typed metrics registry: counters, gauges, sim-time histograms.
//!
//! Handles are registered once ([`crate::Recorder::counter`] and
//! friends) and then update without any name lookup — a handle holds
//! a dense slot index into the recorder's registry. Handles from a
//! disabled recorder are no-ops, so hot paths keep a single branch.

use crate::recorder::Inner;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Log2-bucketed histogram over simulated microseconds.
///
/// Bucket `i` covers values whose bit length is `i` (bucket 0 holds
/// zero); the top bucket absorbs overflow. Exact count / sum / max
/// are kept alongside, so means are exact and only quantiles are
/// bucket-resolution approximations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimHistogram {
    buckets: [u64; Self::BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl SimHistogram {
    /// Bucket count: values up to 2^46 µs (~2.2 years of sim time)
    /// resolve exactly; larger ones land in the top bucket.
    pub const BUCKETS: usize = 48;

    /// An empty histogram.
    pub fn new() -> Self {
        SimHistogram {
            buckets: [0; Self::BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    fn bucket_of(us: u64) -> usize {
        ((64 - us.leading_zeros()) as usize).min(Self::BUCKETS - 1)
    }

    /// Record one observation.
    pub fn observe(&mut self, us: u64) {
        self.buckets[Self::bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of observations (µs, saturating).
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Largest observation (µs).
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Exact mean (µs), or 0 for an empty histogram.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Upper bound (µs) of the bucket containing quantile `q` in
    /// `[0, 1]` — a bucket-resolution approximation.
    pub fn quantile_upper_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        self.max_us
    }

    /// Fold another histogram into this one: buckets and counts add,
    /// sums saturate, the max is the max of maxes. Used when merging
    /// per-shard recorders into one trace.
    pub fn merge(&mut self, other: &SimHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Non-empty buckets as `(upper_bound_us, count)` pairs, for
    /// export.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { (1u64 << i) - 1 }, c))
            .collect()
    }
}

impl Default for SimHistogram {
    fn default() -> Self {
        SimHistogram::new()
    }
}

/// Registry storage inside the recorder: names are interned to dense
/// slots at registration, so updates are index operations.
#[derive(Debug, Default)]
pub(crate) struct MetricsStore {
    counter_ix: BTreeMap<String, usize>,
    counters: Vec<u64>,
    gauge_ix: BTreeMap<String, usize>,
    gauges: Vec<f64>,
    hist_ix: BTreeMap<String, usize>,
    hists: Vec<SimHistogram>,
}

impl MetricsStore {
    pub(crate) fn counter_slot(&mut self, name: &str) -> usize {
        if let Some(&ix) = self.counter_ix.get(name) {
            return ix;
        }
        let ix = self.counters.len();
        self.counters.push(0);
        self.counter_ix.insert(name.to_owned(), ix);
        ix
    }

    pub(crate) fn gauge_slot(&mut self, name: &str) -> usize {
        if let Some(&ix) = self.gauge_ix.get(name) {
            return ix;
        }
        let ix = self.gauges.len();
        self.gauges.push(0.0);
        self.gauge_ix.insert(name.to_owned(), ix);
        ix
    }

    pub(crate) fn hist_slot(&mut self, name: &str) -> usize {
        if let Some(&ix) = self.hist_ix.get(name) {
            return ix;
        }
        let ix = self.hists.len();
        self.hists.push(SimHistogram::new());
        self.hist_ix.insert(name.to_owned(), ix);
        ix
    }

    pub(crate) fn counter_add(&mut self, ix: usize, delta: u64) {
        self.counters[ix] = self.counters[ix].saturating_add(delta);
    }

    pub(crate) fn gauge_set(&mut self, ix: usize, value: f64) {
        self.gauges[ix] = value;
    }

    pub(crate) fn hist_observe(&mut self, ix: usize, us: u64) {
        self.hists[ix].observe(us);
    }

    pub(crate) fn hist_merge(&mut self, ix: usize, other: &SimHistogram) {
        self.hists[ix].merge(other);
    }

    pub(crate) fn counters_map(&self) -> BTreeMap<String, u64> {
        self.counter_ix
            .iter()
            .map(|(name, &ix)| (name.clone(), self.counters[ix]))
            .collect()
    }

    pub(crate) fn gauges_map(&self) -> BTreeMap<String, f64> {
        self.gauge_ix
            .iter()
            .map(|(name, &ix)| (name.clone(), self.gauges[ix]))
            .collect()
    }

    pub(crate) fn hists_map(&self) -> BTreeMap<String, SimHistogram> {
        self.hist_ix
            .iter()
            .map(|(name, &ix)| (name.clone(), self.hists[ix].clone()))
            .collect()
    }
}

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    slot: Option<(Rc<RefCell<Inner>>, usize)>,
}

impl Counter {
    pub(crate) fn live(inner: Rc<RefCell<Inner>>, ix: usize) -> Self {
        Counter {
            slot: Some((inner, ix)),
        }
    }

    pub(crate) fn noop() -> Self {
        Counter { slot: None }
    }

    /// Add `delta` (no-op on a disabled recorder's handle).
    pub fn add(&self, delta: u64) {
        if let Some((inner, ix)) = &self.slot {
            inner.borrow_mut().metrics.counter_add(*ix, delta);
        }
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }
}

/// A last-value-wins gauge handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    slot: Option<(Rc<RefCell<Inner>>, usize)>,
}

impl Gauge {
    pub(crate) fn live(inner: Rc<RefCell<Inner>>, ix: usize) -> Self {
        Gauge {
            slot: Some((inner, ix)),
        }
    }

    pub(crate) fn noop() -> Self {
        Gauge { slot: None }
    }

    /// Set the gauge.
    pub fn set(&self, value: f64) {
        if let Some((inner, ix)) = &self.slot {
            inner.borrow_mut().metrics.gauge_set(*ix, value);
        }
    }
}

/// A sim-time histogram handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    slot: Option<(Rc<RefCell<Inner>>, usize)>,
}

impl Histogram {
    pub(crate) fn live(inner: Rc<RefCell<Inner>>, ix: usize) -> Self {
        Histogram {
            slot: Some((inner, ix)),
        }
    }

    pub(crate) fn noop() -> Self {
        Histogram { slot: None }
    }

    /// Record one duration in simulated microseconds.
    pub fn observe_us(&self, us: u64) {
        if let Some((inner, ix)) = &self.slot {
            inner.borrow_mut().metrics.hist_observe(*ix, us);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = SimHistogram::new();
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_us(), 1030);
        assert_eq!(h.max_us(), 1024);
        let buckets = h.nonzero_buckets();
        // 0 → bucket 0; 1 → bit length 1 (upper 1); 2,3 → bit length 2
        // (upper 3); 1024 → bit length 11 (upper 2047).
        assert_eq!(buckets, vec![(0, 1), (1, 1), (3, 2), (2047, 1)]);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = SimHistogram::new();
        for v in [10, 20, 30, 40, 5000] {
            h.observe(v);
        }
        assert_eq!(h.quantile_upper_us(0.5), 31, "median lands in [16,31]");
        assert_eq!(h.quantile_upper_us(1.0), 8191);
        assert_eq!(SimHistogram::new().quantile_upper_us(0.5), 0);
    }

    #[test]
    fn huge_values_land_in_top_bucket() {
        let mut h = SimHistogram::new();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.nonzero_buckets().len(), 1);
        assert_eq!(h.max_us(), u64::MAX);
    }
}
