//! The bounded ring-buffer recorder and its snapshot type.

use crate::metrics::{Counter, Gauge, Histogram, MetricsStore, SimHistogram};
use crate::span::{AttrValue, Attrs, SpanId, Subsystem, TraceEvent};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Recorder configuration: ring capacity and per-subsystem sampling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Maximum events held in the ring; the oldest are evicted (and
    /// counted in [`TraceSnapshot::dropped`]) when it fills.
    pub capacity: usize,
    /// Per-subsystem sampling control, indexed by
    /// [`Subsystem::index`]: `0` disables the subsystem entirely
    /// (spans return [`SpanId::NONE`], instants vanish), `1` records
    /// everything, `n` keeps every n-th *instant* (spans are
    /// structural and are never sampled away while the subsystem is
    /// enabled, so span trees stay well-formed).
    pub sample: [u32; Subsystem::ALL.len()],
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            capacity: 1 << 20,
            sample: [1; Subsystem::ALL.len()],
        }
    }
}

impl RecorderConfig {
    /// Everything on, ring bounded at `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        RecorderConfig {
            capacity,
            ..Self::default()
        }
    }

    /// Set one subsystem's sampling control (builder style).
    pub fn sample_one_in(mut self, subsystem: Subsystem, n: u32) -> Self {
        self.sample[subsystem.index()] = n;
        self
    }
}

/// Mutable recorder state behind the shared handle.
#[derive(Debug)]
pub(crate) struct Inner {
    cfg: RecorderConfig,
    /// Current simulation time, stamped by the engine at each event
    /// pop so lower layers (kernel, host) that have no `now` of their
    /// own timestamp correctly.
    now_us: u64,
    next_span: u64,
    /// Request id automatically appended (as a `req` attr) to every
    /// event recorded while set — the engine sets it around
    /// request-scoped event handling so lower layers' events are
    /// attributed without plumbing ids through every signature.
    current_req: Option<u64>,
    /// Fallback parent for spans started with [`SpanId::NONE`] —
    /// lets e.g. an executor parent its job spans under the phase
    /// span the engine is currently in.
    ambient_parent: SpanId,
    /// Fixed-capacity ring: grows up to `cfg.capacity`, then wraps in
    /// place — eviction overwrites the oldest slot directly instead of
    /// shifting, so a full ring costs one slot drop + one move per
    /// event. `ring_start` is the logical head once wrapped.
    events: Vec<TraceEvent>,
    ring_start: usize,
    dropped: u64,
    sample_counters: [u32; Subsystem::ALL.len()],
    pub(crate) metrics: MetricsStore,
    meta: BTreeMap<String, String>,
}

impl Inner {
    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.cfg.capacity {
            self.events.push(ev);
        } else if self.cfg.capacity == 0 {
            self.dropped += 1;
        } else {
            self.events[self.ring_start] = ev;
            self.ring_start += 1;
            if self.ring_start == self.cfg.capacity {
                self.ring_start = 0;
            }
            self.dropped += 1;
        }
    }

    /// Buffered events in emission (oldest-first) order.
    fn iter_events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (tail, head) = self.events.split_at(self.ring_start);
        head.iter().chain(tail)
    }

    fn stamp_req(&self, attrs: &mut Attrs) {
        if let Some(req) = self.current_req {
            if !attrs.iter().any(|(k, _)| *k == "req") {
                attrs.push(("req", AttrValue::U64(req)));
            }
        }
    }
}

/// Shared handle to an observability recorder.
///
/// Cloning shares the underlying ring and registry, so one handle can
/// be fanned out to every layer of a simulation. The disabled handle
/// ([`Recorder::disabled`], also [`Default`]) holds no allocation and
/// every method on it is a single `Option` check — the zero-cost
/// path golden-digest tests rely on.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Rc<RefCell<Inner>>>,
}

impl Recorder {
    /// A live recorder with the given configuration.
    pub fn enabled(cfg: RecorderConfig) -> Self {
        Recorder {
            inner: Some(Rc::new(RefCell::new(Inner {
                cfg,
                now_us: 0,
                next_span: 0,
                current_req: None,
                ambient_parent: SpanId::NONE,
                events: Vec::new(),
                ring_start: 0,
                dropped: 0,
                sample_counters: [0; Subsystem::ALL.len()],
                metrics: MetricsStore::default(),
                meta: BTreeMap::new(),
            }))),
        }
    }

    /// The no-op recorder: records nothing, allocates nothing.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// `true` when this handle records events.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Advance the recorder's notion of simulation time (µs). The
    /// engine calls this once per popped event; layers without their
    /// own clock stamp from it.
    pub fn set_now(&self, at_us: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().now_us = at_us;
        }
    }

    /// Current simulation time in µs (0 when disabled).
    pub fn now_us(&self) -> u64 {
        self.inner.as_ref().map_or(0, |inner| inner.borrow().now_us)
    }

    /// Set (or clear) the request id stamped onto subsequent events.
    pub fn set_current_request(&self, req: Option<u64>) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().current_req = req;
        }
    }

    /// The request id currently stamped onto events, if any. Callers
    /// that re-enter request scope (an engine starting service for a
    /// queued request mid-handler) save this and restore it after.
    pub fn current_request(&self) -> Option<u64> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.borrow().current_req)
    }

    /// Set the fallback parent used by spans started with
    /// [`SpanId::NONE`]; pass [`SpanId::NONE`] to clear.
    pub fn set_ambient_parent(&self, parent: SpanId) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().ambient_parent = parent;
        }
    }

    /// Open a span at the current sim time. Returns
    /// [`SpanId::NONE`] (and records nothing) when disabled or when
    /// the subsystem is sampled out entirely.
    pub fn span_start(&self, subsystem: Subsystem, name: &'static str, parent: SpanId) -> SpanId {
        let now = self.now_us();
        self.span_start_at(subsystem, name, parent, now, Attrs::new())
    }

    /// Open a span at an explicit time with attributes. Times may be
    /// in the future relative to the recorder clock — the engine uses
    /// this to record transfers whose completion instant is already
    /// priced.
    pub fn span_start_at(
        &self,
        subsystem: Subsystem,
        name: &'static str,
        parent: SpanId,
        at_us: u64,
        attrs: impl Into<Attrs>,
    ) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId::NONE;
        };
        let mut attrs = attrs.into();
        let mut inner = inner.borrow_mut();
        if inner.cfg.sample[subsystem.index()] == 0 {
            return SpanId::NONE;
        }
        inner.next_span += 1;
        let id = SpanId(inner.next_span);
        let parent = if parent.is_some() {
            parent
        } else {
            inner.ambient_parent
        };
        inner.stamp_req(&mut attrs);
        inner.push(TraceEvent::Begin {
            id,
            parent,
            subsystem,
            name,
            at_us,
            attrs,
        });
        id
    }

    /// Close `id` at the current sim time (no-op for
    /// [`SpanId::NONE`]).
    pub fn span_end(&self, id: SpanId) {
        let now = self.now_us();
        self.span_end_at(id, now, Attrs::new());
    }

    /// Close `id` at an explicit time, attaching closing attributes
    /// (outcomes, cancellation flags).
    pub fn span_end_at(&self, id: SpanId, at_us: u64, attrs: impl Into<Attrs>) {
        let Some(inner) = &self.inner else {
            return;
        };
        if !id.is_some() {
            return;
        }
        inner.borrow_mut().push(TraceEvent::End {
            id,
            at_us,
            attrs: attrs.into(),
        });
    }

    /// Record a point event at the current sim time. Instants honor
    /// the per-subsystem 1-in-N sampling control.
    pub fn instant(&self, subsystem: Subsystem, name: &'static str, attrs: impl Into<Attrs>) {
        let now = self.now_us();
        self.instant_at(subsystem, name, now, attrs);
    }

    /// Record a point event at an explicit time.
    pub fn instant_at(
        &self,
        subsystem: Subsystem,
        name: &'static str,
        at_us: u64,
        attrs: impl Into<Attrs>,
    ) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut inner = inner.borrow_mut();
        let n = inner.cfg.sample[subsystem.index()];
        if n == 0 {
            return;
        }
        let c = &mut inner.sample_counters[subsystem.index()];
        *c = c.wrapping_add(1);
        if *c % n != 0 {
            return;
        }
        let mut attrs = attrs.into();
        inner.stamp_req(&mut attrs);
        inner.push(TraceEvent::Instant {
            subsystem,
            name,
            at_us,
            attrs,
        });
    }

    /// Register (or fetch) a named counter. On a disabled recorder
    /// the returned handle is a no-op.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => {
                let idx = inner.borrow_mut().metrics.counter_slot(name);
                Counter::live(Rc::clone(inner), idx)
            }
            None => Counter::noop(),
        }
    }

    /// Register (or fetch) a named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(inner) => {
                let idx = inner.borrow_mut().metrics.gauge_slot(name);
                Gauge::live(Rc::clone(inner), idx)
            }
            None => Gauge::noop(),
        }
    }

    /// Register (or fetch) a named sim-time histogram (µs, log2
    /// buckets).
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            Some(inner) => {
                let idx = inner.borrow_mut().metrics.hist_slot(name);
                Histogram::live(Rc::clone(inner), idx)
            }
            None => Histogram::noop(),
        }
    }

    /// Attach a metadata key (run seed, toolchain, git SHA…) carried
    /// into every export.
    pub fn set_meta(&self, key: &str, value: String) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().meta.insert(key.to_owned(), value);
        }
    }

    /// Events currently buffered.
    pub fn event_count(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.borrow().events.len())
    }

    /// Events evicted by ring wrap-around so far.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.borrow().dropped)
    }

    /// The live configuration, or `None` when disabled — lets an
    /// engine construct per-shard recorders that sample identically
    /// to the caller's.
    pub fn config(&self) -> Option<RecorderConfig> {
        self.inner.as_ref().map(|inner| inner.borrow().cfg.clone())
    }

    /// Merge another recorder's snapshot into this one.
    ///
    /// Span ids are remapped past this recorder's own id space so the
    /// merged trace keeps globally unique ids (parents move with
    /// them; [`SpanId::NONE`] stays none). Events append through the
    /// ring — evicting and counting drops as usual — counters add,
    /// gauges overwrite, histograms merge bucket-wise, metadata
    /// inserts, and the source's drop count carries over. The sharded
    /// fleet engine folds per-shard recorders into the caller's
    /// recorder in shard index order, which keeps the merged trace
    /// deterministic regardless of thread count.
    pub fn import(&self, snap: &TraceSnapshot) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut inner = inner.borrow_mut();
        let offset = inner.next_span;
        let mut max_id = 0u64;
        for ev in &snap.events {
            let mut ev = ev.clone();
            match &mut ev {
                TraceEvent::Begin { id, parent, .. } => {
                    max_id = max_id.max(id.0);
                    *id = SpanId(id.0 + offset);
                    if parent.is_some() {
                        *parent = SpanId(parent.0 + offset);
                    }
                }
                TraceEvent::End { id, .. } => {
                    max_id = max_id.max(id.0);
                    *id = SpanId(id.0 + offset);
                }
                TraceEvent::Instant { .. } => {}
            }
            inner.push(ev);
        }
        inner.next_span = offset + max_id;
        inner.dropped += snap.dropped;
        for (name, v) in &snap.counters {
            let ix = inner.metrics.counter_slot(name);
            inner.metrics.counter_add(ix, *v);
        }
        for (name, v) in &snap.gauges {
            let ix = inner.metrics.gauge_slot(name);
            inner.metrics.gauge_set(ix, *v);
        }
        for (name, h) in &snap.histograms {
            let ix = inner.metrics.hist_slot(name);
            inner.metrics.hist_merge(ix, h);
        }
        for (k, v) in &snap.meta {
            inner.meta.insert(k.clone(), v.clone());
        }
    }

    /// Clone out an immutable snapshot for export. Returns an empty
    /// snapshot on a disabled recorder.
    pub fn snapshot(&self) -> TraceSnapshot {
        let Some(inner) = &self.inner else {
            return TraceSnapshot::default();
        };
        let inner = inner.borrow();
        TraceSnapshot {
            events: inner.iter_events().cloned().collect(),
            dropped: inner.dropped,
            counters: inner.metrics.counters_map(),
            gauges: inner.metrics.gauges_map(),
            histograms: inner.metrics.hists_map(),
            meta: inner.meta.clone(),
        }
    }
}

/// An immutable copy of a recorder's state, consumed by the
/// exporters in [`crate::export`].
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Buffered events in emission order.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring wrap-around before the snapshot.
    pub dropped: u64,
    /// Counter registry (name → value).
    pub counters: BTreeMap<String, u64>,
    /// Gauge registry (name → last value).
    pub gauges: BTreeMap<String, f64>,
    /// Sim-time histogram registry.
    pub histograms: BTreeMap<String, SimHistogram>,
    /// Run metadata (seed, toolchain, git SHA, smoke flag…).
    pub meta: BTreeMap<String, String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.set_now(99);
        assert_eq!(rec.now_us(), 0);
        let id = rec.span_start(Subsystem::Rattrap, "x", SpanId::NONE);
        assert_eq!(id, SpanId::NONE);
        rec.span_end(id);
        rec.instant(Subsystem::Rattrap, "i", vec![]);
        rec.counter("c").add(5);
        rec.gauge("g").set(1.0);
        rec.histogram("h").observe_us(10);
        let snap = rec.snapshot();
        assert!(snap.events.is_empty());
        assert!(snap.counters.is_empty());
    }

    #[test]
    fn spans_nest_and_stamp_time() {
        let rec = Recorder::enabled(RecorderConfig::default());
        rec.set_now(10);
        let root = rec.span_start(Subsystem::Rattrap, "request", SpanId::NONE);
        rec.set_now(20);
        let child = rec.span_start(Subsystem::Netsim, "upload", root);
        rec.set_now(30);
        rec.span_end(child);
        rec.set_now(40);
        rec.span_end(root);
        let snap = rec.snapshot();
        assert_eq!(snap.events.len(), 4);
        match &snap.events[1] {
            TraceEvent::Begin { parent, at_us, .. } => {
                assert_eq!(*parent, root);
                assert_eq!(*at_us, 20);
            }
            other => panic!("expected Begin, got {other:?}"),
        }
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let rec = Recorder::enabled(RecorderConfig::with_capacity(4));
        for i in 0..10 {
            rec.instant(Subsystem::Simkit, "tick", vec![("i", AttrValue::U64(i))]);
        }
        assert_eq!(rec.event_count(), 4);
        assert_eq!(rec.dropped(), 6);
        let snap = rec.snapshot();
        assert_eq!(snap.dropped, 6);
        assert_eq!(snap.events.len(), 4);
    }

    #[test]
    fn subsystem_can_be_disabled_and_instants_sampled() {
        let cfg = RecorderConfig::default()
            .sample_one_in(Subsystem::Simkit, 0)
            .sample_one_in(Subsystem::Netsim, 3);
        let rec = Recorder::enabled(cfg);
        assert_eq!(
            rec.span_start(Subsystem::Simkit, "off", SpanId::NONE),
            SpanId::NONE
        );
        rec.instant(Subsystem::Simkit, "off", vec![]);
        for _ in 0..9 {
            rec.instant(Subsystem::Netsim, "sampled", vec![]);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.events.len(), 3, "1-in-3 sampling keeps 3 of 9");
    }

    #[test]
    fn current_request_and_ambient_parent_are_applied() {
        let rec = Recorder::enabled(RecorderConfig::default());
        rec.set_current_request(Some(7));
        let root = rec.span_start(Subsystem::Rattrap, "request", SpanId::NONE);
        rec.set_ambient_parent(root);
        let job = rec.span_start(Subsystem::Simkit, "cpu", SpanId::NONE);
        rec.set_ambient_parent(SpanId::NONE);
        rec.set_current_request(None);
        let snap = rec.snapshot();
        assert_eq!(snap.events[0].request(), Some(7));
        match &snap.events[1] {
            TraceEvent::Begin { id, parent, .. } => {
                assert_eq!(*id, job);
                assert_eq!(*parent, root, "ambient parent adopted");
            }
            other => panic!("expected Begin, got {other:?}"),
        }
    }

    #[test]
    fn import_remaps_span_ids_and_merges_metrics() {
        let a = Recorder::enabled(RecorderConfig::default());
        a.set_now(5);
        let ra = a.span_start(Subsystem::Rattrap, "a", SpanId::NONE);
        a.span_end(ra);
        a.counter("served").add(3);
        a.gauge("load").set(0.25);
        a.histogram("lat").observe_us(100);

        let b = Recorder::enabled(RecorderConfig::default());
        b.set_now(7);
        let rb = b.span_start(Subsystem::Fleet, "b", SpanId::NONE);
        let child = b.span_start(Subsystem::Virt, "c", rb);
        b.span_end(child);
        b.span_end(rb);
        b.counter("served").add(2);
        b.gauge("load").set(0.75);
        b.histogram("lat").observe_us(300);

        a.import(&b.snapshot());
        let snap = a.snapshot();
        assert_eq!(snap.events.len(), 6);
        // b's root (local id 1) remapped past a's id space.
        match &snap.events[2] {
            TraceEvent::Begin { id, parent, .. } => {
                assert_eq!(*id, SpanId(ra.0 + 1));
                assert_eq!(*parent, SpanId::NONE, "roots stay roots");
            }
            other => panic!("expected Begin, got {other:?}"),
        }
        match &snap.events[3] {
            TraceEvent::Begin { id, parent, .. } => {
                assert_eq!(*id, SpanId(ra.0 + 2));
                assert_eq!(*parent, SpanId(ra.0 + 1), "parents move with ids");
            }
            other => panic!("expected Begin, got {other:?}"),
        }
        assert_eq!(snap.counters["served"], 5, "counters add");
        assert_eq!(snap.gauges["load"], 0.75, "gauges overwrite");
        assert_eq!(snap.histograms["lat"].count(), 2, "histograms merge");
        assert_eq!(snap.histograms["lat"].sum_us(), 400);

        // A span opened after the import must not collide.
        let later = a.span_start(Subsystem::Netsim, "later", SpanId::NONE);
        assert!(later.0 > ra.0 + 2);
    }

    #[test]
    fn import_into_disabled_recorder_is_inert() {
        let src = Recorder::enabled(RecorderConfig::default());
        src.instant(Subsystem::Simkit, "x", vec![]);
        let dst = Recorder::disabled();
        dst.import(&src.snapshot());
        assert!(dst.snapshot().events.is_empty());
        assert_eq!(dst.config(), None);
    }

    #[test]
    fn import_respects_ring_capacity() {
        let src = Recorder::enabled(RecorderConfig::default());
        for _ in 0..10 {
            src.instant(Subsystem::Simkit, "tick", vec![]);
        }
        let dst = Recorder::enabled(RecorderConfig::with_capacity(4));
        dst.import(&src.snapshot());
        assert_eq!(dst.event_count(), 4);
        assert_eq!(dst.dropped(), 6);
    }

    #[test]
    fn metrics_registry_accumulates() {
        let rec = Recorder::enabled(RecorderConfig::default());
        let c = rec.counter("events");
        c.add(2);
        c.inc();
        rec.counter("events").add(1); // same slot by name
        rec.gauge("load").set(0.5);
        rec.histogram("latency_us").observe_us(1500);
        rec.histogram("latency_us").observe_us(3000);
        let snap = rec.snapshot();
        assert_eq!(snap.counters["events"], 4);
        assert_eq!(snap.gauges["load"], 0.5);
        let h = &snap.histograms["latency_us"];
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum_us(), 4500);
        assert_eq!(h.max_us(), 3000);
    }
}
