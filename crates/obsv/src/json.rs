//! A minimal JSON reader — just enough to round-trip and validate the
//! Chrome trace export in environments with no serde (the build has
//! no network access to a registry, so external JSON crates are out
//! of reach by design).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (held as `f64`; trace timestamps fit exactly
    /// up to 2^53 µs, far beyond any simulated horizon).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object (order-normalized).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Object field access helper.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Array contents, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Errors carry a byte offset and a
/// short reason.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // exporter; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12.5e1").unwrap(), Value::Num(-125.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".to_owned()));
        let v = parse("{\"k\":[1,2,{\"n\":null}]}").unwrap();
        let arr = v.get("k").and_then(Value::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_f64(), Some(1.0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("tru").is_err());
    }

    #[test]
    fn unicode_and_escapes_round_trip() {
        let v = parse("\"caf\\u00e9 → ok\"").unwrap();
        assert_eq!(v.as_str(), Some("café → ok"));
    }
}
