//! # obsv — deterministic observability plane
//!
//! Simulation-time tracing and metrics for the Rattrap reproduction:
//! a span model clocked on the *simulated* microsecond grid
//! ([`span`]), a bounded ring-buffer [`Recorder`] with per-subsystem
//! sampling controls ([`recorder`]), a typed metrics registry
//! (counters / gauges / sim-time histograms, [`metrics`]), and
//! exporters — Chrome trace-event JSON for `chrome://tracing` /
//! Perfetto, collapsed stacks for flamegraphs, and a plain-text
//! causal timeline for a single request ([`export`]). A minimal JSON
//! reader ([`json`]) round-trips the Chrome export without external
//! dependencies.
//!
//! ## Determinism contract
//!
//! * Timestamps are the simulation clock (`u64` microseconds) — no
//!   wall clock anywhere in this crate.
//! * Event order in the ring is emission order; all aggregate state
//!   (metrics, flamegraph stacks) lives in `BTreeMap`s, so exports
//!   are byte-stable across runs of the same seed.
//! * Sampling is a deterministic per-subsystem 1-in-N counter, never
//!   a random draw.
//! * Recording is strictly *observational*: a [`Recorder`] never
//!   feeds back into simulation state, so an instrumented run must
//!   reproduce the exact digests of an uninstrumented one (enforced
//!   by the golden-determinism suite in `rattrap`).
//! * [`Recorder::disabled`] carries no allocation and every method on
//!   it reduces to a `None` check — hot paths pay one branch.
//!
//! This crate sits *below* `simkit` in the dependency order (it
//! depends on nothing), so every layer — executor, link, kernel,
//! virt, engine — can report into the same plane.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod span;

pub use metrics::{Counter, Gauge, Histogram, SimHistogram};
pub use recorder::{Recorder, RecorderConfig, TraceSnapshot};
pub use span::{AttrValue, Attrs, AttrsIter, SpanId, Subsystem, TraceEvent};
