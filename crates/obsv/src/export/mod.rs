//! Exporters over a [`TraceSnapshot`]: Chrome trace-event JSON
//! ([`chrome`]), collapsed stacks for flamegraphs ([`flame`]), and a
//! per-request plain-text causal timeline ([`timeline`]).

use crate::recorder::TraceSnapshot;
use crate::span::{Attrs, SpanId, Subsystem, TraceEvent};
use std::collections::BTreeMap;

pub mod chrome;
pub mod flame;
pub mod timeline;

/// A span reassembled from its `Begin`/`End` ring entries.
#[derive(Debug, Clone)]
pub(crate) struct ResolvedSpan {
    pub id: SpanId,
    pub parent: SpanId,
    pub subsystem: Subsystem,
    pub name: &'static str,
    pub start_us: u64,
    /// `None` when the `End` never arrived (ring drop or a span still
    /// open at snapshot time).
    pub end_us: Option<u64>,
    /// Begin attributes followed by End attributes.
    pub attrs: Attrs,
}

impl ResolvedSpan {
    /// Duration against an explicit horizon for unclosed spans.
    pub fn duration_us(&self, horizon_us: u64) -> u64 {
        self.end_us
            .unwrap_or(horizon_us)
            .saturating_sub(self.start_us)
    }

    pub fn request(&self) -> Option<u64> {
        self.attrs.iter().find_map(|(k, v)| match (k, v) {
            (&"req", crate::span::AttrValue::U64(id)) => Some(*id),
            _ => None,
        })
    }
}

/// Pair up `Begin`/`End` events. Returns spans in begin order plus an
/// id → index map. `End`s without a `Begin` (evicted from the ring)
/// are dropped; `Begin`s without an `End` resolve with `end_us:
/// None`.
pub(crate) fn resolve_spans(
    snapshot: &TraceSnapshot,
) -> (Vec<ResolvedSpan>, BTreeMap<SpanId, usize>) {
    let mut spans = Vec::new();
    let mut index = BTreeMap::new();
    for ev in &snapshot.events {
        match ev {
            TraceEvent::Begin {
                id,
                parent,
                subsystem,
                name,
                at_us,
                attrs,
            } => {
                index.insert(*id, spans.len());
                spans.push(ResolvedSpan {
                    id: *id,
                    parent: *parent,
                    subsystem: *subsystem,
                    name,
                    start_us: *at_us,
                    end_us: None,
                    attrs: attrs.clone(),
                });
            }
            TraceEvent::End { id, at_us, attrs } => {
                if let Some(&ix) = index.get(id) {
                    let span: &mut ResolvedSpan = &mut spans[ix];
                    span.end_us = Some(*at_us);
                    span.attrs.extend(attrs.iter().cloned());
                }
            }
            TraceEvent::Instant { .. } => {}
        }
    }
    (spans, index)
}

/// Latest timestamp in the snapshot (horizon for unclosed spans).
pub(crate) fn horizon_us(snapshot: &TraceSnapshot) -> u64 {
    snapshot
        .events
        .iter()
        .map(TraceEvent::at_us)
        .max()
        .unwrap_or(0)
}

/// Escape a string for embedding inside a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an f64 as JSON (finite → shortest round-trip-ish `{}`,
/// non-finite → `null` since JSON has no NaN/Inf).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}
