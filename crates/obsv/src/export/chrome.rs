//! Chrome trace-event JSON export (`chrome://tracing` / Perfetto).
//!
//! Uses the *object* container format: `{"traceEvents": [...],
//! "displayTimeUnit": "ms", "metadata": {...}}`. Spans become `"X"`
//! (complete) events with `ts`/`dur` in simulated microseconds;
//! instants become `"i"` events. Each subsystem renders as its own
//! track (`tid` = subsystem index, named by `"M"` metadata events),
//! and every request-scoped event carries a `req` arg so one request
//! can be followed across tracks.

use super::{horizon_us, json_escape, json_f64, resolve_spans};
use crate::recorder::TraceSnapshot;
use crate::span::{AttrValue, Attrs, Subsystem, TraceEvent};

/// Fixed pid for the whole (single-process) simulation.
const PID: u32 = 1;

fn attr_json(value: &AttrValue) -> String {
    match value {
        AttrValue::U64(v) => format!("{v}"),
        AttrValue::I64(v) => format!("{v}"),
        AttrValue::F64(v) => json_f64(*v),
        AttrValue::Str(v) => format!("\"{}\"", json_escape(v)),
        AttrValue::Text(v) => format!("\"{}\"", json_escape(v)),
        AttrValue::Bool(v) => format!("{v}"),
    }
}

fn args_json(attrs: &Attrs, extra: &[(&str, String)]) -> String {
    let mut parts: Vec<String> = attrs
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", json_escape(k), attr_json(v)))
        .collect();
    parts.extend(
        extra
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json_escape(k), v)),
    );
    format!("{{{}}}", parts.join(","))
}

impl TraceSnapshot {
    /// Render the snapshot as Chrome trace-event JSON.
    pub fn chrome_trace(&self) -> String {
        let (spans, _) = resolve_spans(self);
        let horizon = horizon_us(self);
        let mut events = Vec::new();
        for sub in Subsystem::ALL {
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                sub.index(),
                sub.name()
            ));
        }
        for span in &spans {
            let mut extra = vec![("span", format!("{}", span.id.0))];
            if span.parent.is_some() {
                extra.push(("parent", format!("{}", span.parent.0)));
            }
            if span.end_us.is_none() {
                extra.push(("unclosed", "true".to_owned()));
            }
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{},\"cat\":\"{}\",\"name\":\"{}\",\
                 \"ts\":{},\"dur\":{},\"args\":{}}}",
                span.subsystem.index(),
                span.subsystem.name(),
                json_escape(span.name),
                span.start_us,
                span.duration_us(horizon),
                args_json(&span.attrs, &extra)
            ));
        }
        for ev in &self.events {
            if let TraceEvent::Instant {
                subsystem,
                name,
                at_us,
                attrs,
            } = ev
            {
                events.push(format!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{PID},\"tid\":{},\"cat\":\"{}\",\
                     \"name\":\"{}\",\"ts\":{},\"args\":{}}}",
                    subsystem.index(),
                    subsystem.name(),
                    json_escape(name),
                    at_us,
                    args_json(attrs, &[])
                ));
            }
        }
        let mut meta: Vec<String> = self
            .meta
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
            .collect();
        meta.push(format!("\"dropped_events\":{}", self.dropped));
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json_escape(k), v))
            .collect();
        meta.push(format!("\"counters\":{{{}}}", counters.join(",")));
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json_escape(k), json_f64(*v)))
            .collect();
        meta.push(format!("\"gauges\":{{{}}}", gauges.join(",")));
        format!(
            "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\",\"metadata\":{{{}}}}}\n",
            events.join(",\n"),
            meta.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::json::{parse, Value};
    use crate::{AttrValue, Recorder, RecorderConfig, SpanId, Subsystem};

    #[test]
    fn chrome_trace_round_trips_through_the_json_reader() {
        let rec = Recorder::enabled(RecorderConfig::default());
        rec.set_meta("seed", "42".to_owned());
        rec.set_now(0);
        let root = rec.span_start(Subsystem::Rattrap, "request", SpanId::NONE);
        rec.set_now(100);
        let child = rec.span_start_at(
            Subsystem::Netsim,
            "upload",
            root,
            100,
            vec![("bytes", AttrValue::U64(512))],
        );
        rec.span_end_at(child, 300, vec![]);
        rec.instant(Subsystem::Hostkernel, "binder.transact", vec![]);
        rec.set_now(400);
        rec.span_end(root);
        rec.counter("events").add(3);

        let text = rec.snapshot().chrome_trace();
        let value = parse(&text).expect("export must be valid JSON");
        let Value::Object(top) = &value else {
            panic!("top level must be an object");
        };
        let Some(Value::Array(events)) = top.get("traceEvents") else {
            panic!("traceEvents array missing");
        };
        // One thread-name metadata per subsystem + 2 spans + 1 instant.
        assert_eq!(events.len(), Subsystem::ALL.len() + 3);
        let Some(Value::Object(meta)) = top.get("metadata") else {
            panic!("metadata object missing");
        };
        assert_eq!(meta.get("seed"), Some(&Value::Str("42".to_owned())));
        assert!(meta.contains_key("counters"));
    }

    #[test]
    fn unclosed_span_is_flagged_with_horizon_duration() {
        let rec = Recorder::enabled(RecorderConfig::default());
        rec.set_now(10);
        rec.span_start(Subsystem::Virt, "boot", SpanId::NONE);
        rec.instant_at(Subsystem::Virt, "late", 500, vec![]);
        let text = rec.snapshot().chrome_trace();
        assert!(text.contains("\"unclosed\":true"));
        assert!(text.contains("\"dur\":490"));
    }

    #[test]
    fn strings_are_escaped() {
        let rec = Recorder::enabled(RecorderConfig::default());
        rec.instant(
            Subsystem::Bench,
            "note",
            vec![("msg", AttrValue::Text("a\"b\\c\nd".to_owned()))],
        );
        let text = rec.snapshot().chrome_trace();
        crate::json::parse(&text).expect("escaped output still parses");
    }
}
