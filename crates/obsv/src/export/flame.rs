//! Collapsed-stack export for flamegraph tooling.
//!
//! One line per unique span stack — `root;child;leaf weight` — where
//! the weight is the stack's *self* time in simulated microseconds
//! (duration minus time covered by child spans), the format consumed
//! by `inferno` / `flamegraph.pl`. Frames render as
//! `subsystem:name`, and aggregation is a `BTreeMap`, so output is
//! byte-stable for a given snapshot.

use super::{horizon_us, resolve_spans, ResolvedSpan};
use crate::recorder::TraceSnapshot;
use crate::span::SpanId;
use std::collections::BTreeMap;

fn frame(span: &ResolvedSpan) -> String {
    format!("{}:{}", span.subsystem.name(), span.name)
}

impl TraceSnapshot {
    /// Render the snapshot as collapsed stacks (flamegraph input).
    pub fn collapsed_stacks(&self) -> String {
        let (spans, index) = resolve_spans(self);
        let horizon = horizon_us(self);
        // Child time per parent, to subtract for self-time weights.
        let mut child_time: BTreeMap<SpanId, u64> = BTreeMap::new();
        for span in &spans {
            if span.parent.is_some() && index.contains_key(&span.parent) {
                *child_time.entry(span.parent).or_insert(0) += span.duration_us(horizon);
            }
        }
        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        for span in &spans {
            let total = span.duration_us(horizon);
            let self_us = total.saturating_sub(child_time.get(&span.id).copied().unwrap_or(0));
            if self_us == 0 {
                continue;
            }
            // Walk ancestors; a missing parent (evicted Begin) roots
            // the stack at the deepest survivor.
            let mut path = vec![frame(span)];
            let mut cursor = span.parent;
            while cursor.is_some() {
                let Some(&ix) = index.get(&cursor) else {
                    break;
                };
                path.push(frame(&spans[ix]));
                cursor = spans[ix].parent;
            }
            path.reverse();
            *stacks.entry(path.join(";")).or_insert(0) += self_us;
        }
        let mut out = String::new();
        for (stack, weight) in stacks {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&weight.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{Recorder, RecorderConfig, SpanId, Subsystem};

    #[test]
    fn self_time_subtracts_children_and_aggregates() {
        let rec = Recorder::enabled(RecorderConfig::default());
        let root = rec.span_start_at(Subsystem::Rattrap, "request", SpanId::NONE, 0, vec![]);
        let up = rec.span_start_at(Subsystem::Netsim, "upload", root, 0, vec![]);
        rec.span_end_at(up, 40, vec![]);
        let cpu = rec.span_start_at(Subsystem::Simkit, "cpu", root, 40, vec![]);
        rec.span_end_at(cpu, 90, vec![]);
        rec.span_end_at(root, 100, vec![]);
        // Second request with the same shape aggregates onto the same
        // stacks.
        let root2 = rec.span_start_at(Subsystem::Rattrap, "request", SpanId::NONE, 100, vec![]);
        let up2 = rec.span_start_at(Subsystem::Netsim, "upload", root2, 100, vec![]);
        rec.span_end_at(up2, 150, vec![]);
        rec.span_end_at(root2, 160, vec![]);

        let out = rec.snapshot().collapsed_stacks();
        let lines: Vec<&str> = out.lines().collect();
        assert!(
            lines.contains(&"rattrap:request 20"),
            "self: 10 + 10\n{out}"
        );
        assert!(lines.contains(&"rattrap:request;netsim:upload 90"), "{out}");
        assert!(lines.contains(&"rattrap:request;simkit:cpu 50"), "{out}");
    }

    #[test]
    fn zero_self_time_spans_are_elided() {
        let rec = Recorder::enabled(RecorderConfig::default());
        let root = rec.span_start_at(Subsystem::Rattrap, "wrap", SpanId::NONE, 0, vec![]);
        let child = rec.span_start_at(Subsystem::Virt, "all", root, 0, vec![]);
        rec.span_end_at(child, 50, vec![]);
        rec.span_end_at(root, 50, vec![]);
        let out = rec.snapshot().collapsed_stacks();
        assert_eq!(out, "rattrap:wrap;virt:all 50\n");
    }
}
