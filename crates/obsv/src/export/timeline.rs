//! Per-request plain-text causal timeline.
//!
//! Slices every event stamped with a given request id out of a
//! full-run snapshot and renders it as one chronologically ordered,
//! indentation-nested text block — the `trace_request` view. External
//! annotations (e.g. kernel logcat dumps, which live outside the
//! ring) can be merged in by timestamp.

use super::{resolve_spans, ResolvedSpan};
use crate::recorder::TraceSnapshot;
use crate::span::{SpanId, TraceEvent};
use std::collections::BTreeMap;

fn fmt_secs(us: u64) -> String {
    format!("{:>12.6}s", us as f64 / 1e6)
}

fn fmt_attrs(attrs: &crate::span::Attrs) -> String {
    let parts: Vec<String> = attrs
        .iter()
        .filter(|(k, _)| *k != "req")
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    if parts.is_empty() {
        String::new()
    } else {
        format!("  [{}]", parts.join(" "))
    }
}

/// (time, tiebreak sequence, rendered line body)
type Entry = (u64, u64, String);

fn depth_of(span: &ResolvedSpan, index: &BTreeMap<SpanId, usize>, spans: &[ResolvedSpan]) -> usize {
    let mut depth = 0;
    let mut cursor = span.parent;
    while cursor.is_some() {
        let Some(&ix) = index.get(&cursor) else {
            break;
        };
        depth += 1;
        cursor = spans[ix].parent;
    }
    depth
}

impl TraceSnapshot {
    /// Render the causal timeline of request `req`.
    pub fn request_timeline(&self, req: u64) -> String {
        self.request_timeline_with(req, &[])
    }

    /// Render the causal timeline of request `req`, merging external
    /// `(at_us, text)` annotations (kernel log dumps and the like) at
    /// their timestamps.
    pub fn request_timeline_with(&self, req: u64, annotations: &[(u64, String)]) -> String {
        let (spans, index) = resolve_spans(self);
        let mine: Vec<&ResolvedSpan> = spans.iter().filter(|s| s.request() == Some(req)).collect();
        let mut entries: Vec<Entry> = Vec::new();
        let mut seq = 0u64;
        for span in &mine {
            let indent = "  ".repeat(depth_of(span, &index, &spans));
            seq += 1;
            entries.push((
                span.start_us,
                seq,
                format!(
                    "{indent}> {:<11} {}{}",
                    span.subsystem.name(),
                    span.name,
                    fmt_attrs(&span.attrs)
                ),
            ));
            if let Some(end) = span.end_us {
                seq += 1;
                entries.push((
                    end,
                    seq,
                    format!(
                        "{indent}< {:<11} {}  (+{:.6}s)",
                        span.subsystem.name(),
                        span.name,
                        (end - span.start_us) as f64 / 1e6
                    ),
                ));
            }
        }
        for ev in &self.events {
            if let TraceEvent::Instant {
                subsystem,
                name,
                at_us,
                attrs,
            } = ev
            {
                if ev.request() == Some(req) {
                    seq += 1;
                    entries.push((
                        *at_us,
                        seq,
                        format!("* {:<11} {}{}", subsystem.name(), name, fmt_attrs(attrs)),
                    ));
                }
            }
        }
        for (at_us, text) in annotations {
            seq += 1;
            entries.push((*at_us, seq, format!("~ {:<11} {text}", "log")));
        }
        entries.sort_by_key(|e| (e.0, e.1));
        let mut out = format!("=== causal timeline: request {req} ===\n");
        if entries.is_empty() {
            out.push_str("(no events recorded for this request)\n");
            return out;
        }
        for (at_us, _, body) in entries {
            out.push_str(&format!("[{}] {body}\n", fmt_secs(at_us)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{AttrValue, Recorder, RecorderConfig, SpanId, Subsystem};

    #[test]
    fn timeline_selects_one_request_and_orders_by_time() {
        let rec = Recorder::enabled(RecorderConfig::default());
        rec.set_current_request(Some(1));
        let root = rec.span_start_at(Subsystem::Rattrap, "request", SpanId::NONE, 0, vec![]);
        let up = rec.span_start_at(
            Subsystem::Netsim,
            "upload",
            root,
            0,
            vec![("bytes", AttrValue::U64(99))],
        );
        rec.span_end_at(up, 40, vec![]);
        rec.span_end_at(root, 100, vec![]);
        // A second request that must not leak into request 1's view.
        rec.set_current_request(Some(2));
        let other = rec.span_start_at(Subsystem::Rattrap, "request", SpanId::NONE, 10, vec![]);
        rec.span_end_at(other, 20, vec![]);
        rec.set_current_request(None);

        let out = rec.snapshot().request_timeline(1);
        assert!(out.contains("request 1"));
        assert!(out.contains("bytes=99"));
        let uploads = out.matches("netsim").count();
        assert_eq!(uploads, 2, "begin + end lines:\n{out}");
        assert_eq!(
            out.matches("> rattrap").count(),
            1,
            "request 2 must not appear:\n{out}"
        );
    }

    #[test]
    fn annotations_merge_by_timestamp() {
        let rec = Recorder::enabled(RecorderConfig::default());
        rec.set_current_request(Some(5));
        let root = rec.span_start_at(Subsystem::Rattrap, "request", SpanId::NONE, 0, vec![]);
        rec.span_end_at(root, 100, vec![]);
        rec.set_current_request(None);
        let out = rec
            .snapshot()
            .request_timeline_with(5, &[(50, "I/zygote: started".to_owned())]);
        let log_pos = out.find("I/zygote").expect("annotation present");
        let end_pos = out.find("< rattrap").expect("end line present");
        assert!(log_pos < end_pos, "t=50 log sorts before t=100 end:\n{out}");
    }

    #[test]
    fn empty_request_renders_placeholder() {
        let rec = Recorder::enabled(RecorderConfig::default());
        let out = rec.snapshot().request_timeline(123);
        assert!(out.contains("no events recorded"));
    }
}
