//! Span and event model: ids, parent links, subsystems, attributes.

use std::fmt;

/// Identifier of a recorded span. `SpanId::NONE` (`0`) is the null
/// id: ending it is a no-op and using it as a parent means "root".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span id — no parent / not recorded.
    pub const NONE: SpanId = SpanId(0);

    /// `true` for every id except [`SpanId::NONE`].
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// The layer an event originates from. Doubles as the Chrome-trace
/// category and the per-subsystem sampling key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Subsystem {
    /// `rattrap` — request lifecycle, engine event dispatch.
    Rattrap,
    /// `simkit` — fair-share executors, fault plane.
    Simkit,
    /// `netsim` — links and transfers.
    Netsim,
    /// `hostkernel` — modules, syscalls, binder, logger.
    Hostkernel,
    /// `virt` — instance provisioning and boot sequences.
    Virt,
    /// `containerfs` — layers, union mounts, tmpfs exchanges.
    Containerfs,
    /// `bench` — experiment drivers.
    Bench,
    /// `fleet` — the multi-host control plane: routing, admission,
    /// autoscaling, rebalancing.
    Fleet,
    /// `geo` — the multi-region layer: latency-aware routing, WAN
    /// fabrics, cloud-burst, cross-region migration.
    Geo,
}

impl Subsystem {
    /// Every subsystem, in index order.
    pub const ALL: [Subsystem; 9] = [
        Subsystem::Rattrap,
        Subsystem::Simkit,
        Subsystem::Netsim,
        Subsystem::Hostkernel,
        Subsystem::Virt,
        Subsystem::Containerfs,
        Subsystem::Bench,
        Subsystem::Fleet,
        Subsystem::Geo,
    ];

    /// Dense index (sampling tables, Chrome `tid` lanes).
    pub fn index(self) -> usize {
        match self {
            Subsystem::Rattrap => 0,
            Subsystem::Simkit => 1,
            Subsystem::Netsim => 2,
            Subsystem::Hostkernel => 3,
            Subsystem::Virt => 4,
            Subsystem::Containerfs => 5,
            Subsystem::Bench => 6,
            Subsystem::Fleet => 7,
            Subsystem::Geo => 8,
        }
    }

    /// Stable lowercase name (Chrome `cat` field, timeline column).
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Rattrap => "rattrap",
            Subsystem::Simkit => "simkit",
            Subsystem::Netsim => "netsim",
            Subsystem::Hostkernel => "hostkernel",
            Subsystem::Virt => "virt",
            Subsystem::Containerfs => "containerfs",
            Subsystem::Bench => "bench",
            Subsystem::Fleet => "fleet",
            Subsystem::Geo => "geo",
        }
    }
}

impl fmt::Display for Subsystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed attribute value attached to a span or instant event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (ids, byte counts, sequence numbers).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (work units, rates).
    F64(f64),
    /// Static string (phase names, outcomes).
    Str(&'static str),
    /// Owned string (tags, paths).
    Text(String),
    /// Boolean flag.
    Bool(bool),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::I64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v}"),
            AttrValue::Str(v) => f.write_str(v),
            AttrValue::Text(v) => f.write_str(v),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// Filler for unused inline slots (never observable: iteration stops
/// at `len`).
const NO_ATTR: (&str, AttrValue) = ("", AttrValue::Bool(false));

/// Attribute list — small, ordered, emitted as the Chrome `args`
/// object.
///
/// Holds up to [`Attrs::INLINE`] pairs inline, so the hot recording
/// path (and the [`attrs!`] builder macro) performs **zero heap
/// allocation**; longer lists spill to the heap transparently. Keys
/// are `&'static str` — interned at compile time — so building,
/// cloning, and comparing attribute lists never copies key bytes.
///
/// [`attrs!`]: crate::attrs
#[derive(Clone)]
pub struct Attrs {
    len: u8,
    inline: [(&'static str, AttrValue); Attrs::INLINE],
    spill: Vec<(&'static str, AttrValue)>,
}

impl Attrs {
    /// Pairs stored inline before spilling to the heap. Sized for the
    /// workspace's taxonomy: per-*event* emitters (executor job spans,
    /// transfer spans, phase transitions) attach at most two pairs, so
    /// the hot path never allocates — while keeping `TraceEvent` small
    /// enough that ring writes don't eat the savings. The wider
    /// per-*request* emitters (a root span's `req`/`device`/`app`)
    /// spill once per request, which is noise.
    pub const INLINE: usize = 2;

    /// An empty list (no allocation; `const`-constructible).
    pub const fn new() -> Self {
        Attrs {
            len: 0,
            inline: [NO_ATTR; Attrs::INLINE],
            spill: Vec::new(),
        }
    }

    /// Append a pair, spilling to the heap past [`Attrs::INLINE`].
    pub fn push(&mut self, attr: (&'static str, AttrValue)) {
        if (self.len as usize) < Self::INLINE {
            self.inline[self.len as usize] = attr;
            self.len += 1;
        } else {
            self.spill.push(attr);
        }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.len as usize + self.spill.len()
    }

    /// `true` when no pairs are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0 && self.spill.is_empty()
    }

    /// Iterate pairs in insertion order.
    pub fn iter(&self) -> AttrsIter<'_> {
        self.inline[..self.len as usize].iter().chain(&self.spill)
    }
}

/// Iterator over an [`Attrs`] list, in insertion order.
pub type AttrsIter<'a> = std::iter::Chain<
    std::slice::Iter<'a, (&'static str, AttrValue)>,
    std::slice::Iter<'a, (&'static str, AttrValue)>,
>;

impl Default for Attrs {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Attrs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl PartialEq for Attrs {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl<'a> IntoIterator for &'a Attrs {
    type Item = &'a (&'static str, AttrValue);
    type IntoIter = AttrsIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<(&'static str, AttrValue)> for Attrs {
    fn from_iter<I: IntoIterator<Item = (&'static str, AttrValue)>>(iter: I) -> Self {
        let mut attrs = Attrs::new();
        for attr in iter {
            attrs.push(attr);
        }
        attrs
    }
}

impl Extend<(&'static str, AttrValue)> for Attrs {
    fn extend<I: IntoIterator<Item = (&'static str, AttrValue)>>(&mut self, iter: I) {
        for attr in iter {
            self.push(attr);
        }
    }
}

impl From<Vec<(&'static str, AttrValue)>> for Attrs {
    fn from(v: Vec<(&'static str, AttrValue)>) -> Self {
        v.into_iter().collect()
    }
}

impl<const N: usize> From<[(&'static str, AttrValue); N]> for Attrs {
    fn from(v: [(&'static str, AttrValue); N]) -> Self {
        v.into_iter().collect()
    }
}

/// Build an [`Attrs`] list in place, without heap allocation for up to
/// [`Attrs::INLINE`] pairs:
///
/// ```
/// use obsv::{attrs, AttrValue};
/// let a = attrs![("job", AttrValue::U64(7)), ("work", AttrValue::F64(1.5))];
/// assert_eq!(a.len(), 2);
/// ```
#[macro_export]
macro_rules! attrs {
    () => { $crate::Attrs::new() };
    ($($attr:expr),+ $(,)?) => {{
        let mut a = $crate::Attrs::new();
        $(a.push($attr);)+
        a
    }};
}

/// One entry in the recorder's ring buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A span opened at `at_us`.
    Begin {
        /// Span id (unique within a recorder's lifetime).
        id: SpanId,
        /// Enclosing span, or [`SpanId::NONE`] for a root.
        parent: SpanId,
        /// Originating layer.
        subsystem: Subsystem,
        /// Span name (static — span names form a closed taxonomy).
        name: &'static str,
        /// Sim-time start, microseconds.
        at_us: u64,
        /// Typed attributes.
        attrs: Attrs,
    },
    /// The span `id` closed at `at_us`.
    End {
        /// Span id matching a prior `Begin`.
        id: SpanId,
        /// Sim-time end, microseconds.
        at_us: u64,
        /// Attributes added at close (outcomes, cancellations).
        attrs: Attrs,
    },
    /// A point event (no duration).
    Instant {
        /// Originating layer.
        subsystem: Subsystem,
        /// Event name.
        name: &'static str,
        /// Sim-time instant, microseconds.
        at_us: u64,
        /// Typed attributes.
        attrs: Attrs,
    },
}

impl TraceEvent {
    /// The event's timestamp in microseconds.
    pub fn at_us(&self) -> u64 {
        match self {
            TraceEvent::Begin { at_us, .. }
            | TraceEvent::End { at_us, .. }
            | TraceEvent::Instant { at_us, .. } => *at_us,
        }
    }

    /// The event's attribute list.
    pub fn attrs(&self) -> &Attrs {
        match self {
            TraceEvent::Begin { attrs, .. }
            | TraceEvent::End { attrs, .. }
            | TraceEvent::Instant { attrs, .. } => attrs,
        }
    }

    /// The `req` attribute (request id), when present. The engine
    /// stamps every request-scoped event with it; exporters use it to
    /// slice one request out of a full-run trace.
    pub fn request(&self) -> Option<u64> {
        self.attrs().iter().find_map(|(k, v)| match (k, v) {
            (&"req", AttrValue::U64(id)) => Some(*id),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_id_none_is_zero_and_falsy() {
        assert_eq!(SpanId::NONE, SpanId(0));
        assert!(!SpanId::NONE.is_some());
        assert!(SpanId(1).is_some());
    }

    #[test]
    fn subsystem_indices_are_dense_and_names_stable() {
        for (i, s) in Subsystem::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        assert_eq!(Subsystem::Hostkernel.name(), "hostkernel");
        assert_eq!(Subsystem::Geo.name(), "geo");
        assert_eq!(Subsystem::ALL.len(), 9);
    }

    #[test]
    fn request_attr_is_extracted() {
        let ev = TraceEvent::Instant {
            subsystem: Subsystem::Rattrap,
            name: "x",
            at_us: 5,
            attrs: attrs![("bytes", AttrValue::U64(3)), ("req", AttrValue::U64(42))],
        };
        assert_eq!(ev.request(), Some(42));
        assert_eq!(ev.at_us(), 5);
    }
}
