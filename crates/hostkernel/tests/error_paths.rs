//! Error-path coverage for the kernel's driver surface, table-driven.
//!
//! Every case pins the *precise* `KernelError` (not just `is_err()`):
//! the fleet's crash-recovery and the simcheck harness's
//! "ENODEV iff module unloaded" invariant both pattern-match on these
//! variants, so a drive-by change from `NoSuchDevice` to `NotFound`
//! (say) is a behavioural break, not a refactor.

use hostkernel::ashmem::AshmemId;
use hostkernel::logger::{LogRecord, LoggerDriver};
use hostkernel::{DeviceKind, HostSpec, Kernel, KernelError, Syscall};
use simkit::SimTime;

fn kernel() -> Kernel {
    Kernel::new(HostSpec::paper_server())
}

/// A kernel with the full Android Container Driver loaded and one
/// namespace that has opened every Android device node.
fn booted() -> (Kernel, u32) {
    let mut k = kernel();
    k.load_android_container_driver();
    let ns = k.create_namespace();
    for kind in [
        DeviceKind::Binder,
        DeviceKind::Alarm,
        DeviceKind::Logger,
        DeviceKind::Ashmem,
    ] {
        k.open_device(ns, kind).expect("modules are loaded");
    }
    (k, ns)
}

/// One error-path case: a named scenario, the operation under test,
/// and the exact error it must produce.
struct Case {
    name: &'static str,
    run: fn() -> Result<(), KernelError>,
    expect: fn(&KernelError) -> bool,
    expect_desc: &'static str,
}

/// Driver-surface operations against a kernel whose module was
/// unloaded out from under live per-namespace driver state. All of
/// them must be `ENODEV` on the unloaded device — never a success
/// that silently reads stale state, and never a `NotFound` that
/// misattributes the failure to the object instead of the device.
#[test]
fn unloaded_module_error_paths() {
    let cases: Vec<Case> = vec![
        Case {
            name: "alarm set after rmmod android_alarm.ko",
            run: || {
                let (mut k, ns) = booted();
                k.unload_module("android_alarm.ko")?;
                k.alarm_mut(ns).map(|a| {
                    a.set(1, SimTime::from_secs(5));
                })
            },
            expect: |e| matches!(e, KernelError::NoSuchDevice { device } if *device == "/dev/alarm"),
            expect_desc: "NoSuchDevice(/dev/alarm)",
        },
        Case {
            name: "alarm cancel after rmmod android_alarm.ko",
            run: || {
                let (mut k, ns) = booted();
                let id = k.alarm_mut(ns).unwrap().set(1, SimTime::from_secs(5));
                k.unload_module("android_alarm.ko")?;
                k.alarm_mut(ns).map(|a| {
                    a.cancel(id);
                })
            },
            expect: |e| matches!(e, KernelError::NoSuchDevice { device } if *device == "/dev/alarm"),
            expect_desc: "NoSuchDevice(/dev/alarm)",
        },
        Case {
            name: "logger write after rmmod android_logger.ko",
            run: || {
                let (mut k, ns) = booted();
                k.unload_module("android_logger.ko")?;
                k.logger_mut(ns).map(|_| ())
            },
            expect: |e| matches!(e, KernelError::NoSuchDevice { device } if *device == "/dev/log/main"),
            expect_desc: "NoSuchDevice(/dev/log/main)",
        },
        Case {
            name: "ashmem access after rmmod ashmem.ko",
            run: || {
                let (mut k, ns) = booted();
                k.unload_module("ashmem.ko")?;
                k.ashmem_mut(ns).map(|_| ())
            },
            expect: |e| matches!(e, KernelError::NoSuchDevice { device } if *device == "/dev/ashmem"),
            expect_desc: "NoSuchDevice(/dev/ashmem)",
        },
        Case {
            name: "binder access after rmmod android_binder.ko",
            run: || {
                let (mut k, ns) = booted();
                k.unload_module("android_binder.ko")?;
                k.binder_mut(ns).map(|_| ())
            },
            expect: |e| matches!(e, KernelError::NoSuchDevice { device } if *device == "/dev/binder"),
            expect_desc: "NoSuchDevice(/dev/binder)",
        },
    ];

    let mut failures = Vec::new();
    for case in &cases {
        match (case.run)() {
            Ok(()) => failures.push(format!(
                "{}: succeeded, expected {}",
                case.name, case.expect_desc
            )),
            Err(e) if (case.expect)(&e) => {}
            Err(e) => failures.push(format!(
                "{}: got {e:?}, expected {}",
                case.name, case.expect_desc
            )),
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// The syscall layer surfaces the same `ENODEV` — a process inside a
/// container whose alarm module vanished sees the dead device node,
/// exactly as `open_device` would report it.
#[test]
fn alarm_syscall_is_enodev_after_rmmod() {
    let (mut k, ns) = booted();
    let pid = k.processes.spawn(ns, "timerd", 0);
    k.syscall(
        pid,
        Syscall::AlarmSet {
            due: SimTime::from_secs(1),
        },
    )
    .expect("module resident: alarm arms");
    k.unload_module("android_alarm.ko").unwrap();
    let err = k
        .syscall(
            pid,
            Syscall::AlarmSet {
                due: SimTime::from_secs(2),
            },
        )
        .unwrap_err();
    assert_eq!(
        err,
        KernelError::NoSuchDevice {
            device: "/dev/alarm"
        }
    );
    assert_eq!(format!("{err}"), "ENODEV: no such device /dev/alarm");
}

/// Ashmem pin/unpin after the region was reclaimed (the "unmap"):
/// precise `NotFound` naming the region, and the double-destroy also
/// stays `NotFound` (not a panic, not `OutOfMemory` bookkeeping rot).
#[test]
fn ashmem_pin_unpin_after_reclaim() {
    let (mut k, ns) = booted();
    let a = k.ashmem_mut(ns).unwrap();
    let id = a.create("dalvik-heap", 4096, 1).unwrap();
    a.unpin(id).unwrap();
    assert_eq!(a.shrink(1), 4096, "unpinned region is reclaimable");
    let expect = |e: KernelError, op: &str| {
        assert_eq!(
            e,
            KernelError::NotFound {
                what: format!("ashmem region {}", id.0)
            },
            "{op} after reclaim"
        );
    };
    let a = k.ashmem_mut(ns).unwrap();
    expect(a.pin(id).unwrap_err(), "pin");
    expect(a.unpin(id).unwrap_err(), "unpin");
    expect(a.destroy(id).unwrap_err(), "destroy");
    assert_eq!(a.used_bytes(), 0, "reclaim returned the budget");
    // A fresh region reuses none of the dead id space.
    let id2 = a.create("fresh", 64, 1).unwrap();
    assert_ne!(id2, AshmemId(id.0), "ids are never recycled");
}

/// Logger ring wrap-around at the *exact* buffer boundary. Record
/// size is `20 + tag.len() + message.len()`; with capacity = 2 × 22
/// an exact-fit write must NOT evict (the condition is `used + size >
/// capacity`, not `>=`), and the first byte past it evicts exactly
/// one record.
#[test]
fn logger_ring_wraps_at_exact_boundary() {
    let rec = |tag: &str, msg: &str| LogRecord {
        priority: 4,
        tag: tag.into(),
        message: msg.into(),
        pid: 1,
        at_us: 0,
    };
    // Each record: 20 + 1 + 1 = 22 bytes. Capacity exactly two records.
    let mut log = LoggerDriver::new(44);
    log.write(rec("a", "1"));
    log.write(rec("b", "2"));
    assert_eq!(log.used_bytes(), 44, "ring exactly full");
    assert_eq!(log.len(), 2);
    assert_eq!(log.dropped(), 0, "exact fit does not evict");

    // One more exact-size record: evicts exactly the oldest.
    log.write(rec("c", "3"));
    assert_eq!(log.used_bytes(), 44, "still exactly full after wrap");
    assert_eq!(log.len(), 2);
    assert_eq!(log.dropped(), 1);
    let dump = log.dump();
    assert_eq!(dump[0].tag, "b");
    assert_eq!(dump[1].tag, "c");

    // A record one byte larger evicts two (22 + 23 > 44 twice over).
    log.write(rec("dd", "4")); // 20 + 2 + 1 = 23 bytes
    assert_eq!(log.len(), 1, "both 22-byte records evicted");
    assert_eq!(log.dropped(), 3);
    assert_eq!(log.used_bytes(), 23);
    assert_eq!(log.written(), 4);
}

/// Double-insmod of the same driver is idempotent: `Ok(ZERO)` — no
/// error, no second latency charge, no duplicated kernel memory, and
/// `rmmod` still works once.
#[test]
fn double_insmod_is_idempotent() {
    let mut k = kernel();
    let first = k.load_module("android_alarm.ko").unwrap();
    assert!(!first.is_zero(), "first insmod pays the load latency");
    let mem_after_first = k.kernel_memory();
    let second = k.load_module("android_alarm.ko").unwrap();
    assert!(second.is_zero(), "second insmod is free");
    assert_eq!(
        k.kernel_memory(),
        mem_after_first,
        "no double memory charge"
    );
    k.unload_module("android_alarm.ko").unwrap();
    assert!(!k.module_loaded("android_alarm.ko"));
    assert_eq!(
        k.unload_module("android_alarm.ko").unwrap_err(),
        KernelError::NotFound {
            what: "module android_alarm.ko".into()
        },
        "one rmmod fully unloads an idempotently double-loaded module"
    );
    // An unknown module is NotFound on load, too (not ENODEV — there
    // is no device to be missing).
    assert_eq!(
        k.load_module("nonexistent.ko").unwrap_err(),
        KernelError::NotFound {
            what: "module nonexistent.ko".into()
        }
    );
}
