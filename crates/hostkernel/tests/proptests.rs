//! Property tests for kernel-level invariants.

use hostkernel::{DeviceKind, HostSpec, Kernel, Syscall, SyscallRet, ANDROID_CONTAINER_DRIVER};
use proptest::prelude::*;

proptest! {
    /// Module load/get/put/unload sequences preserve the accounting
    /// invariant: kernel memory equals the sum of resident modules, and
    /// unload only succeeds at zero references.
    #[test]
    fn module_refcount_invariant(gets in 0u32..6, puts in 0u32..6) {
        let mut k = Kernel::new(HostSpec::paper_server());
        k.load_android_container_driver();
        let full: u64 = ANDROID_CONTAINER_DRIVER.iter().map(|m| m.kernel_memory_bytes).sum();
        prop_assert_eq!(k.kernel_memory(), full);
        for _ in 0..gets {
            k.module_get_package().unwrap();
        }
        for _ in 0..puts {
            k.module_put_package();
        }
        let outstanding = gets.saturating_sub(puts);
        let can_unload = k.unload_module("android_binder.ko").is_ok();
        prop_assert_eq!(can_unload, outstanding == 0,
            "outstanding {} → unload {}", outstanding, can_unload);
    }

    /// Namespace-local pids are dense and start at 1, regardless of how
    /// namespaces interleave their spawns.
    #[test]
    fn ns_pids_dense(order in prop::collection::vec(0u32..4, 1..40)) {
        let mut k = Kernel::new(HostSpec::paper_server());
        let namespaces: Vec<u32> = (0..4).map(|_| k.create_namespace()).collect();
        let mut counts = [0u32; 4];
        for &which in &order {
            let ns = namespaces[which as usize];
            let pid = k.processes.spawn(ns, "p", 0);
            counts[which as usize] += 1;
            prop_assert_eq!(k.processes.get(pid).unwrap().ns_pid, counts[which as usize]);
        }
    }

    /// Destroying any subset of namespaces never disturbs the others'
    /// binder state.
    #[test]
    fn namespace_isolation_under_churn(kill in prop::collection::btree_set(0usize..5, 0..5)) {
        let mut k = Kernel::new(HostSpec::paper_server());
        k.load_android_container_driver();
        let mut spaces = Vec::new();
        for i in 0..5 {
            let ns = k.create_namespace();
            let pid = k.processes.spawn(ns, "init", 0);
            k.syscall(pid, Syscall::OpenDevice(DeviceKind::Binder)).unwrap();
            k.syscall(pid, Syscall::BinderRegister { service: format!("svc-{i}") }).unwrap();
            spaces.push((ns, pid, i));
        }
        for &victim in &kill {
            k.destroy_namespace(spaces[victim].0).unwrap();
        }
        for &(ns, _pid, i) in &spaces {
            if kill.contains(&i) {
                prop_assert!(!k.namespace_exists(ns));
            } else {
                let found = k.binder_mut(ns).unwrap().lookup(&format!("svc-{i}")).is_some();
                prop_assert!(found);
            }
        }
    }

    /// Any sequence of forks followed by exits keeps the process table
    /// consistent: children of exited parents survive, zombies can't fork.
    #[test]
    fn fork_exit_consistency(n_children in 1usize..10) {
        let mut k = Kernel::new(HostSpec::paper_server());
        let ns = k.create_namespace();
        let init = k.processes.spawn(ns, "init", 0);
        let mut pids = vec![init];
        for i in 0..n_children {
            let parent = pids[i % pids.len()];
            if let Ok(SyscallRet::Pid(child)) =
                k.syscall(parent, Syscall::Fork { child_name: format!("c{i}") })
            {
                pids.push(child);
            }
        }
        let total = pids.len();
        prop_assert_eq!(k.processes.in_namespace(ns).len(), total);
        // Exit the init: everyone else still exists.
        k.syscall(init, Syscall::Exit).unwrap();
        let fork_err = k.syscall(init, Syscall::Fork { child_name: "x".into() }).is_err();
        prop_assert!(fork_err);
        prop_assert_eq!(k.processes.in_namespace(ns).len(), total, "zombie still listed");
        // Namespace teardown clears everything.
        k.destroy_namespace(ns).unwrap();
        prop_assert!(k.processes.in_namespace(ns).is_empty());
    }

    /// Cgroup memory charging never exceeds the limit and uncharging
    /// returns to zero.
    #[test]
    fn cgroup_charge_invariant(charges in prop::collection::vec(1u64..64, 1..30)) {
        let mut k = Kernel::new(HostSpec::paper_server());
        let g = k.cgroups.create("g", 1024, 100);
        let mut charged = Vec::new();
        for c in charges {
            if k.cgroups.charge_memory(g, c).is_ok() {
                charged.push(c);
            }
            let used = k.cgroups.get(g).unwrap().memory_used;
            prop_assert!(used <= 100);
            prop_assert_eq!(used, charged.iter().sum::<u64>());
        }
        for c in charged.drain(..) {
            k.cgroups.uncharge_memory(g, c).unwrap();
        }
        prop_assert_eq!(k.cgroups.get(g).unwrap().memory_used, 0);
    }
}
