//! Loadable kernel modules — the Android Container Driver (§IV-B1).
//!
//! The paper's key mechanism: instead of compiling Android's pseudo
//! drivers (Binder, Alarm, Logger, Ashmem) into the host kernel, Rattrap
//! packages them as loadable modules so a stock cloud server becomes a
//! mobile-offloading host *without recompiling or rebooting*. Modules are
//! reference-counted by the containers using them and can be unloaded to
//! reclaim kernel memory when no Cloud Android Container needs them.

use crate::device::DeviceKind;
use simkit::SimDuration;

/// Descriptor of one loadable kernel module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleSpec {
    /// Module object name, e.g. `android_binder.ko`.
    pub name: &'static str,
    /// Non-swappable kernel memory the module occupies when loaded.
    pub kernel_memory_bytes: u64,
    /// Device node(s) the module provides.
    pub provides: &'static [DeviceKind],
    /// `insmod` latency (symbol resolution + init), simulated.
    pub load_time: SimDuration,
}

/// The Android Container Driver package: every pseudo driver Android
/// expects, implemented as loadable modules (§IV-B1). None of these is
/// hardware-related, which is exactly why the approach works on any
/// cloud server.
pub const ANDROID_CONTAINER_DRIVER: &[ModuleSpec] = &[
    ModuleSpec {
        name: "android_binder.ko",
        // Binder's static footprint is small; transaction buffers are
        // charged to the processes that map them.
        kernel_memory_bytes: 512 * 1024,
        provides: &[DeviceKind::Binder],
        load_time: SimDuration::from_millis(35),
    },
    ModuleSpec {
        name: "android_alarm.ko",
        kernel_memory_bytes: 64 * 1024,
        provides: &[DeviceKind::Alarm],
        load_time: SimDuration::from_millis(8),
    },
    ModuleSpec {
        name: "android_logger.ko",
        // Four RAM log buffers (main/system/radio/events) at 256 KiB each.
        kernel_memory_bytes: 1024 * 1024 + 32 * 1024,
        provides: &[DeviceKind::Logger],
        load_time: SimDuration::from_millis(12),
    },
    ModuleSpec {
        name: "ashmem.ko",
        kernel_memory_bytes: 128 * 1024,
        provides: &[DeviceKind::Ashmem],
        load_time: SimDuration::from_millis(10),
    },
    ModuleSpec {
        name: "sw_sync.ko",
        kernel_memory_bytes: 32 * 1024,
        provides: &[DeviceKind::SwSync],
        load_time: SimDuration::from_millis(5),
    },
];

/// Look up a module of the Android Container Driver by name.
pub fn module_by_name(name: &str) -> Option<&'static ModuleSpec> {
    ANDROID_CONTAINER_DRIVER.iter().find(|m| m.name == name)
}

/// The module that provides `kind`, if any.
pub fn module_providing(kind: DeviceKind) -> Option<&'static ModuleSpec> {
    ANDROID_CONTAINER_DRIVER
        .iter()
        .find(|m| m.provides.contains(&kind))
}

/// Total kernel memory of the whole driver package when fully loaded.
pub fn total_package_memory() -> u64 {
    ANDROID_CONTAINER_DRIVER
        .iter()
        .map(|m| m.kernel_memory_bytes)
        .sum()
}

/// Total `insmod` latency of loading the whole package sequentially.
pub fn total_package_load_time() -> SimDuration {
    ANDROID_CONTAINER_DRIVER
        .iter()
        .fold(SimDuration::ZERO, |acc, m| acc + m.load_time)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_covers_all_android_pseudo_devices() {
        for kind in [
            DeviceKind::Binder,
            DeviceKind::Alarm,
            DeviceKind::Logger,
            DeviceKind::Ashmem,
            DeviceKind::SwSync,
        ] {
            assert!(
                module_providing(kind).is_some(),
                "no module provides {kind:?}"
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(
            module_by_name("android_binder.ko").unwrap().provides,
            &[DeviceKind::Binder]
        );
        assert!(module_by_name("nvidia.ko").is_none());
    }

    #[test]
    fn package_memory_is_modest() {
        // The whole point of loadable drivers: the package is tiny
        // compared to a VM's half-gigabyte footprint.
        let total = total_package_memory();
        assert!(total < 4 * 1024 * 1024, "package uses {total} bytes");
        assert!(total > 0);
    }

    #[test]
    fn package_load_time_is_fast() {
        // Loading all drivers must be far below even the optimized
        // container boot (1.75 s), or the lazy-loading argument dies.
        assert!(total_package_load_time() < SimDuration::from_millis(200));
    }
}
