//! Simulated process table with PID namespaces and Zygote-style forking.
//!
//! Containers get their own PID namespace: pid 1 inside the container is
//! `/init`, exactly as the modified Android init of §IV-B2 expects. The
//! Zygote model matters for the code-cache evaluation: app processes are
//! forked from a warm Zygote rather than cold-started.

use crate::error::{KernelError, KernelResult};
use std::collections::BTreeMap;

/// Lifecycle state of a simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessState {
    /// Runnable / running.
    Running,
    /// Blocked on IPC or I/O.
    Sleeping,
    /// Exited, not yet reaped.
    Zombie,
}

/// One simulated process.
#[derive(Debug, Clone)]
pub struct Process {
    /// Host (global) pid.
    pub pid: u32,
    /// Pid as seen inside its namespace.
    pub ns_pid: u32,
    /// Owning namespace.
    pub namespace: u32,
    /// Command name (e.g. `zygote`, `system_server`).
    pub name: String,
    /// Parent host pid (0 for a namespace's init).
    pub parent: u32,
    /// Current state.
    pub state: ProcessState,
}

/// Global process table spanning all namespaces.
#[derive(Debug, Default)]
pub struct ProcessTable {
    procs: BTreeMap<u32, Process>,
    next_pid: u32,
    /// Next namespace-local pid, per namespace.
    ns_next: BTreeMap<u32, u32>,
}

impl ProcessTable {
    /// Empty table. Host pids start at 1.
    pub fn new() -> Self {
        ProcessTable {
            procs: BTreeMap::new(),
            next_pid: 1,
            ns_next: BTreeMap::new(),
        }
    }

    /// Spawn a process in `namespace`. The first process of a namespace
    /// becomes its init (ns_pid 1).
    pub fn spawn(&mut self, namespace: u32, name: &str, parent: u32) -> u32 {
        let pid = self.next_pid;
        self.next_pid += 1;
        let ns_pid_counter = self.ns_next.entry(namespace).or_insert(1);
        let ns_pid = *ns_pid_counter;
        *ns_pid_counter += 1;
        self.procs.insert(
            pid,
            Process {
                pid,
                ns_pid,
                namespace,
                name: name.to_string(),
                parent,
                state: ProcessState::Running,
            },
        );
        pid
    }

    /// Fork `parent_pid` into a new process named `child_name` in the
    /// same namespace (the Zygote specialization path).
    pub fn fork(&mut self, parent_pid: u32, child_name: &str) -> KernelResult<u32> {
        let parent = self
            .procs
            .get(&parent_pid)
            .ok_or(KernelError::NoSuchProcess { pid: parent_pid })?;
        if parent.state == ProcessState::Zombie {
            return Err(KernelError::NoSuchProcess { pid: parent_pid });
        }
        let ns = parent.namespace;
        Ok(self.spawn(ns, child_name, parent_pid))
    }

    /// Look up a process by host pid.
    pub fn get(&self, pid: u32) -> KernelResult<&Process> {
        self.procs
            .get(&pid)
            .ok_or(KernelError::NoSuchProcess { pid })
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, pid: u32) -> KernelResult<&mut Process> {
        self.procs
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess { pid })
    }

    /// Mark a process as exited (zombie until reaped).
    pub fn exit(&mut self, pid: u32) -> KernelResult<()> {
        self.get_mut(pid)?.state = ProcessState::Zombie;
        Ok(())
    }

    /// Remove a zombie from the table.
    pub fn reap(&mut self, pid: u32) -> KernelResult<Process> {
        match self.procs.get(&pid) {
            Some(p) if p.state == ProcessState::Zombie => {
                Ok(self.procs.remove(&pid).expect("checked above"))
            }
            Some(_) => Err(KernelError::NotPermitted {
                reason: format!("pid {pid} not a zombie"),
            }),
            None => Err(KernelError::NoSuchProcess { pid }),
        }
    }

    /// Kill every process in `namespace` (container teardown). Returns
    /// the host pids removed, in ascending order.
    pub fn kill_namespace(&mut self, namespace: u32) -> Vec<u32> {
        let victims: Vec<u32> = self
            .procs
            .values()
            .filter(|p| p.namespace == namespace)
            .map(|p| p.pid)
            .collect();
        for pid in &victims {
            self.procs.remove(pid);
        }
        self.ns_next.remove(&namespace);
        victims
    }

    /// All processes in `namespace`, ascending host pid.
    pub fn in_namespace(&self, namespace: u32) -> Vec<&Process> {
        self.procs
            .values()
            .filter(|p| p.namespace == namespace)
            .collect()
    }

    /// Total live processes.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// `true` if no processes exist.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_process_is_namespace_init() {
        let mut t = ProcessTable::new();
        let init_a = t.spawn(1, "/init", 0);
        let init_b = t.spawn(2, "/init", 0);
        assert_eq!(t.get(init_a).unwrap().ns_pid, 1);
        assert_eq!(
            t.get(init_b).unwrap().ns_pid,
            1,
            "each namespace has its own pid 1"
        );
        assert_ne!(init_a, init_b, "host pids are global");
    }

    #[test]
    fn zygote_fork_inherits_namespace() {
        let mut t = ProcessTable::new();
        let init = t.spawn(7, "/init", 0);
        let zygote = t.fork(init, "zygote").unwrap();
        let app = t.fork(zygote, "com.example.ocr").unwrap();
        let p = t.get(app).unwrap();
        assert_eq!(p.namespace, 7);
        assert_eq!(p.parent, zygote);
        assert_eq!(p.ns_pid, 3);
    }

    #[test]
    fn fork_from_missing_or_dead_parent_fails() {
        let mut t = ProcessTable::new();
        assert!(t.fork(99, "x").is_err());
        let p = t.spawn(1, "a", 0);
        t.exit(p).unwrap();
        assert!(t.fork(p, "x").is_err());
    }

    #[test]
    fn exit_and_reap_lifecycle() {
        let mut t = ProcessTable::new();
        let p = t.spawn(1, "worker", 0);
        assert!(t.reap(p).is_err(), "cannot reap a running process");
        t.exit(p).unwrap();
        let proc = t.reap(p).unwrap();
        assert_eq!(proc.name, "worker");
        assert!(t.get(p).is_err());
    }

    #[test]
    fn kill_namespace_removes_all_members() {
        let mut t = ProcessTable::new();
        let a1 = t.spawn(1, "init", 0);
        t.fork(a1, "zygote").unwrap();
        let b1 = t.spawn(2, "init", 0);
        let killed = t.kill_namespace(1);
        assert_eq!(killed.len(), 2);
        assert_eq!(t.len(), 1);
        assert!(t.get(b1).is_ok());
        // Namespace-local pids restart after teardown.
        let again = t.spawn(1, "init", 0);
        assert_eq!(t.get(again).unwrap().ns_pid, 1);
    }

    #[test]
    fn in_namespace_lists_members() {
        let mut t = ProcessTable::new();
        let i = t.spawn(3, "init", 0);
        t.fork(i, "zygote").unwrap();
        t.spawn(4, "other", 0);
        assert_eq!(t.in_namespace(3).len(), 2);
        assert_eq!(t.in_namespace(4).len(), 1);
        assert!(t.in_namespace(5).is_empty());
    }
}
