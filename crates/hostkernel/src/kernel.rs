//! The host kernel: module loading, device namespaces, processes,
//! cgroups, and the driver instances behind each namespace's `/dev`.
//!
//! This is the "general purpose server OS" of the paper, extended at
//! runtime by the Android Container Driver. The two properties the
//! evaluation leans on are modelled exactly:
//!
//! 1. **Dynamic extension** — Android syscalls return `ENODEV` until the
//!    corresponding module is loaded; loading takes milliseconds and no
//!    reboot; unloading reclaims kernel memory but is refused while any
//!    container still references the module (`EBUSY`).
//! 2. **Device-namespace multiplexing** — every container namespace gets
//!    a private instance of each driver's state while sharing the single
//!    loaded module, the Cells mechanism adapted to the cloud (§IV-B1).

use crate::alarm::AlarmDriver;
use crate::ashmem::AshmemDriver;
use crate::binder::BinderContext;
use crate::cgroup::CgroupManager;
use crate::device::{DeviceHandle, DeviceKind};
use crate::error::{KernelError, KernelResult};
use crate::logger::LogRecord;
use crate::logger::LoggerDriver;
use crate::module::module_providing;
use crate::module::{module_by_name, ModuleSpec, ANDROID_CONTAINER_DRIVER};
use crate::process::ProcessTable;
use obsv::{attrs, AttrValue, Recorder, SpanId, Subsystem};
use simkit::SimDuration;
use std::collections::BTreeMap;

/// Static description of the host machine (§V: 2 × 6-core Xeon X5650).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostSpec {
    /// Physical cores.
    pub cores: u32,
    /// Core clock, GHz.
    pub clock_ghz: f64,
    /// Installed DRAM, bytes.
    pub memory_bytes: u64,
    /// HDD sequential bandwidth, bytes/s.
    pub disk_bandwidth: f64,
}

impl HostSpec {
    /// The paper's evaluation server: 2 × six-core Xeon X5650 2.66 GHz,
    /// 16 GB DRAM, 300 GB HDD (§V). HDD bandwidth ~120 MB/s sequential.
    pub fn paper_server() -> Self {
        HostSpec {
            cores: 12,
            clock_ghz: 2.66,
            memory_bytes: 16 * 1024 * 1024 * 1024,
            disk_bandwidth: 120.0 * 1024.0 * 1024.0,
        }
    }
}

#[derive(Debug)]
struct LoadedModule {
    spec: &'static ModuleSpec,
    /// References held by containers (module_get/module_put).
    refs: u32,
}

/// Per-namespace driver instances, created lazily on first open.
#[derive(Debug, Default)]
struct NamespaceState {
    binder: Option<BinderContext>,
    alarm: Option<AlarmDriver>,
    logger: Option<LoggerDriver>,
    ashmem: Option<AshmemDriver>,
    next_fd: u32,
}

/// The simulated host kernel.
#[derive(Debug)]
pub struct Kernel {
    host: HostSpec,
    modules: BTreeMap<&'static str, LoadedModule>,
    namespaces: BTreeMap<u32, NamespaceState>,
    next_ns: u32,
    /// Global process table.
    pub processes: ProcessTable,
    /// Cgroup hierarchy.
    pub cgroups: CgroupManager,
    kernel_memory: u64,
    /// Observability handle; disabled by default. The kernel has no
    /// clock of its own — events stamp from the recorder's sim time,
    /// which the simulation engine advances at every event pop.
    rec: Recorder,
}

/// Default ashmem budget per namespace: half the container allocation is
/// a generous ceiling for offloading workloads.
const ASHMEM_BUDGET: u64 = 64 * 1024 * 1024;

impl Kernel {
    /// Boot a kernel on `host`. The host namespace (id 0) exists from
    /// the start.
    pub fn new(host: HostSpec) -> Self {
        let mut namespaces = BTreeMap::new();
        namespaces.insert(0, NamespaceState::default());
        Kernel {
            host,
            modules: BTreeMap::new(),
            namespaces,
            next_ns: 1,
            processes: ProcessTable::new(),
            cgroups: CgroupManager::new(),
            kernel_memory: 0,
            rec: Recorder::disabled(),
        }
    }

    /// Report module and syscall activity into `rec` (spans for
    /// `insmod`, instants for `rmmod` / binder transactions / logcat
    /// writes). A disabled recorder keeps every path zero-cost.
    pub fn attach_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    /// The kernel's observability handle.
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// Host machine description.
    pub fn host(&self) -> HostSpec {
        self.host
    }

    /// Kernel memory consumed by loaded modules.
    pub fn kernel_memory(&self) -> u64 {
        self.kernel_memory
    }

    // ---- modules -------------------------------------------------------

    /// `insmod name`. Returns the simulated load latency; loading an
    /// already-loaded module is a no-op costing zero time.
    pub fn load_module(&mut self, name: &str) -> KernelResult<SimDuration> {
        let spec = module_by_name(name).ok_or_else(|| KernelError::NotFound {
            what: format!("module {name}"),
        })?;
        if self.modules.contains_key(spec.name) {
            return Ok(SimDuration::ZERO);
        }
        self.modules
            .insert(spec.name, LoadedModule { spec, refs: 0 });
        self.kernel_memory += spec.kernel_memory_bytes;
        if self.rec.is_enabled() {
            // The load latency is known up front, so the span's end
            // is stamped at now + load_time directly.
            let now = self.rec.now_us();
            let span = self.rec.span_start_at(
                Subsystem::Hostkernel,
                "insmod",
                SpanId::NONE,
                now,
                attrs![
                    ("module", AttrValue::Str(spec.name)),
                    ("kernel_memory", AttrValue::U64(spec.kernel_memory_bytes)),
                ],
            );
            self.rec
                .span_end_at(span, now + spec.load_time.as_micros(), Vec::new());
        }
        Ok(spec.load_time)
    }

    /// Load the entire Android Container Driver package; returns total
    /// `insmod` latency for modules that were not already resident.
    pub fn load_android_container_driver(&mut self) -> SimDuration {
        ANDROID_CONTAINER_DRIVER
            .iter()
            .fold(SimDuration::ZERO, |acc, m| {
                acc + self.load_module(m.name).expect("package modules are known")
            })
    }

    /// `rmmod name`. Fails with `EBUSY` while containers hold references.
    pub fn unload_module(&mut self, name: &str) -> KernelResult<()> {
        let m = self
            .modules
            .get(name)
            .ok_or_else(|| KernelError::NotFound {
                what: format!("module {name}"),
            })?;
        if m.refs > 0 {
            return Err(KernelError::Busy {
                holder: format!("{} containers", m.refs),
            });
        }
        let m = self.modules.remove(name).expect("checked above");
        self.kernel_memory -= m.spec.kernel_memory_bytes;
        self.rec.instant(
            Subsystem::Hostkernel,
            "rmmod",
            attrs![("module", AttrValue::Str(m.spec.name))],
        );
        Ok(())
    }

    /// Is a module currently resident?
    pub fn module_loaded(&self, name: &str) -> bool {
        self.modules.contains_key(name)
    }

    /// Take a reference on every package module (container start).
    pub fn module_get_package(&mut self) -> KernelResult<()> {
        for spec in ANDROID_CONTAINER_DRIVER {
            match self.modules.get_mut(spec.name) {
                Some(m) => m.refs += 1,
                None => {
                    // Roll back references taken so far to stay consistent.
                    for prev in ANDROID_CONTAINER_DRIVER {
                        if prev.name == spec.name {
                            break;
                        }
                        self.modules
                            .get_mut(prev.name)
                            .expect("was just incremented")
                            .refs -= 1;
                    }
                    return Err(KernelError::NoSuchDevice {
                        device: spec.provides[0].dev_path(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Drop the package reference (container stop).
    pub fn module_put_package(&mut self) {
        for spec in ANDROID_CONTAINER_DRIVER {
            if let Some(m) = self.modules.get_mut(spec.name) {
                m.refs = m.refs.saturating_sub(1);
            }
        }
    }

    // ---- namespaces ----------------------------------------------------

    /// Create a fresh device namespace (one per container).
    pub fn create_namespace(&mut self) -> u32 {
        let ns = self.next_ns;
        self.next_ns += 1;
        self.namespaces.insert(ns, NamespaceState::default());
        ns
    }

    /// Tear a namespace down: kill its processes and drop driver state.
    pub fn destroy_namespace(&mut self, ns: u32) -> KernelResult<()> {
        if ns == 0 {
            return Err(KernelError::NotPermitted {
                reason: "cannot destroy host namespace".into(),
            });
        }
        self.namespaces
            .remove(&ns)
            .ok_or(KernelError::NoSuchNamespace { ns })?;
        self.processes.kill_namespace(ns);
        Ok(())
    }

    /// Does the namespace exist?
    pub fn namespace_exists(&self, ns: u32) -> bool {
        self.namespaces.contains_key(&ns)
    }

    /// Number of live namespaces (including the host's).
    pub fn namespace_count(&self) -> usize {
        self.namespaces.len()
    }

    // ---- devices -------------------------------------------------------

    /// Open a device node inside `ns`. Returns `ENODEV` unless the
    /// providing module is loaded; instantiates per-namespace driver
    /// state on first open.
    pub fn open_device(&mut self, ns: u32, kind: DeviceKind) -> KernelResult<DeviceHandle> {
        self.require_module(kind)?;
        let state = self
            .namespaces
            .get_mut(&ns)
            .ok_or(KernelError::NoSuchNamespace { ns })?;
        match kind {
            DeviceKind::Binder => {
                state.binder.get_or_insert_with(BinderContext::new);
            }
            DeviceKind::Alarm => {
                state.alarm.get_or_insert_with(AlarmDriver::new);
            }
            DeviceKind::Logger => {
                state.logger.get_or_insert_with(LoggerDriver::default);
            }
            DeviceKind::Ashmem => {
                state
                    .ashmem
                    .get_or_insert_with(|| AshmemDriver::new(ASHMEM_BUDGET));
            }
            DeviceKind::SwSync => {} // stateless in this model
        }
        let fd = state.next_fd;
        state.next_fd += 1;
        Ok(DeviceHandle {
            kind,
            namespace: ns,
            fd,
        })
    }

    fn ns_state(&mut self, ns: u32) -> KernelResult<&mut NamespaceState> {
        self.namespaces
            .get_mut(&ns)
            .ok_or(KernelError::NoSuchNamespace { ns })
    }

    /// `ENODEV` unless the module providing `kind` is resident. Every
    /// driver-state access goes through this gate: a namespace may hold
    /// stale driver state from before an `rmmod`, and reading through
    /// an unloaded module must fail exactly like `open_device` and
    /// `dump_log` do — the device nodes of an unloaded module are dead,
    /// full stop. (The model-checking harness audits this as the
    /// "ENODEV iff module unloaded" invariant.)
    fn require_module(&self, kind: DeviceKind) -> KernelResult<()> {
        let module = module_providing(kind).expect("every kind has a module");
        if !self.modules.contains_key(module.name) {
            return Err(KernelError::NoSuchDevice {
                device: kind.dev_path(),
            });
        }
        Ok(())
    }

    /// The namespace's binder context (must have been opened, and the
    /// binder module must still be resident).
    pub fn binder_mut(&mut self, ns: u32) -> KernelResult<&mut BinderContext> {
        self.require_module(DeviceKind::Binder)?;
        self.ns_state(ns)?
            .binder
            .as_mut()
            .ok_or(KernelError::NoSuchDevice {
                device: DeviceKind::Binder.dev_path(),
            })
    }

    /// The namespace's alarm driver (must have been opened, and the
    /// alarm module must still be resident).
    pub fn alarm_mut(&mut self, ns: u32) -> KernelResult<&mut AlarmDriver> {
        self.require_module(DeviceKind::Alarm)?;
        self.ns_state(ns)?
            .alarm
            .as_mut()
            .ok_or(KernelError::NoSuchDevice {
                device: DeviceKind::Alarm.dev_path(),
            })
    }

    /// The namespace's logger (must have been opened, and the logger
    /// module must still be resident).
    pub fn logger_mut(&mut self, ns: u32) -> KernelResult<&mut LoggerDriver> {
        self.require_module(DeviceKind::Logger)?;
        self.ns_state(ns)?
            .logger
            .as_mut()
            .ok_or(KernelError::NoSuchDevice {
                device: DeviceKind::Logger.dev_path(),
            })
    }

    /// `logcat -d` for namespace `ns`: snapshot its log ring (oldest
    /// first), without disturbing the ring.
    ///
    /// Returns `ENODEV` when the logger *module* is not resident —
    /// even if the namespace still holds driver state from before an
    /// `rmmod` — matching real driver semantics where an unloaded
    /// module's device nodes go dead. (Previously the ring was
    /// written but never surfaced anywhere, and naive access through
    /// the stale per-namespace state would have read through an
    /// unloaded module.) Also `ENODEV` when the namespace never
    /// opened `/dev/log/main`, and `ESRCH`-style `NoSuchNamespace`
    /// for an unknown namespace.
    pub fn dump_log(&self, ns: u32) -> KernelResult<Vec<LogRecord>> {
        self.require_module(DeviceKind::Logger)?;
        let state = self
            .namespaces
            .get(&ns)
            .ok_or(KernelError::NoSuchNamespace { ns })?;
        let logger = state.logger.as_ref().ok_or(KernelError::NoSuchDevice {
            device: DeviceKind::Logger.dev_path(),
        })?;
        Ok(logger.dump())
    }

    /// Ids of all live namespaces (including the host's), ascending.
    pub fn namespace_ids(&self) -> Vec<u32> {
        self.namespaces.keys().copied().collect()
    }

    /// The namespace's ashmem driver (must have been opened, and the
    /// ashmem module must still be resident).
    pub fn ashmem_mut(&mut self, ns: u32) -> KernelResult<&mut AshmemDriver> {
        self.require_module(DeviceKind::Ashmem)?;
        self.ns_state(ns)?
            .ashmem
            .as_mut()
            .ok_or(KernelError::NoSuchDevice {
                device: DeviceKind::Ashmem.dev_path(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> Kernel {
        Kernel::new(HostSpec::paper_server())
    }

    #[test]
    fn device_requires_module() {
        let mut k = kernel();
        let ns = k.create_namespace();
        // Binder before insmod: ENODEV — the exact failure the Android
        // Container Driver exists to prevent.
        let err = k.open_device(ns, DeviceKind::Binder).unwrap_err();
        assert_eq!(
            err,
            KernelError::NoSuchDevice {
                device: "/dev/binder"
            }
        );
        k.load_module("android_binder.ko").unwrap();
        assert!(k.open_device(ns, DeviceKind::Binder).is_ok());
    }

    #[test]
    fn module_load_is_idempotent_and_accounted() {
        let mut k = kernel();
        let t1 = k.load_module("ashmem.ko").unwrap();
        assert!(t1 > SimDuration::ZERO);
        let mem = k.kernel_memory();
        assert!(mem > 0);
        let t2 = k.load_module("ashmem.ko").unwrap();
        assert_eq!(t2, SimDuration::ZERO);
        assert_eq!(k.kernel_memory(), mem, "no double charge");
    }

    #[test]
    fn unload_respects_references() {
        let mut k = kernel();
        k.load_android_container_driver();
        k.module_get_package().unwrap();
        let err = k.unload_module("android_binder.ko").unwrap_err();
        assert!(matches!(err, KernelError::Busy { .. }));
        k.module_put_package();
        k.unload_module("android_binder.ko").unwrap();
        assert!(!k.module_loaded("android_binder.ko"));
        assert!(k.kernel_memory() < crate::module::total_package_memory());
    }

    #[test]
    fn module_get_fails_atomically_when_package_incomplete() {
        let mut k = kernel();
        k.load_module("android_binder.ko").unwrap();
        // Package incomplete: get must fail and leave zero references so
        // the loaded module can still be unloaded.
        assert!(k.module_get_package().is_err());
        assert!(k.unload_module("android_binder.ko").is_ok());
    }

    #[test]
    fn namespaces_isolate_binder_state() {
        let mut k = kernel();
        k.load_android_container_driver();
        let a = k.create_namespace();
        let b = k.create_namespace();
        k.open_device(a, DeviceKind::Binder).unwrap();
        k.open_device(b, DeviceKind::Binder).unwrap();
        k.binder_mut(a)
            .unwrap()
            .register_service("activity", 10)
            .unwrap();
        // Namespace b sees no such service: isolation via device namespaces.
        assert!(k.binder_mut(b).unwrap().lookup("activity").is_none());
        assert!(k.binder_mut(a).unwrap().lookup("activity").is_some());
    }

    #[test]
    fn destroy_namespace_kills_processes() {
        let mut k = kernel();
        let ns = k.create_namespace();
        let init = k.processes.spawn(ns, "/init", 0);
        k.processes.fork(init, "zygote").unwrap();
        assert_eq!(k.processes.len(), 2);
        k.destroy_namespace(ns).unwrap();
        assert_eq!(k.processes.len(), 0);
        assert!(!k.namespace_exists(ns));
        assert!(k.destroy_namespace(ns).is_err());
    }

    #[test]
    fn dump_log_surfaces_the_ring() {
        let mut k = kernel();
        k.load_android_container_driver();
        let ns = k.create_namespace();
        k.open_device(ns, DeviceKind::Logger).unwrap();
        k.logger_mut(ns).unwrap().write(crate::logger::LogRecord {
            priority: 4,
            tag: "zygote".into(),
            message: "preloading classes".into(),
            pid: 2,
            at_us: 125,
        });
        let dumped = k.dump_log(ns).unwrap();
        assert_eq!(dumped.len(), 1);
        assert_eq!(dumped[0].at_us, 125);
        assert_eq!(dumped[0].render(), "I/zygote(2): preloading classes");
    }

    #[test]
    fn dump_log_is_enodev_when_module_unloaded() {
        let mut k = kernel();
        k.load_android_container_driver();
        let ns = k.create_namespace();
        k.open_device(ns, DeviceKind::Logger).unwrap();
        k.logger_mut(ns).unwrap().write(crate::logger::LogRecord {
            priority: 4,
            tag: "t".into(),
            message: "m".into(),
            pid: 1,
            at_us: 0,
        });
        // rmmod the logger module: the namespace still holds stale
        // driver state, but dumping must fail with ENODEV rather than
        // read through the unloaded module.
        k.unload_module("android_logger.ko").unwrap();
        let err = k.dump_log(ns).unwrap_err();
        assert_eq!(
            err,
            KernelError::NoSuchDevice {
                device: DeviceKind::Logger.dev_path()
            }
        );
        assert_eq!(format!("{err}"), "ENODEV: no such device /dev/log/main");
    }

    #[test]
    fn dump_log_is_enodev_when_never_opened_and_esrch_for_unknown_ns() {
        let mut k = kernel();
        k.load_android_container_driver();
        let ns = k.create_namespace();
        assert!(matches!(
            k.dump_log(ns),
            Err(KernelError::NoSuchDevice { .. })
        ));
        assert!(matches!(
            k.dump_log(999),
            Err(KernelError::NoSuchNamespace { ns: 999 })
        ));
    }

    #[test]
    fn instrumented_kernel_records_module_lifecycle() {
        use obsv::{RecorderConfig, TraceEvent};
        let rec = Recorder::enabled(RecorderConfig::default());
        rec.set_now(1_000);
        let mut k = kernel();
        k.attach_recorder(rec.clone());
        k.load_module("android_binder.ko").unwrap();
        k.unload_module("android_binder.ko").unwrap();
        let snap = rec.snapshot();
        let begin = snap
            .events
            .iter()
            .find_map(|e| match e {
                TraceEvent::Begin { name, at_us, .. } if *name == "insmod" => Some(*at_us),
                _ => None,
            })
            .expect("insmod span recorded");
        assert_eq!(begin, 1_000);
        assert!(snap
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Instant { name: "rmmod", .. })));
    }

    #[test]
    fn host_namespace_is_protected() {
        let mut k = kernel();
        assert!(matches!(
            k.destroy_namespace(0),
            Err(KernelError::NotPermitted { .. })
        ));
    }

    #[test]
    fn paper_server_spec() {
        let h = HostSpec::paper_server();
        assert_eq!(h.cores, 12);
        assert!((h.clock_ghz - 2.66).abs() < 1e-9);
    }

    #[test]
    fn full_driver_package_loads_quickly() {
        let mut k = kernel();
        let t = k.load_android_container_driver();
        assert!(t < SimDuration::from_millis(200));
        assert_eq!(k.kernel_memory(), crate::module::total_package_memory());
        // Second call is free.
        assert_eq!(k.load_android_container_driver(), SimDuration::ZERO);
    }
}
