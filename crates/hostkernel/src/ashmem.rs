//! `/dev/ashmem` driver state — anonymous shared memory regions.

use crate::error::{KernelError, KernelResult};
use std::collections::BTreeMap;

/// Identifier of an ashmem region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AshmemId(pub u64);

#[derive(Debug)]
struct Region {
    name: String,
    size: u64,
    owner_pid: u32,
    pinned: bool,
}

/// One namespace's ashmem instance with a total-size budget.
#[derive(Debug)]
pub struct AshmemDriver {
    regions: BTreeMap<u64, Region>,
    next_id: u64,
    budget_bytes: u64,
    used_bytes: u64,
}

impl AshmemDriver {
    /// A driver instance with `budget_bytes` of backing memory.
    pub fn new(budget_bytes: u64) -> Self {
        AshmemDriver {
            regions: BTreeMap::new(),
            next_id: 0,
            budget_bytes,
            used_bytes: 0,
        }
    }

    /// Create a named region of `size` bytes for `owner_pid`.
    pub fn create(&mut self, name: &str, size: u64, owner_pid: u32) -> KernelResult<AshmemId> {
        if self.used_bytes + size > self.budget_bytes {
            return Err(KernelError::OutOfMemory { requested: size });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.regions.insert(
            id,
            Region {
                name: name.to_string(),
                size,
                owner_pid,
                pinned: true,
            },
        );
        self.used_bytes += size;
        Ok(AshmemId(id))
    }

    /// Unpin a region, making it reclaimable under memory pressure.
    pub fn unpin(&mut self, id: AshmemId) -> KernelResult<()> {
        match self.regions.get_mut(&id.0) {
            Some(r) => {
                r.pinned = false;
                Ok(())
            }
            None => Err(KernelError::NotFound {
                what: format!("ashmem region {}", id.0),
            }),
        }
    }

    /// Re-pin a region; fails if it was already reclaimed.
    pub fn pin(&mut self, id: AshmemId) -> KernelResult<()> {
        match self.regions.get_mut(&id.0) {
            Some(r) => {
                r.pinned = true;
                Ok(())
            }
            None => Err(KernelError::NotFound {
                what: format!("ashmem region {}", id.0),
            }),
        }
    }

    /// Reclaim unpinned regions until at least `needed` bytes are free,
    /// oldest first. Returns bytes actually reclaimed.
    pub fn shrink(&mut self, needed: u64) -> u64 {
        let mut reclaimed = 0;
        let victims: Vec<u64> = self
            .regions
            .iter()
            .filter(|(_, r)| !r.pinned)
            .map(|(&id, _)| id)
            .collect();
        for id in victims {
            if reclaimed >= needed {
                break;
            }
            let r = self.regions.remove(&id).expect("victim exists");
            self.used_bytes -= r.size;
            reclaimed += r.size;
        }
        reclaimed
    }

    /// Destroy a region explicitly.
    pub fn destroy(&mut self, id: AshmemId) -> KernelResult<()> {
        match self.regions.remove(&id.0) {
            Some(r) => {
                self.used_bytes -= r.size;
                Ok(())
            }
            None => Err(KernelError::NotFound {
                what: format!("ashmem region {}", id.0),
            }),
        }
    }

    /// Drop every region owned by `pid`; returns bytes freed.
    pub fn reap_process(&mut self, pid: u32) -> u64 {
        let victims: Vec<u64> = self
            .regions
            .iter()
            .filter(|(_, r)| r.owner_pid == pid)
            .map(|(&id, _)| id)
            .collect();
        let mut freed = 0;
        for id in victims {
            let r = self.regions.remove(&id).expect("victim exists");
            self.used_bytes -= r.size;
            freed += r.size;
        }
        freed
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Number of live regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Name of a region (for diagnostics).
    pub fn name_of(&self, id: AshmemId) -> Option<&str> {
        self.regions.get(&id.0).map(|r| r.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_within_budget() {
        let mut a = AshmemDriver::new(1024);
        let id = a.create("dalvik-heap", 512, 1).unwrap();
        assert_eq!(a.used_bytes(), 512);
        assert_eq!(a.name_of(id), Some("dalvik-heap"));
        let err = a.create("too-big", 1024, 1).unwrap_err();
        assert!(matches!(err, KernelError::OutOfMemory { requested: 1024 }));
    }

    #[test]
    fn destroy_frees_budget() {
        let mut a = AshmemDriver::new(1024);
        let id = a.create("r", 1000, 1).unwrap();
        a.destroy(id).unwrap();
        assert_eq!(a.used_bytes(), 0);
        assert!(a.destroy(id).is_err());
        assert!(a.create("r2", 1024, 1).is_ok());
    }

    #[test]
    fn shrink_reclaims_only_unpinned() {
        let mut a = AshmemDriver::new(4096);
        let pinned = a.create("pinned", 1024, 1).unwrap();
        let loose = a.create("loose", 1024, 1).unwrap();
        a.unpin(loose).unwrap();
        assert_eq!(a.shrink(512), 1024);
        assert_eq!(a.region_count(), 1);
        assert!(a.pin(pinned).is_ok());
        assert!(
            a.pin(loose).is_err(),
            "reclaimed region cannot be re-pinned"
        );
    }

    #[test]
    fn reap_frees_owner_regions() {
        let mut a = AshmemDriver::new(4096);
        a.create("a", 100, 1).unwrap();
        a.create("b", 200, 1).unwrap();
        a.create("c", 300, 2).unwrap();
        assert_eq!(a.reap_process(1), 300);
        assert_eq!(a.used_bytes(), 300);
        assert_eq!(a.region_count(), 1);
    }
}
