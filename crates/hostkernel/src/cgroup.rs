//! Control groups — the process-level resource control that lets the
//! Monitor & Scheduler manage containers "at process-level, rather than
//! at VM-level" (§IV-A).

use crate::error::{KernelError, KernelResult};
use std::collections::{BTreeMap, BTreeSet};

/// Identifier of a cgroup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CgroupId(pub u32);

/// One cgroup with CPU and memory controllers.
#[derive(Debug, Clone)]
pub struct Cgroup {
    /// Human-readable name (container id).
    pub name: String,
    /// `cpu.shares` relative weight (default 1024).
    pub cpu_shares: u32,
    /// `memory.limit_in_bytes`; `u64::MAX` means unlimited.
    pub memory_limit: u64,
    /// Current memory charge.
    pub memory_used: u64,
    /// Peak memory charge (memory.max_usage_in_bytes).
    pub memory_peak: u64,
    /// Member host pids.
    pub members: BTreeSet<u32>,
}

/// The cgroup hierarchy (flat, as LXC uses one group per container).
#[derive(Debug, Default)]
pub struct CgroupManager {
    groups: BTreeMap<u32, Cgroup>,
    next_id: u32,
}

impl CgroupManager {
    /// Empty hierarchy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a cgroup with the given CPU weight and memory limit.
    pub fn create(&mut self, name: &str, cpu_shares: u32, memory_limit: u64) -> CgroupId {
        let id = self.next_id;
        self.next_id += 1;
        self.groups.insert(
            id,
            Cgroup {
                name: name.to_string(),
                cpu_shares,
                memory_limit,
                memory_used: 0,
                memory_peak: 0,
                members: BTreeSet::new(),
            },
        );
        CgroupId(id)
    }

    /// Remove a cgroup; fails while it still has members.
    pub fn remove(&mut self, id: CgroupId) -> KernelResult<()> {
        match self.groups.get(&id.0) {
            Some(g) if !g.members.is_empty() => Err(KernelError::Busy {
                holder: format!("cgroup {} has members", g.name),
            }),
            Some(_) => {
                self.groups.remove(&id.0);
                Ok(())
            }
            None => Err(KernelError::NotFound {
                what: format!("cgroup {}", id.0),
            }),
        }
    }

    /// Attach a pid to a cgroup (and implicitly detach from any other).
    pub fn attach(&mut self, id: CgroupId, pid: u32) -> KernelResult<()> {
        if !self.groups.contains_key(&id.0) {
            return Err(KernelError::NotFound {
                what: format!("cgroup {}", id.0),
            });
        }
        for g in self.groups.values_mut() {
            g.members.remove(&pid);
        }
        self.groups
            .get_mut(&id.0)
            .expect("checked above")
            .members
            .insert(pid);
        Ok(())
    }

    /// Charge `bytes` of memory to the group, enforcing the limit.
    pub fn charge_memory(&mut self, id: CgroupId, bytes: u64) -> KernelResult<()> {
        let g = self
            .groups
            .get_mut(&id.0)
            .ok_or_else(|| KernelError::NotFound {
                what: format!("cgroup {}", id.0),
            })?;
        if g.memory_used + bytes > g.memory_limit {
            return Err(KernelError::CgroupLimit {
                what: format!(
                    "{}: {} + {} bytes exceeds memory.limit {}",
                    g.name, g.memory_used, bytes, g.memory_limit
                ),
            });
        }
        g.memory_used += bytes;
        g.memory_peak = g.memory_peak.max(g.memory_used);
        Ok(())
    }

    /// Release a previous memory charge.
    pub fn uncharge_memory(&mut self, id: CgroupId, bytes: u64) -> KernelResult<()> {
        let g = self
            .groups
            .get_mut(&id.0)
            .ok_or_else(|| KernelError::NotFound {
                what: format!("cgroup {}", id.0),
            })?;
        debug_assert!(bytes <= g.memory_used, "uncharging more than charged");
        g.memory_used = g.memory_used.saturating_sub(bytes);
        Ok(())
    }

    /// Update a group's `cpu.shares` weight (the scheduler's
    /// rebalancing knob).
    pub fn set_cpu_shares(&mut self, id: CgroupId, shares: u32) -> KernelResult<()> {
        let g = self
            .groups
            .get_mut(&id.0)
            .ok_or_else(|| KernelError::NotFound {
                what: format!("cgroup {}", id.0),
            })?;
        g.cpu_shares = shares;
        Ok(())
    }

    /// Fraction of total CPU shares this group holds — its fair-share
    /// weight under contention.
    pub fn cpu_fraction(&self, id: CgroupId) -> Option<f64> {
        let total: u64 = self.groups.values().map(|g| g.cpu_shares as u64).sum();
        let g = self.groups.get(&id.0)?;
        if total == 0 {
            return Some(0.0);
        }
        Some(g.cpu_shares as f64 / total as f64)
    }

    /// Immutable access to a group.
    pub fn get(&self, id: CgroupId) -> KernelResult<&Cgroup> {
        self.groups.get(&id.0).ok_or_else(|| KernelError::NotFound {
            what: format!("cgroup {}", id.0),
        })
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// `true` when no groups exist.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_limit_enforced() {
        let mut m = CgroupManager::new();
        // 96 MiB — the optimized Cloud Android Container allocation.
        let g = m.create("cac-1", 1024, 96 * 1024 * 1024);
        m.charge_memory(g, 90 * 1024 * 1024).unwrap();
        let err = m.charge_memory(g, 10 * 1024 * 1024).unwrap_err();
        assert!(matches!(err, KernelError::CgroupLimit { .. }));
        assert_eq!(m.get(g).unwrap().memory_used, 90 * 1024 * 1024);
        m.uncharge_memory(g, 90 * 1024 * 1024).unwrap();
        assert_eq!(m.get(g).unwrap().memory_used, 0);
        assert_eq!(m.get(g).unwrap().memory_peak, 90 * 1024 * 1024);
    }

    #[test]
    fn cpu_fraction_is_relative() {
        let mut m = CgroupManager::new();
        let a = m.create("a", 1024, u64::MAX);
        let b = m.create("b", 3072, u64::MAX);
        assert!((m.cpu_fraction(a).unwrap() - 0.25).abs() < 1e-9);
        assert!((m.cpu_fraction(b).unwrap() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn attach_moves_pid_between_groups() {
        let mut m = CgroupManager::new();
        let a = m.create("a", 1024, u64::MAX);
        let b = m.create("b", 1024, u64::MAX);
        m.attach(a, 42).unwrap();
        m.attach(b, 42).unwrap();
        assert!(!m.get(a).unwrap().members.contains(&42));
        assert!(m.get(b).unwrap().members.contains(&42));
    }

    #[test]
    fn remove_refuses_nonempty_group() {
        let mut m = CgroupManager::new();
        let g = m.create("g", 1024, u64::MAX);
        m.attach(g, 1).unwrap();
        assert!(m.remove(g).is_err());
        let empty = m.create("e", 1024, u64::MAX);
        assert!(m.remove(empty).is_ok());
    }
}
