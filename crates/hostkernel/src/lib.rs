//! # hostkernel — the simulated cloud-server kernel
//!
//! Models the general-purpose Linux host that Rattrap extends into a
//! mobile-offloading platform. The paper's enabling idea (§IV-B1) is
//! that Android's kernel additions are *pseudo* drivers, so they can be
//! shipped as loadable modules — the **Android Container Driver** — and
//! a stock server gains the ability to run Android userspace in
//! containers without recompiling or rebooting.
//!
//! What is modelled, and why it matters to the evaluation:
//! * [`module`] — the driver package, its kernel-memory footprint and
//!   `insmod` latency (flexibility/efficiency claims of §IV-B1).
//! * [`device`] + [`kernel`] — `/dev` nodes appear only while modules
//!   are loaded (`ENODEV` otherwise) and each container namespace gets a
//!   private driver instance (device-namespace multiplexing from Cells).
//! * [`binder`], [`alarm`], [`logger`], [`ashmem`] — functional state
//!   machines for each pseudo driver.
//! * [`process`] — PID namespaces and Zygote-style forking.
//! * [`cgroup`] — the process-level resource control used by Rattrap's
//!   Monitor & Scheduler.
//! * [`syscall`] — the Android syscall surface containers exercise.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alarm;
pub mod ashmem;
pub mod binder;
pub mod cgroup;
pub mod device;
pub mod error;
pub mod kernel;
pub mod logger;
pub mod module;
pub mod process;
pub mod procfs;
pub mod syscall;

pub use binder::{BinderContext, BinderHandle, BinderStats, DeathNotification, OnewayTransaction};
pub use cgroup::{Cgroup, CgroupId, CgroupManager};
pub use device::{DeviceHandle, DeviceKind};
pub use error::{KernelError, KernelResult};
pub use kernel::{HostSpec, Kernel};
pub use module::{ModuleSpec, ANDROID_CONTAINER_DRIVER};
pub use process::{Process, ProcessState, ProcessTable};
pub use syscall::{Syscall, SyscallRet};
