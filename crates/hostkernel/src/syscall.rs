//! Android-specific syscall surface.
//!
//! Mobile code inside a Cloud Android Container "is able to make
//! Android-specific system calls" once the kernel is extended (§IV-B1).
//! This module is that surface: a typed syscall enum dispatched against
//! the calling process's device namespace. It is what the `virt` and
//! `rattrap` crates drive when simulated Android processes run.

use crate::alarm::AlarmId;
use crate::ashmem::AshmemId;
use crate::binder::BinderHandle;
use crate::device::DeviceKind;
use crate::error::KernelResult;
use crate::kernel::Kernel;
use obsv::{attrs, AttrValue, Subsystem};
use simkit::SimTime;

/// The Android syscalls the offloading path exercises.
#[derive(Debug, Clone, PartialEq)]
pub enum Syscall {
    /// Open one of the Android pseudo devices.
    OpenDevice(DeviceKind),
    /// Publish a binder service (ServiceManager `addService`).
    BinderRegister {
        /// Service name, e.g. `"activity"`.
        service: String,
    },
    /// Synchronous binder transaction.
    BinderTransact {
        /// Target service.
        service: String,
        /// Payload size in bytes.
        payload_bytes: u64,
    },
    /// Asynchronous (one-way) binder transaction.
    BinderTransactOneway {
        /// Target service.
        service: String,
        /// Payload size in bytes.
        payload_bytes: u64,
    },
    /// Subscribe to a service's death (`linkToDeath`).
    BinderLinkToDeath {
        /// Service to watch.
        service: String,
    },
    /// Arm an RTC alarm.
    AlarmSet {
        /// Absolute due time.
        due: SimTime,
    },
    /// Disarm an alarm.
    AlarmCancel {
        /// Alarm to cancel.
        id: AlarmId,
    },
    /// Append to the RAM log.
    LogWrite {
        /// Priority (2–7).
        priority: u8,
        /// Log tag.
        tag: String,
        /// Message body.
        message: String,
    },
    /// Create an anonymous shared-memory region.
    AshmemCreate {
        /// Region name.
        name: String,
        /// Region size, bytes.
        size: u64,
    },
    /// Fork the calling process (Zygote specialization).
    Fork {
        /// Name for the child.
        child_name: String,
    },
    /// Exit the calling process.
    Exit,
}

/// Successful syscall results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SyscallRet {
    /// No interesting return value.
    Unit,
    /// A new pid (from `Fork`).
    Pid(u32),
    /// A binder service handle.
    Binder(BinderHandle),
    /// The pid that serviced a transaction.
    ServedBy(u32),
    /// An armed alarm.
    Alarm(AlarmId),
    /// A new ashmem region.
    Ashmem(AshmemId),
    /// An opened device fd.
    Fd(u32),
}

impl Kernel {
    /// Dispatch `call` on behalf of `pid`, routing device access through
    /// the process's namespace.
    pub fn syscall(&mut self, pid: u32, call: Syscall) -> KernelResult<SyscallRet> {
        let ns = self.processes.get(pid)?.namespace;
        match call {
            Syscall::OpenDevice(kind) => {
                let h = self.open_device(ns, kind)?;
                Ok(SyscallRet::Fd(h.fd))
            }
            Syscall::BinderRegister { service } => {
                let h = self.binder_mut(ns)?.register_service(&service, pid)?;
                Ok(SyscallRet::Binder(h))
            }
            Syscall::BinderTransact {
                service,
                payload_bytes,
            } => {
                let served = self.binder_mut(ns)?.transact(&service, payload_bytes)?;
                if self.recorder().is_enabled() {
                    self.recorder().instant(
                        Subsystem::Hostkernel,
                        "binder.transact",
                        attrs![
                            ("ns", AttrValue::U64(ns as u64)),
                            ("service", AttrValue::Text(service)),
                            ("bytes", AttrValue::U64(payload_bytes)),
                            ("served_by", AttrValue::U64(served as u64)),
                        ],
                    );
                }
                Ok(SyscallRet::ServedBy(served))
            }
            Syscall::BinderTransactOneway {
                service,
                payload_bytes,
            } => {
                self.binder_mut(ns)?
                    .transact_oneway(pid, &service, payload_bytes)?;
                if self.recorder().is_enabled() {
                    self.recorder().instant(
                        Subsystem::Hostkernel,
                        "binder.transact_oneway",
                        attrs![
                            ("ns", AttrValue::U64(ns as u64)),
                            ("service", AttrValue::Text(service)),
                            ("bytes", AttrValue::U64(payload_bytes)),
                        ],
                    );
                }
                Ok(SyscallRet::Unit)
            }
            Syscall::BinderLinkToDeath { service } => {
                self.binder_mut(ns)?.link_to_death(pid, &service)?;
                Ok(SyscallRet::Unit)
            }
            Syscall::AlarmSet { due } => {
                let id = self.alarm_mut(ns)?.set(pid, due);
                Ok(SyscallRet::Alarm(id))
            }
            Syscall::AlarmCancel { id } => {
                self.alarm_mut(ns)?.cancel(id);
                Ok(SyscallRet::Unit)
            }
            Syscall::LogWrite {
                priority,
                tag,
                message,
            } => {
                let at_us = self.recorder().now_us();
                if self.recorder().is_enabled() {
                    self.recorder().instant(
                        Subsystem::Hostkernel,
                        "logcat",
                        attrs![
                            ("ns", AttrValue::U64(ns as u64)),
                            ("priority", AttrValue::U64(priority as u64)),
                            ("tag", AttrValue::Text(tag.clone())),
                        ],
                    );
                }
                self.logger_mut(ns)?.write(crate::logger::LogRecord {
                    priority,
                    tag,
                    message,
                    pid,
                    at_us,
                });
                Ok(SyscallRet::Unit)
            }
            Syscall::AshmemCreate { name, size } => {
                let id = self.ashmem_mut(ns)?.create(&name, size, pid)?;
                Ok(SyscallRet::Ashmem(id))
            }
            Syscall::Fork { child_name } => {
                let child = self.processes.fork(pid, &child_name)?;
                Ok(SyscallRet::Pid(child))
            }
            Syscall::Exit => {
                // Clean up driver state owned by the process, then zombify.
                if let Ok(b) = self.binder_mut(ns) {
                    b.reap_process(pid);
                }
                if let Ok(a) = self.alarm_mut(ns) {
                    a.reap_process(pid);
                }
                if let Ok(m) = self.ashmem_mut(ns) {
                    m.reap_process(pid);
                }
                self.processes.exit(pid)?;
                Ok(SyscallRet::Unit)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::KernelError;
    use crate::kernel::HostSpec;

    /// Boot a kernel with the driver package loaded and a container
    /// namespace holding an init process.
    fn booted() -> (Kernel, u32, u32) {
        let mut k = Kernel::new(HostSpec::paper_server());
        k.load_android_container_driver();
        let ns = k.create_namespace();
        let init = k.processes.spawn(ns, "/init", 0);
        (k, ns, init)
    }

    #[test]
    fn android_boot_sequence_via_syscalls() {
        // The user-space boot of §IV-B2 expressed as syscalls: init opens
        // devices, forks zygote, zygote registers core services.
        let (mut k, _ns, init) = booted();
        k.syscall(init, Syscall::OpenDevice(DeviceKind::Binder))
            .unwrap();
        k.syscall(init, Syscall::OpenDevice(DeviceKind::Logger))
            .unwrap();
        let SyscallRet::Pid(zygote) = k
            .syscall(
                init,
                Syscall::Fork {
                    child_name: "zygote".into(),
                },
            )
            .unwrap()
        else {
            panic!("fork returns pid")
        };
        let SyscallRet::Pid(system_server) = k
            .syscall(
                zygote,
                Syscall::Fork {
                    child_name: "system_server".into(),
                },
            )
            .unwrap()
        else {
            panic!("fork returns pid")
        };
        k.syscall(
            system_server,
            Syscall::BinderRegister {
                service: "activity".into(),
            },
        )
        .unwrap();
        k.syscall(
            system_server,
            Syscall::BinderRegister {
                service: "package".into(),
            },
        )
        .unwrap();
        // An app process can now transact with the activity manager.
        let SyscallRet::Pid(app) = k
            .syscall(
                zygote,
                Syscall::Fork {
                    child_name: "com.bench.ocr".into(),
                },
            )
            .unwrap()
        else {
            panic!("fork returns pid")
        };
        let r = k
            .syscall(
                app,
                Syscall::BinderTransact {
                    service: "activity".into(),
                    payload_bytes: 128,
                },
            )
            .unwrap();
        assert_eq!(r, SyscallRet::ServedBy(system_server));
    }

    #[test]
    fn syscalls_fail_without_driver_modules() {
        let mut k = Kernel::new(HostSpec::paper_server());
        let ns = k.create_namespace();
        let p = k.processes.spawn(ns, "app", 0);
        let err = k
            .syscall(p, Syscall::OpenDevice(DeviceKind::Binder))
            .unwrap_err();
        assert!(matches!(err, KernelError::NoSuchDevice { .. }));
    }

    #[test]
    fn transact_before_open_is_enodev() {
        let (mut k, _ns, init) = booted();
        let err = k
            .syscall(
                init,
                Syscall::BinderTransact {
                    service: "x".into(),
                    payload_bytes: 1,
                },
            )
            .unwrap_err();
        assert!(matches!(err, KernelError::NoSuchDevice { .. }));
    }

    #[test]
    fn alarm_set_and_log_write() {
        let (mut k, ns, init) = booted();
        k.syscall(init, Syscall::OpenDevice(DeviceKind::Alarm))
            .unwrap();
        k.syscall(init, Syscall::OpenDevice(DeviceKind::Logger))
            .unwrap();
        k.syscall(
            init,
            Syscall::AlarmSet {
                due: SimTime::from_secs(60),
            },
        )
        .unwrap();
        k.syscall(
            init,
            Syscall::LogWrite {
                priority: 4,
                tag: "init".into(),
                message: "boot done".into(),
            },
        )
        .unwrap();
        assert_eq!(k.alarm_mut(ns).unwrap().pending_count(), 1);
        assert_eq!(k.logger_mut(ns).unwrap().len(), 1);
    }

    #[test]
    fn exit_reaps_driver_state() {
        let (mut k, ns, init) = booted();
        k.syscall(init, Syscall::OpenDevice(DeviceKind::Binder))
            .unwrap();
        k.syscall(init, Syscall::OpenDevice(DeviceKind::Alarm))
            .unwrap();
        k.syscall(init, Syscall::OpenDevice(DeviceKind::Ashmem))
            .unwrap();
        let SyscallRet::Pid(svc) = k
            .syscall(
                init,
                Syscall::Fork {
                    child_name: "service".into(),
                },
            )
            .unwrap()
        else {
            panic!()
        };
        k.syscall(
            svc,
            Syscall::BinderRegister {
                service: "media".into(),
            },
        )
        .unwrap();
        k.syscall(
            svc,
            Syscall::AlarmSet {
                due: SimTime::from_secs(5),
            },
        )
        .unwrap();
        k.syscall(
            svc,
            Syscall::AshmemCreate {
                name: "buf".into(),
                size: 4096,
            },
        )
        .unwrap();
        k.syscall(svc, Syscall::Exit).unwrap();
        assert!(k.binder_mut(ns).unwrap().lookup("media").is_none());
        assert_eq!(k.alarm_mut(ns).unwrap().pending_count(), 0);
        assert_eq!(k.ashmem_mut(ns).unwrap().used_bytes(), 0);
    }

    #[test]
    fn ashmem_budget_enforced_via_syscall() {
        let (mut k, _ns, init) = booted();
        k.syscall(init, Syscall::OpenDevice(DeviceKind::Ashmem))
            .unwrap();
        let err = k
            .syscall(
                init,
                Syscall::AshmemCreate {
                    name: "huge".into(),
                    size: 1 << 40,
                },
            )
            .unwrap_err();
        assert!(matches!(err, KernelError::OutOfMemory { .. }));
    }
}
