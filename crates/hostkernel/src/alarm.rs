//! `/dev/alarm` driver state — RTC-based alarms for timer messages.

use simkit::SimTime;
use std::collections::BTreeMap;

/// Identifier of a pending alarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AlarmId(pub u64);

/// One namespace's alarm driver instance.
#[derive(Debug, Default)]
pub struct AlarmDriver {
    /// Pending alarms: id → (due time, owning pid).
    pending: BTreeMap<u64, (SimTime, u32)>,
    next_id: u64,
    fired: u64,
}

impl AlarmDriver {
    /// Fresh driver instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm an alarm for `pid` due at `due`.
    pub fn set(&mut self, pid: u32, due: SimTime) -> AlarmId {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.insert(id, (due, pid));
        AlarmId(id)
    }

    /// Disarm an alarm; `true` if it was still pending.
    pub fn cancel(&mut self, id: AlarmId) -> bool {
        self.pending.remove(&id.0).is_some()
    }

    /// The earliest pending due time, for event-loop integration.
    pub fn next_due(&self) -> Option<SimTime> {
        self.pending.values().map(|&(t, _)| t).min()
    }

    /// Fire every alarm due at or before `now`; returns `(id, pid)` pairs
    /// in id order (deterministic).
    pub fn fire_due(&mut self, now: SimTime) -> Vec<(AlarmId, u32)> {
        let due: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, &(t, _))| t <= now)
            .map(|(&id, _)| id)
            .collect();
        let mut out = Vec::with_capacity(due.len());
        for id in due {
            let (_, pid) = self.pending.remove(&id).expect("id came from pending");
            self.fired += 1;
            out.push((AlarmId(id), pid));
        }
        out
    }

    /// Number of alarms still pending.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Total alarms fired over the driver's lifetime.
    pub fn fired_count(&self) -> u64 {
        self.fired
    }

    /// Drop all alarms owned by `pid` (process exit).
    pub fn reap_process(&mut self, pid: u32) -> usize {
        let before = self.pending.len();
        self.pending.retain(|_, &mut (_, owner)| owner != pid);
        before - self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_fire_in_order() {
        let mut d = AlarmDriver::new();
        let a = d.set(1, SimTime::from_secs(5));
        let b = d.set(2, SimTime::from_secs(3));
        assert_eq!(d.next_due(), Some(SimTime::from_secs(3)));
        let fired = d.fire_due(SimTime::from_secs(4));
        assert_eq!(fired, vec![(b, 2)]);
        assert_eq!(d.pending_count(), 1);
        let fired = d.fire_due(SimTime::from_secs(10));
        assert_eq!(fired, vec![(a, 1)]);
        assert_eq!(d.fired_count(), 2);
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut d = AlarmDriver::new();
        let a = d.set(1, SimTime::from_secs(1));
        assert!(d.cancel(a));
        assert!(!d.cancel(a));
        assert!(d.fire_due(SimTime::from_secs(2)).is_empty());
    }

    #[test]
    fn reap_drops_only_owner() {
        let mut d = AlarmDriver::new();
        d.set(1, SimTime::from_secs(1));
        d.set(1, SimTime::from_secs(2));
        d.set(2, SimTime::from_secs(3));
        assert_eq!(d.reap_process(1), 2);
        assert_eq!(d.pending_count(), 1);
    }

    #[test]
    fn fire_due_same_instant_is_deterministic() {
        let mut d = AlarmDriver::new();
        let t = SimTime::from_secs(1);
        let ids: Vec<_> = (0..5).map(|pid| d.set(pid, t)).collect();
        let fired = d.fire_due(t);
        assert_eq!(fired.iter().map(|&(id, _)| id).collect::<Vec<_>>(), ids);
    }
}
