//! `/dev/log/*` driver state — Android's lightweight RAM ring-buffer log.

use std::collections::VecDeque;

/// A single log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Priority (2 = verbose … 7 = fatal, as in Android's `android_LogPriority`).
    pub priority: u8,
    /// Log tag.
    pub tag: String,
    /// Message body.
    pub message: String,
    /// Writing pid.
    pub pid: u32,
    /// Simulated write instant, microseconds (0 when the kernel has
    /// no attached recorder to source a clock from).
    pub at_us: u64,
}

impl LogRecord {
    /// `logcat`-style one-line rendering:
    /// `P/tag(pid): message` with `P` the priority letter.
    pub fn render(&self) -> String {
        let level = match self.priority {
            2 => 'V',
            3 => 'D',
            4 => 'I',
            5 => 'W',
            6 => 'E',
            7 => 'F',
            _ => '?',
        };
        format!("{level}/{}({}): {}", self.tag, self.pid, self.message)
    }
}

impl LogRecord {
    fn size_bytes(&self) -> usize {
        // at_us is metadata outside the simulated logger_entry payload.
        // header (priority + pid + lengths) + payload, matching the
        // logger_entry layout closely enough for capacity accounting.
        20 + self.tag.len() + self.message.len()
    }
}

/// One namespace's ring-buffer logger instance.
#[derive(Debug)]
pub struct LoggerDriver {
    capacity_bytes: usize,
    used_bytes: usize,
    records: VecDeque<LogRecord>,
    /// Records evicted by ring wrap-around.
    dropped: u64,
    /// Total records ever written.
    written: u64,
}

impl LoggerDriver {
    /// Android's default main buffer is 256 KiB.
    pub const DEFAULT_CAPACITY: usize = 256 * 1024;

    /// A logger with the given ring capacity.
    pub fn new(capacity_bytes: usize) -> Self {
        assert!(capacity_bytes > 0, "logger capacity must be positive");
        LoggerDriver {
            capacity_bytes,
            used_bytes: 0,
            records: VecDeque::new(),
            dropped: 0,
            written: 0,
        }
    }

    /// Write a record, evicting the oldest entries if the ring is full.
    pub fn write(&mut self, record: LogRecord) {
        let size = record.size_bytes();
        // Records bigger than the whole ring are truncated to fit in
        // spirit; we simply account them at capacity.
        let size = size.min(self.capacity_bytes);
        while self.used_bytes + size > self.capacity_bytes {
            let old = self.records.pop_front().expect("used > 0 implies records");
            self.used_bytes -= old.size_bytes().min(self.capacity_bytes);
            self.dropped += 1;
        }
        self.used_bytes += size;
        self.records.push_back(record);
        self.written += 1;
    }

    /// Read the most recent `n` records (oldest first), like `logcat -t n`.
    pub fn tail(&self, n: usize) -> Vec<&LogRecord> {
        let start = self.records.len().saturating_sub(n);
        self.records.iter().skip(start).collect()
    }

    /// Snapshot the whole ring (oldest first), like `logcat -d`. The
    /// ring is left untouched; this feeds the observability plane's
    /// text timeline exporter.
    pub fn dump(&self) -> Vec<LogRecord> {
        self.records.iter().cloned().collect()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Bytes currently used.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Records lost to ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records written over the driver's lifetime.
    pub fn written(&self) -> u64 {
        self.written
    }
}

impl Default for LoggerDriver {
    fn default() -> Self {
        LoggerDriver::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tag: &str, msg: &str) -> LogRecord {
        LogRecord {
            priority: 4,
            tag: tag.into(),
            message: msg.into(),
            pid: 1,
            at_us: 0,
        }
    }

    #[test]
    fn write_and_tail() {
        let mut log = LoggerDriver::default();
        log.write(rec("zygote", "boot"));
        log.write(rec("system_server", "ready"));
        let tail = log.tail(10);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].tag, "zygote");
        assert_eq!(tail[1].tag, "system_server");
        assert_eq!(log.tail(1)[0].tag, "system_server");
    }

    #[test]
    fn ring_evicts_oldest() {
        // Tiny ring: each record is 20 + 1 + 1 = 22 bytes.
        let mut log = LoggerDriver::new(50);
        log.write(rec("a", "1"));
        log.write(rec("b", "2"));
        assert_eq!(log.len(), 2);
        log.write(rec("c", "3")); // would exceed 50 → evicts "a"
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.tail(10)[0].tag, "b");
        assert_eq!(log.written(), 3);
    }

    #[test]
    fn oversized_record_fits_alone() {
        let mut log = LoggerDriver::new(32);
        log.write(LogRecord {
            priority: 6,
            tag: "t".into(),
            message: "x".repeat(1000),
            pid: 1,
            at_us: 0,
        });
        assert_eq!(log.len(), 1);
        assert!(log.used_bytes() <= 32);
    }

    #[test]
    fn dump_returns_all_records_oldest_first_and_preserves_ring() {
        let mut log = LoggerDriver::default();
        log.write(rec("init", "start"));
        log.write(rec("zygote", "fork"));
        let dumped = log.dump();
        assert_eq!(dumped.len(), 2);
        assert_eq!(dumped[0].tag, "init");
        assert_eq!(dumped[1].tag, "zygote");
        assert_eq!(log.len(), 2, "dump is non-destructive");
        assert_eq!(dumped[0].render(), "I/init(1): start");
    }

    #[test]
    fn used_bytes_never_exceeds_capacity() {
        let mut log = LoggerDriver::new(200);
        for i in 0..100 {
            log.write(rec("tag", &format!("message number {i}")));
            assert!(log.used_bytes() <= 200);
        }
    }
}
