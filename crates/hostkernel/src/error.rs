//! Kernel error codes.
//!
//! Modelled after the errno values the real Android Container Driver
//! stack would return: a container that opens `/dev/binder` before
//! `android_binder.ko` is loaded gets `ENODEV`, an unknown syscall gets
//! `ENOSYS`, and so on.

use std::fmt;

/// Errors surfaced by the simulated kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// The backing kernel module is not loaded (`ENODEV`).
    NoSuchDevice {
        /// Device node that was opened.
        device: &'static str,
    },
    /// The syscall is not supported by this kernel (`ENOSYS`).
    NotImplemented {
        /// Name of the attempted operation.
        what: String,
    },
    /// Referenced process does not exist (`ESRCH`).
    NoSuchProcess {
        /// The dangling pid.
        pid: u32,
    },
    /// Referenced namespace does not exist (`EINVAL`).
    NoSuchNamespace {
        /// The dangling namespace id.
        ns: u32,
    },
    /// Object already exists (`EEXIST`).
    AlreadyExists {
        /// Human-readable description of the duplicate.
        what: String,
    },
    /// Object not found (`ENOENT`).
    NotFound {
        /// Human-readable description of the missing object.
        what: String,
    },
    /// Operation not permitted (`EPERM`).
    NotPermitted {
        /// Why the operation was denied.
        reason: String,
    },
    /// Kernel memory exhausted (`ENOMEM`).
    OutOfMemory {
        /// Bytes the allocation asked for.
        requested: u64,
    },
    /// Module cannot be unloaded while in use (`EBUSY`).
    Busy {
        /// What is holding the reference.
        holder: String,
    },
    /// A cgroup limit was exceeded.
    CgroupLimit {
        /// The limit that was hit.
        what: String,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NoSuchDevice { device } => write!(f, "ENODEV: no such device {device}"),
            KernelError::NotImplemented { what } => write!(f, "ENOSYS: {what} not implemented"),
            KernelError::NoSuchProcess { pid } => write!(f, "ESRCH: no process {pid}"),
            KernelError::NoSuchNamespace { ns } => write!(f, "EINVAL: no namespace {ns}"),
            KernelError::AlreadyExists { what } => write!(f, "EEXIST: {what} already exists"),
            KernelError::NotFound { what } => write!(f, "ENOENT: {what} not found"),
            KernelError::NotPermitted { reason } => write!(f, "EPERM: {reason}"),
            KernelError::OutOfMemory { requested } => {
                write!(f, "ENOMEM: allocation of {requested} bytes failed")
            }
            KernelError::Busy { holder } => write!(f, "EBUSY: held by {holder}"),
            KernelError::CgroupLimit { what } => write!(f, "cgroup limit exceeded: {what}"),
        }
    }
}

impl std::error::Error for KernelError {}

/// Result alias for kernel operations.
pub type KernelResult<T> = Result<T, KernelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_errno_flavoured() {
        assert_eq!(
            KernelError::NoSuchDevice {
                device: "/dev/binder"
            }
            .to_string(),
            "ENODEV: no such device /dev/binder"
        );
        assert!(KernelError::NoSuchProcess { pid: 9 }
            .to_string()
            .contains("ESRCH"));
        assert!(KernelError::Busy {
            holder: "container-1".into()
        }
        .to_string()
        .contains("EBUSY"));
    }
}
