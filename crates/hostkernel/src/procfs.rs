//! `/proc`-style introspection of the simulated kernel — the view an
//! operator gets when they SSH into a Rattrap server: `lsmod`, `ps`
//! (with namespace columns), and a memory summary.

use crate::kernel::Kernel;
use crate::module::ANDROID_CONTAINER_DRIVER;
use crate::process::ProcessState;
use std::fmt::Write as _;

/// Render `lsmod`: resident modules with size and use count.
pub fn lsmod(kernel: &Kernel) -> String {
    let mut out = String::from("Module                  Size  Used by\n");
    for spec in ANDROID_CONTAINER_DRIVER {
        if kernel.module_loaded(spec.name) {
            let name = spec.name.trim_end_matches(".ko");
            let _ = writeln!(out, "{name:<20} {:>7}  -", spec.kernel_memory_bytes);
        }
    }
    out
}

/// Render `ps`-like output across all namespaces: host pid, namespace,
/// namespace-local pid, state, command.
pub fn ps(kernel: &Kernel) -> String {
    let mut out = String::from("  PID    NS NSPID STATE    COMMAND\n");
    let mut rows: Vec<_> = Vec::new();
    // Collect over all namespaces we can see through the process table.
    for ns in 0..u32::MAX {
        let procs = kernel.processes.in_namespace(ns);
        if procs.is_empty() {
            if ns > 64 {
                break; // namespaces are allocated densely from 0
            }
            continue;
        }
        for p in procs {
            rows.push((p.pid, p.namespace, p.ns_pid, p.state, p.name.clone()));
        }
    }
    rows.sort_unstable_by_key(|r| r.0);
    for (pid, ns, ns_pid, state, name) in rows {
        let st = match state {
            ProcessState::Running => "R",
            ProcessState::Sleeping => "S",
            ProcessState::Zombie => "Z",
        };
        let _ = writeln!(out, "{pid:>5} {ns:>5} {ns_pid:>5} {st:<8} {name}");
    }
    out
}

/// Render a `/proc/meminfo`-flavoured summary of kernel memory.
pub fn meminfo(kernel: &Kernel) -> String {
    let host = kernel.host();
    format!(
        "MemTotal:    {:>12} kB\nKernelMods:  {:>12} kB\nNamespaces:  {:>12}\nProcesses:   {:>12}\n",
        host.memory_bytes / 1024,
        kernel.kernel_memory() / 1024,
        kernel.namespace_count(),
        kernel.processes.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::HostSpec;

    fn kernel_with_container() -> Kernel {
        let mut k = Kernel::new(HostSpec::paper_server());
        k.load_android_container_driver();
        let ns = k.create_namespace();
        let init = k.processes.spawn(ns, "/init", 0);
        k.processes.fork(init, "zygote").unwrap();
        k
    }

    #[test]
    fn lsmod_lists_loaded_modules_only() {
        let mut k = Kernel::new(HostSpec::paper_server());
        assert!(!lsmod(&k).contains("android_binder"));
        k.load_android_container_driver();
        let out = lsmod(&k);
        assert!(out.contains("android_binder"));
        assert!(out.contains("ashmem"));
        k.unload_module("ashmem.ko").unwrap();
        assert!(
            !lsmod(&k).contains("ashmem "),
            "unloaded module disappears:\n{}",
            lsmod(&k)
        );
    }

    #[test]
    fn ps_shows_namespace_columns() {
        let k = kernel_with_container();
        let out = ps(&k);
        assert!(out.contains("/init"));
        assert!(out.contains("zygote"));
        // Namespace-local pid 1 for init, 2 for zygote.
        let init_line = out.lines().find(|l| l.contains("/init")).unwrap();
        assert!(init_line.split_whitespace().nth(2) == Some("1"));
    }

    #[test]
    fn ps_marks_zombies() {
        let mut k = kernel_with_container();
        let pid = k.processes.spawn(1, "dying", 0);
        k.processes.exit(pid).unwrap();
        let out = ps(&k);
        let line = out.lines().find(|l| l.contains("dying")).unwrap();
        assert!(line.contains(" Z "), "{line}");
    }

    #[test]
    fn meminfo_reports_module_memory() {
        let k = kernel_with_container();
        let out = meminfo(&k);
        assert!(out.contains("MemTotal:"));
        assert!(out.contains(&format!("{}", k.kernel_memory() / 1024)));
        assert!(out.contains("Processes:"));
    }
}
