//! Pseudo-device nodes and per-namespace driver state.
//!
//! Android's kernel additions are *pseudo* drivers — no physical device
//! behind them — which is what makes the Android Container Driver
//! portable across hardware (§IV-B1). Each [`DeviceKind`] appears as a
//! `/dev` node inside a container once its module is loaded, and the
//! device-namespace framework (from Cells, adapted to the cloud in
//! Rattrap) gives every container an isolated instance of the driver
//! state while sharing the single loaded module.

/// The Android pseudo devices Rattrap multiplexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceKind {
    /// `/dev/binder` — Android's IPC transport.
    Binder,
    /// `/dev/alarm` — RTC-based alarms for timer messages.
    Alarm,
    /// `/dev/log/*` — lightweight RAM log buffers.
    Logger,
    /// `/dev/ashmem` — anonymous shared memory.
    Ashmem,
    /// `/dev/sw_sync` — software sync timelines (graphics fences).
    SwSync,
}

impl DeviceKind {
    /// The `/dev` path of the node.
    pub const fn dev_path(self) -> &'static str {
        match self {
            DeviceKind::Binder => "/dev/binder",
            DeviceKind::Alarm => "/dev/alarm",
            DeviceKind::Logger => "/dev/log/main",
            DeviceKind::Ashmem => "/dev/ashmem",
            DeviceKind::SwSync => "/dev/sw_sync",
        }
    }

    /// All device kinds, in deterministic order.
    pub const ALL: [DeviceKind; 5] = [
        DeviceKind::Binder,
        DeviceKind::Alarm,
        DeviceKind::Logger,
        DeviceKind::Ashmem,
        DeviceKind::SwSync,
    ];
}

/// An open handle to a device inside one namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceHandle {
    /// Which device this handle refers to.
    pub kind: DeviceKind,
    /// The namespace whose driver instance backs the handle.
    pub namespace: u32,
    /// File-descriptor-like identifier, unique per (namespace, kind).
    pub fd: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dev_paths_are_distinct() {
        let mut paths: Vec<&str> = DeviceKind::ALL.iter().map(|k| k.dev_path()).collect();
        paths.sort_unstable();
        paths.dedup();
        assert_eq!(paths.len(), DeviceKind::ALL.len());
    }

    #[test]
    fn binder_path_matches_android() {
        assert_eq!(DeviceKind::Binder.dev_path(), "/dev/binder");
    }
}
