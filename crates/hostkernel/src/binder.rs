//! Binder IPC driver state (one instance per device namespace).
//!
//! Binder is the pseudo driver the paper singles out (Fig. 5): Android
//! frameworks cannot run without it, and it has no hardware dependency,
//! so shipping it as a loadable module is what lets a stock Linux host
//! run Android userspace inside containers. This model implements the
//! part of the protocol that matters for offloading: a service registry
//! (the ServiceManager's context-manager role) and synchronous
//! transactions with payload accounting, isolated per namespace.

use crate::error::{KernelError, KernelResult};
use std::collections::BTreeMap;

/// Handle to a registered binder service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BinderHandle(pub u32);

/// Aggregate transaction statistics for one binder context.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BinderStats {
    /// Completed transactions.
    pub transactions: u64,
    /// Total payload bytes moved through `transact`.
    pub bytes_transferred: u64,
    /// Transactions that failed (dead handle / no such service).
    pub failed: u64,
}

/// One namespace's binder context.
#[derive(Debug, Default)]
pub struct BinderContext {
    /// Service name → (handle, owning pid).
    services: BTreeMap<String, (BinderHandle, u32)>,
    next_handle: u32,
    stats: BinderStats,
    /// Queued one-way (async) transactions per target pid.
    oneway_queues: BTreeMap<u32, Vec<OnewayTransaction>>,
    /// Death links: service name → watcher pids.
    death_links: BTreeMap<String, Vec<u32>>,
}

/// A queued asynchronous (one-way) transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnewayTransaction {
    /// Target service.
    pub service: String,
    /// Sender pid.
    pub from: u32,
    /// Payload size.
    pub payload_bytes: u64,
}

/// A delivered binder death notification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeathNotification {
    /// The service that died.
    pub service: String,
    /// The watcher to notify.
    pub watcher: u32,
}

impl BinderContext {
    /// Fresh, empty context (created when a namespace first opens
    /// `/dev/binder`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `service` as owned by `pid`. Mirrors
    /// `svcmgr_publish`: duplicate names are rejected.
    pub fn register_service(&mut self, service: &str, pid: u32) -> KernelResult<BinderHandle> {
        if self.services.contains_key(service) {
            return Err(KernelError::AlreadyExists {
                what: format!("binder service {service}"),
            });
        }
        let handle = BinderHandle(self.next_handle);
        self.next_handle += 1;
        self.services.insert(service.to_string(), (handle, pid));
        Ok(handle)
    }

    /// Look up a service by name (ServiceManager `getService`).
    pub fn lookup(&self, service: &str) -> Option<BinderHandle> {
        self.services.get(service).map(|&(h, _)| h)
    }

    /// Owning pid of a service.
    pub fn owner_of(&self, service: &str) -> Option<u32> {
        self.services.get(service).map(|&(_, pid)| pid)
    }

    /// Perform a synchronous transaction of `payload_bytes` to `service`.
    /// Returns the pid that serviced the call.
    pub fn transact(&mut self, service: &str, payload_bytes: u64) -> KernelResult<u32> {
        match self.services.get(service) {
            Some(&(_, pid)) => {
                self.stats.transactions += 1;
                self.stats.bytes_transferred += payload_bytes;
                Ok(pid)
            }
            None => {
                self.stats.failed += 1;
                Err(KernelError::NotFound {
                    what: format!("binder service {service}"),
                })
            }
        }
    }

    /// Queue a one-way (asynchronous) transaction: the caller does not
    /// block; the target drains its queue when it next runs.
    pub fn transact_oneway(
        &mut self,
        from: u32,
        service: &str,
        payload_bytes: u64,
    ) -> KernelResult<()> {
        match self.services.get(service) {
            Some(&(_, pid)) => {
                self.stats.transactions += 1;
                self.stats.bytes_transferred += payload_bytes;
                self.oneway_queues
                    .entry(pid)
                    .or_default()
                    .push(OnewayTransaction {
                        service: service.to_string(),
                        from,
                        payload_bytes,
                    });
                Ok(())
            }
            None => {
                self.stats.failed += 1;
                Err(KernelError::NotFound {
                    what: format!("binder service {service}"),
                })
            }
        }
    }

    /// Drain the one-way queue of `pid` (the target process's next
    /// binder loop iteration).
    pub fn drain_oneway(&mut self, pid: u32) -> Vec<OnewayTransaction> {
        self.oneway_queues.remove(&pid).unwrap_or_default()
    }

    /// Pending one-way transactions for `pid`.
    pub fn oneway_pending(&self, pid: u32) -> usize {
        self.oneway_queues.get(&pid).map(Vec::len).unwrap_or(0)
    }

    /// Subscribe `watcher` to the death of `service`
    /// (`linkToDeath`). Fails if the service does not exist.
    pub fn link_to_death(&mut self, watcher: u32, service: &str) -> KernelResult<()> {
        if !self.services.contains_key(service) {
            return Err(KernelError::NotFound {
                what: format!("binder service {service}"),
            });
        }
        let watchers = self.death_links.entry(service.to_string()).or_default();
        if !watchers.contains(&watcher) {
            watchers.push(watcher);
        }
        Ok(())
    }

    /// Remove every service owned by `pid` and return the death
    /// notifications owed to its watchers (binderDied callbacks).
    pub fn reap_process(&mut self, pid: u32) -> Vec<DeathNotification> {
        let dead: Vec<String> = self
            .services
            .iter()
            .filter(|(_, &(_, owner))| owner == pid)
            .map(|(name, _)| name.clone())
            .collect();
        let mut notifications = Vec::new();
        for service in dead {
            self.services.remove(&service);
            if let Some(watchers) = self.death_links.remove(&service) {
                for watcher in watchers {
                    if watcher != pid {
                        notifications.push(DeathNotification {
                            service: service.clone(),
                            watcher,
                        });
                    }
                }
            }
        }
        // Drop the reaped process's own queues and subscriptions.
        self.oneway_queues.remove(&pid);
        for watchers in self.death_links.values_mut() {
            watchers.retain(|&w| w != pid);
        }
        notifications
    }

    /// Registered service names, in sorted order.
    pub fn service_names(&self) -> Vec<&str> {
        self.services.keys().map(String::as_str).collect()
    }

    /// Transaction statistics.
    pub fn stats(&self) -> BinderStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_lookup_transact() {
        let mut ctx = BinderContext::new();
        let h = ctx.register_service("activity", 100).unwrap();
        assert_eq!(ctx.lookup("activity"), Some(h));
        assert_eq!(ctx.owner_of("activity"), Some(100));
        let served_by = ctx.transact("activity", 256).unwrap();
        assert_eq!(served_by, 100);
        assert_eq!(ctx.stats().transactions, 1);
        assert_eq!(ctx.stats().bytes_transferred, 256);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut ctx = BinderContext::new();
        ctx.register_service("package", 1).unwrap();
        let err = ctx.register_service("package", 2).unwrap_err();
        assert!(matches!(err, KernelError::AlreadyExists { .. }));
    }

    #[test]
    fn transact_to_missing_service_fails_and_counts() {
        let mut ctx = BinderContext::new();
        assert!(ctx.transact("window", 10).is_err());
        assert_eq!(ctx.stats().failed, 1);
        assert_eq!(ctx.stats().transactions, 0);
    }

    #[test]
    fn reap_removes_only_owners_services() {
        let mut ctx = BinderContext::new();
        ctx.register_service("a", 1).unwrap();
        ctx.register_service("b", 1).unwrap();
        ctx.register_service("c", 2).unwrap();
        assert!(
            ctx.reap_process(1).is_empty(),
            "no watchers, no notifications"
        );
        assert_eq!(ctx.service_names(), vec!["c"]);
        // Transacting to a dead service now fails.
        assert!(ctx.transact("a", 1).is_err());
    }

    #[test]
    fn oneway_transactions_queue_and_drain() {
        let mut ctx = BinderContext::new();
        ctx.register_service("media", 7).unwrap();
        ctx.transact_oneway(3, "media", 100).unwrap();
        ctx.transact_oneway(4, "media", 50).unwrap();
        assert_eq!(ctx.oneway_pending(7), 2);
        let drained = ctx.drain_oneway(7);
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].from, 3);
        assert_eq!(drained[1].payload_bytes, 50);
        assert_eq!(ctx.oneway_pending(7), 0);
        assert!(ctx.drain_oneway(7).is_empty(), "drain is destructive");
        assert!(ctx.transact_oneway(3, "ghost", 1).is_err());
        assert_eq!(ctx.stats().bytes_transferred, 150);
    }

    #[test]
    fn death_notifications_delivered_to_watchers() {
        let mut ctx = BinderContext::new();
        ctx.register_service("activity", 10).unwrap();
        ctx.register_service("package", 10).unwrap();
        ctx.link_to_death(20, "activity").unwrap();
        ctx.link_to_death(21, "activity").unwrap();
        ctx.link_to_death(20, "activity").unwrap(); // dedup
        ctx.link_to_death(20, "package").unwrap();
        assert!(ctx.link_to_death(20, "ghost").is_err());
        let mut notes = ctx.reap_process(10);
        notes.sort_by_key(|n| (n.service.clone(), n.watcher));
        assert_eq!(notes.len(), 3);
        assert_eq!(
            notes[0],
            DeathNotification {
                service: "activity".into(),
                watcher: 20
            }
        );
        assert_eq!(
            notes[1],
            DeathNotification {
                service: "activity".into(),
                watcher: 21
            }
        );
        assert_eq!(
            notes[2],
            DeathNotification {
                service: "package".into(),
                watcher: 20
            }
        );
    }

    #[test]
    fn reaped_watcher_gets_no_notifications() {
        let mut ctx = BinderContext::new();
        ctx.register_service("svc", 1).unwrap();
        ctx.link_to_death(2, "svc").unwrap();
        // Watcher 2 dies first: its subscription disappears…
        assert!(ctx.reap_process(2).is_empty());
        // …so the service's death notifies nobody.
        assert!(ctx.reap_process(1).is_empty());
    }

    #[test]
    fn handles_are_unique() {
        let mut ctx = BinderContext::new();
        let h1 = ctx.register_service("s1", 1).unwrap();
        let h2 = ctx.register_service("s2", 1).unwrap();
        assert_ne!(h1, h2);
    }
}
