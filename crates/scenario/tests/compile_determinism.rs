//! Compilation contract: deterministic, sorted, tenant-partitioned.

use proptest::prelude::*;
use scenario::{PhaseAction, PhaseSpec, ScenarioDriver, ScenarioFamily, ScenarioSpec, TenantSpec};
use simkit::faults::TransferOutcome;
use simkit::{SimDuration, SimTime};

const SEED: u64 = 0x2017_0529;

#[test]
fn same_inputs_compile_to_the_same_script() {
    for spec in [
        ScenarioSpec::flash_crowd(64, 20, SimTime::from_secs(60), SimDuration::from_secs(30)),
        ScenarioSpec::correlated_failure(40, SimTime::from_secs(120), SimDuration::from_secs(45)),
        ScenarioSpec::noisy_neighbor(1, 3),
        ScenarioSpec::interaction_storm(
            200,
            SimTime::from_secs(10),
            SimDuration::from_secs(90),
            60,
        ),
    ] {
        let a = spec.compile(64, SEED);
        let b = spec.compile(64, SEED);
        assert_eq!(a, b, "{} must compile deterministically", spec.name);
        let c = spec.compile(64, SEED ^ 1);
        if !a.arrivals.is_empty() {
            assert_ne!(a.arrivals, c.arrivals, "{}: seed must matter", spec.name);
        }
    }
}

#[test]
fn flash_crowd_ramps_the_population() {
    let base = 50;
    let spec = ScenarioSpec::flash_crowd(
        base,
        10,
        SimTime::from_secs(100),
        SimDuration::from_secs(20),
    );
    let c = spec.compile(base, SEED);
    assert_eq!(
        c.total_users,
        base + base * 9,
        "10x = base + 9x burst cohort"
    );
    assert!(!c.arrivals.is_empty());
    for a in &c.arrivals {
        assert!(
            a.user >= base,
            "burst arrivals come from the synthetic cohort"
        );
        assert!(a.offload, "flash-crowd events all offload");
        assert!(
            a.at >= SimTime::from_secs(100) && a.at < SimTime::from_secs(120),
            "arrival {:?} outside the phase",
            a.at
        );
    }
    let sorted = {
        let mut s = c.arrivals.clone();
        s.sort_by_key(|a| (a.at, a.user));
        s
    };
    assert_eq!(c.arrivals, sorted, "script is sorted by (at, user)");
}

#[test]
fn correlated_failure_cuts_then_degrades_the_cohort() {
    let spec =
        ScenarioSpec::correlated_failure(50, SimTime::from_secs(100), SimDuration::from_secs(40));
    let c = spec.compile(80, SEED);
    assert_eq!(c.windows.len(), 2, "outage + degraded tail");
    let outage = &c.windows[0];
    assert_eq!((outage.lo, outage.hi), (0, 40), "half the base cohort");
    assert_eq!(outage.window.rate_factor, 0.0);
    assert_eq!(outage.window.start, SimTime::from_secs(100));
    assert_eq!(outage.window.end, SimTime::from_secs(140));
    let tail = &c.windows[1];
    assert_eq!(tail.window.start, SimTime::from_secs(140));
    assert!(tail.window.rate_factor > 0.0 && tail.window.rate_factor < 1.0);

    // Driver pricing: a cohort upload starting mid-outage is cut and
    // released exactly at the window edge; outsiders are untouched.
    let d = ScenarioDriver::compile(&spec, 80, SEED);
    let start = SimTime::from_secs(110);
    match d.price_transfer(3, start, SimDuration::from_secs(5)) {
        TransferOutcome::Interrupted { .. } => {}
        other => panic!("cohort upload mid-outage must be cut, got {other:?}"),
    }
    assert_eq!(d.release_time(3, start), SimTime::from_secs(140));
    match d.price_transfer(77, start, SimDuration::from_secs(5)) {
        TransferOutcome::Completes { at } => assert_eq!(at, SimTime::from_secs(115)),
        other => panic!("outsider must be fault-free, got {other:?}"),
    }
}

#[test]
fn noisy_neighbor_partitions_every_user_and_overrides_base_kinds() {
    let spec = ScenarioSpec::noisy_neighbor(1, 3);
    let c = spec.compile(100, SEED);
    assert_eq!(c.tenant_names, vec!["batch", "interactive"]);
    assert_eq!(c.tenant_of.len(), 100);
    let batch = c.tenant_of.iter().filter(|&&t| t == 0).count();
    assert_eq!(batch, 25, "1:3 share stripes exactly");
    let kinds = c
        .base_kinds
        .as_ref()
        .expect("explicit tenants bind base users");
    assert_eq!(kinds.len(), 100);
    for (u, k) in kinds.iter().enumerate() {
        let heavy = matches!(
            k,
            workloads::WorkloadKind::VirusScan | workloads::WorkloadKind::Linpack
        );
        assert_eq!(
            heavy,
            c.tenant_of[u] == 0,
            "user {u} app {k:?} must match its tenant mix"
        );
    }
}

#[test]
fn interaction_storm_suppresses_the_declared_share() {
    let spec = ScenarioSpec::interaction_storm(300, SimTime::ZERO, SimDuration::from_secs(120), 40);
    let d = ScenarioDriver::compile(&spec, 10, SEED);
    let injected = d.injected();
    let offloads = d.planned_offloads();
    assert!(
        injected > 0 && offloads < injected,
        "some events stay on-device"
    );
    let ratio = offloads as f64 / injected as f64;
    assert!(
        (ratio - 0.40).abs() < 0.05,
        "offload share {ratio:.3} far from the scripted 40%"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any spec compiles to a sorted script whose users are
    /// tenant-partitioned, with every arrival inside its phase span.
    #[test]
    fn arbitrary_specs_compile_clean(
        seed in 0u64..u64::MAX,
        base in 1u32..64,
        burst in 0u32..40,
        containers in 0u32..40,
        cohort_pct in 1u8..=100,
        offload_pct in 0u8..=100,
    ) {
        let spec = ScenarioSpec {
            name: "prop".to_string(),
            family: ScenarioFamily::InteractionStorm,
            tenants: vec![TenantSpec::heavy("b", 1), TenantSpec::latency_sensitive("i", 2)],
            phases: vec![
                PhaseSpec {
                    start: SimTime::from_secs(5),
                    duration: SimDuration::from_secs(30),
                    action: PhaseAction::ArrivalBurst { users: burst, mean_iat_ms: 2_000 },
                },
                PhaseSpec {
                    start: SimTime::from_secs(10),
                    duration: SimDuration::from_secs(20),
                    action: PhaseAction::RadioOutage { cohort_pct, rate_pct: 0 },
                },
                PhaseSpec {
                    start: SimTime::from_secs(40),
                    duration: SimDuration::from_secs(25),
                    action: PhaseAction::ScriptReplay { containers, gap_ms: 900, offload_pct },
                },
            ],
        };
        let c = spec.compile(base, seed);
        prop_assert_eq!(c.total_users, base + burst + containers);
        prop_assert_eq!(c.tenant_of.len(), c.total_users as usize);
        let mut last = (SimTime::ZERO, 0u32);
        for a in &c.arrivals {
            prop_assert!((a.at, a.user) >= last, "script must be sorted");
            last = (a.at, a.user);
            prop_assert!(a.user < c.total_users);
        }
        prop_assert_eq!(c.windows.len(), 1);
        prop_assert!(c.windows[0].hi >= 1);
        // Re-compilation is bit-identical.
        prop_assert_eq!(&c, &spec.compile(base, seed));
    }
}
