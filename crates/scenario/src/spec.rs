//! Declarative scenario specifications: seeded phases over sim-time.

use simkit::{SimDuration, SimTime};

/// The four shipped scenario families. A spec's family is descriptive
/// (reports and benches group by it); composition is free — any spec
/// may mix phase kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioFamily {
    /// Poisson-burst arrival multiplier (10–50× a region's users).
    FlashCrowd,
    /// Regional radio outage + thundering-herd re-offload at restore.
    CorrelatedFailure,
    /// Multi-tenant heavy/latency-sensitive workload mixes.
    NoisyNeighbor,
    /// Scripted Android-container interaction replay.
    InteractionStorm,
}

impl ScenarioFamily {
    /// All families, presentation order.
    pub const ALL: [ScenarioFamily; 4] = [
        ScenarioFamily::FlashCrowd,
        ScenarioFamily::CorrelatedFailure,
        ScenarioFamily::NoisyNeighbor,
        ScenarioFamily::InteractionStorm,
    ];

    /// Display label (also the bench/report grouping key).
    pub const fn label(self) -> &'static str {
        match self {
            ScenarioFamily::FlashCrowd => "flash_crowd",
            ScenarioFamily::CorrelatedFailure => "correlated_failure",
            ScenarioFamily::NoisyNeighbor => "noisy_neighbor",
            ScenarioFamily::InteractionStorm => "interaction_storm",
        }
    }
}

/// One tenant of the platform: a share of the device population and
/// an app mix. Tenancy partitions *users* (a device belongs to exactly
/// one tenant), so per-tenant request accounting must sum to the total
/// — the `tenant-isolation-accounting` invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Display name.
    pub name: String,
    /// Relative share of the device population (weights, not counts).
    pub share: u32,
    /// App-mix weights over [`workloads::WorkloadKind::ALL`] order
    /// (Ocr, ChessGame, VirusScan, Linpack). All-zero is invalid.
    pub mix: [u32; 4],
}

impl TenantSpec {
    /// A tenant running only the heavy batch apps (VirusScan, Linpack).
    pub fn heavy(name: &str, share: u32) -> Self {
        TenantSpec {
            name: name.to_string(),
            share,
            mix: [0, 0, 1, 1],
        }
    }

    /// A tenant running only the latency-sensitive interactive apps
    /// (OCR, ChessGame).
    pub fn latency_sensitive(name: &str, share: u32) -> Self {
        TenantSpec {
            name: name.to_string(),
            share,
            mix: [1, 1, 0, 0],
        }
    }
}

/// What one phase does to the traffic while it is open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseAction {
    /// A burst cohort of `users` *extra* devices joins for the phase,
    /// each issuing Poisson arrivals with mean inter-arrival time
    /// `mean_iat_ms` milliseconds.
    ArrivalBurst {
        /// Burst cohort size (devices beyond the base population).
        users: u32,
        /// Mean exponential inter-arrival time per burst device, ms.
        mean_iat_ms: u32,
    },
    /// The radio of `cohort_pct`% of the *base* users (the cohort is
    /// the population prefix) runs at `rate_pct`% of nominal for the
    /// phase. `rate_pct == 0` is a hard outage: uploads cut mid-flight
    /// defer and re-offload together when the window closes.
    RadioOutage {
        /// Percent of base users affected (1–100).
        cohort_pct: u8,
        /// Link-rate percent during the window (0 = outage).
        rate_pct: u8,
    },
    /// `containers` emulated Android containers each replay a scripted
    /// event stream for the phase: events separated by `gap_ms` (±20%
    /// seeded jitter), of which `offload_pct`% offload to the platform
    /// and the rest are device-local interactions (counted suppressed).
    ScriptReplay {
        /// Emulated containers joining for the phase.
        containers: u32,
        /// Nominal gap between scripted events, ms.
        gap_ms: u32,
        /// Percent of scripted events that offload (0–100).
        offload_pct: u8,
    },
}

/// One seeded phase over sim-time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpec {
    /// Phase opens (inclusive).
    pub start: SimTime,
    /// Phase length.
    pub duration: SimDuration,
    /// What happens while it is open.
    pub action: PhaseAction,
}

impl PhaseSpec {
    /// Phase close instant (exclusive).
    pub fn end(&self) -> SimTime {
        self.start.saturating_add(self.duration)
    }
}

/// A declarative scenario: tenants + phases. Compile with
/// [`ScenarioSpec::compile`] against a base population and a seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Display name.
    pub name: String,
    /// Family tag (grouping only; phases are free-form).
    pub family: ScenarioFamily,
    /// Tenancy partition of the device population. Empty means one
    /// implicit tenant ("default") owning everyone, mixing all apps.
    pub tenants: Vec<TenantSpec>,
    /// The phases, any order (compilation sorts its outputs).
    pub phases: Vec<PhaseSpec>,
}

impl ScenarioSpec {
    /// Family 1 — flash crowd: a burst cohort of
    /// `base_users × (multiplier − 1)` devices joins at `start`,
    /// ramping the population to `multiplier`× for `ramp`. Each burst
    /// device offloads every ~8 s (Poisson), the LiveLab base rate's
    /// busy-hour pace.
    pub fn flash_crowd(
        base_users: u32,
        multiplier: u32,
        start: SimTime,
        ramp: SimDuration,
    ) -> Self {
        let extra = base_users
            .saturating_mul(multiplier.saturating_sub(1))
            .max(1);
        ScenarioSpec {
            name: format!("flash-crowd-{multiplier}x"),
            family: ScenarioFamily::FlashCrowd,
            tenants: Vec::new(),
            phases: vec![PhaseSpec {
                start,
                duration: ramp,
                action: PhaseAction::ArrivalBurst {
                    users: extra,
                    mean_iat_ms: 8_000,
                },
            }],
        }
    }

    /// Family 2 — correlated failure: `cohort_pct`% of base users lose
    /// their radio for `outage`, then a degraded tail at 25% rate for
    /// `outage / 2`. Compose with a host-crash
    /// [`simkit::faults::FaultConfig`] on the engine side for the full
    /// correlated-failure storm.
    pub fn correlated_failure(cohort_pct: u8, start: SimTime, outage: SimDuration) -> Self {
        let cohort_pct = cohort_pct.clamp(1, 100);
        let tail_start = start.saturating_add(outage);
        ScenarioSpec {
            name: format!("radio-outage-{cohort_pct}pct"),
            family: ScenarioFamily::CorrelatedFailure,
            tenants: Vec::new(),
            phases: vec![
                PhaseSpec {
                    start,
                    duration: outage,
                    action: PhaseAction::RadioOutage {
                        cohort_pct,
                        rate_pct: 0,
                    },
                },
                PhaseSpec {
                    start: tail_start,
                    duration: SimDuration::from_micros(outage.as_micros() / 2),
                    action: PhaseAction::RadioOutage {
                        cohort_pct,
                        rate_pct: 25,
                    },
                },
            ],
        }
    }

    /// Family 3 — noisy neighbor: a heavy batch tenant (VirusScan +
    /// Linpack, `heavy_share` of the population) shares the hosts with
    /// a latency-sensitive tenant (OCR + ChessGame). No extra arrivals;
    /// the scenario re-partitions the base population and splits the
    /// metrics per tenant.
    pub fn noisy_neighbor(heavy_share: u32, light_share: u32) -> Self {
        ScenarioSpec {
            name: "noisy-neighbor".to_string(),
            family: ScenarioFamily::NoisyNeighbor,
            tenants: vec![
                TenantSpec::heavy("batch", heavy_share.max(1)),
                TenantSpec::latency_sensitive("interactive", light_share.max(1)),
            ],
            phases: Vec::new(),
        }
    }

    /// Family 4 — interaction storm: `containers` emulated Android
    /// containers replay scripted interaction streams for `duration`
    /// (an event every ~1.5 s, `offload_pct`% of which offload).
    pub fn interaction_storm(
        containers: u32,
        start: SimTime,
        duration: SimDuration,
        offload_pct: u8,
    ) -> Self {
        ScenarioSpec {
            name: format!("interaction-storm-{containers}c"),
            family: ScenarioFamily::InteractionStorm,
            tenants: Vec::new(),
            phases: vec![PhaseSpec {
                start,
                duration,
                action: PhaseAction::ScriptReplay {
                    containers: containers.max(1),
                    gap_ms: 1_500,
                    offload_pct: offload_pct.min(100),
                },
            }],
        }
    }
}
