//! Compile a [`ScenarioSpec`] into concrete injection material.

use crate::spec::{PhaseAction, ScenarioSpec, TenantSpec};
use simkit::faults::LinkWindow;
use simkit::{derive_seed, SimDuration, SimRng, SimTime};
use workloads::WorkloadKind;

/// Derived-stream tags off the scenario root seed.
const STREAM_BASE_KINDS: u64 = 1;
/// Phase `p` draws from `derive_seed(root, STREAM_PHASE_BASE + p)`.
const STREAM_PHASE_BASE: u64 = 100;

/// One scripted event: device `user` acts at `at`. `offload == false`
/// is a device-local interaction (a scripted touch that never reaches
/// the platform) — injected but *suppressed* in the conservation
/// accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedArrival {
    /// When.
    pub at: SimTime,
    /// Absolute device index (`>= base_users` for burst/storm cohorts).
    pub user: u32,
    /// The app the event exercises.
    pub kind: WorkloadKind,
    /// Whether the event offloads (false → suppressed, device-local).
    pub offload: bool,
}

/// A radio window over a contiguous user cohort `[lo, hi)`, in the
/// fault plane's [`LinkWindow`] algebra so scenario outages compose
/// with FaultPlan pricing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioWindow {
    /// First affected user (inclusive).
    pub lo: u32,
    /// Past-the-end user bound (exclusive).
    pub hi: u32,
    /// The window itself (`rate_factor == 0.0` is a hard outage).
    pub window: LinkWindow,
}

/// The compiled form: a pure function of `(spec, base_users, seed)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledScenario {
    /// The engine's own population (users `0..base_users`).
    pub base_users: u32,
    /// Base plus every synthetic burst/storm cohort.
    pub total_users: u32,
    /// The arrival script, sorted by `(at, user)`.
    pub arrivals: Vec<InjectedArrival>,
    /// Cohort radio windows, sorted by window start.
    pub windows: Vec<RadioWindow>,
    /// `user → tenant` for every user in `0..total_users`.
    pub tenant_of: Vec<u32>,
    /// Tenant display names, index order.
    pub tenant_names: Vec<String>,
    /// When the spec declares explicit tenants, the per-base-user app
    /// replacing the engine's Zipf draw (tenant mixes must bind the
    /// base population too). `None` when tenancy is implicit.
    pub base_kinds: Option<Vec<WorkloadKind>>,
}

fn sample_kind(rng: &mut SimRng, mix: &[f64; 4]) -> WorkloadKind {
    WorkloadKind::ALL[rng.weighted_index(mix)]
}

fn mix_weights(t: &TenantSpec) -> [f64; 4] {
    let w = [
        t.mix[0] as f64,
        t.mix[1] as f64,
        t.mix[2] as f64,
        t.mix[3] as f64,
    ];
    assert!(
        w.iter().sum::<f64>() > 0.0,
        "tenant {} has an all-zero mix",
        t.name
    );
    w
}

impl ScenarioSpec {
    /// Compile against a base population of `base_users` devices.
    /// Deterministic in `(self, base_users, seed)`; every draw comes
    /// from a per-phase, per-user derived stream, so no phase or user
    /// can perturb another's script.
    pub fn compile(&self, base_users: u32, seed: u64) -> CompiledScenario {
        let tenants: Vec<TenantSpec> = if self.tenants.is_empty() {
            vec![TenantSpec {
                name: "default".to_string(),
                share: 1,
                mix: [1, 1, 1, 1],
            }]
        } else {
            self.tenants.clone()
        };
        let mixes: Vec<[f64; 4]> = tenants.iter().map(mix_weights).collect();
        let total_share: u32 = tenants.iter().map(|t| t.share.max(1)).sum();

        let mut arrivals = Vec::new();
        let mut windows = Vec::new();
        let mut next_user = base_users;

        for (p, phase) in self.phases.iter().enumerate() {
            let phase_seed = derive_seed(seed, STREAM_PHASE_BASE + p as u64);
            let end = phase.end();
            match phase.action {
                PhaseAction::ArrivalBurst { users, mean_iat_ms } => {
                    let mean_s = (mean_iat_ms.max(1) as f64) / 1_000.0;
                    for i in 0..users {
                        let user = next_user + i;
                        let tenant = tenant_band(user, &tenants, total_share);
                        let mut rng = SimRng::new(derive_seed(phase_seed, user as u64));
                        let mut t = phase
                            .start
                            .saturating_add(SimDuration::from_secs_f64(rng.exponential(mean_s)));
                        while t < end {
                            arrivals.push(InjectedArrival {
                                at: t,
                                user,
                                kind: sample_kind(&mut rng, &mixes[tenant as usize]),
                                offload: true,
                            });
                            t = t.saturating_add(SimDuration::from_secs_f64(
                                rng.exponential(mean_s),
                            ));
                        }
                    }
                    next_user += users;
                }
                PhaseAction::RadioOutage {
                    cohort_pct,
                    rate_pct,
                } => {
                    let hi = ((base_users as u64 * cohort_pct.clamp(1, 100) as u64).div_ceil(100))
                        as u32;
                    windows.push(RadioWindow {
                        lo: 0,
                        hi,
                        window: LinkWindow {
                            start: phase.start,
                            end,
                            rate_factor: (rate_pct.min(100) as f64) / 100.0,
                        },
                    });
                }
                PhaseAction::ScriptReplay {
                    containers,
                    gap_ms,
                    offload_pct,
                } => {
                    let gap_s = (gap_ms.max(1) as f64) / 1_000.0;
                    let p_offload = (offload_pct.min(100) as f64) / 100.0;
                    for i in 0..containers {
                        let user = next_user + i;
                        let tenant = tenant_band(user, &tenants, total_share);
                        let mut rng = SimRng::new(derive_seed(phase_seed, user as u64));
                        // Stagger script starts across one gap so the
                        // storm is a sustained wave, not one spike.
                        let mut t = phase
                            .start
                            .saturating_add(SimDuration::from_secs_f64(rng.uniform(0.0, gap_s)));
                        while t < end {
                            arrivals.push(InjectedArrival {
                                at: t,
                                user,
                                kind: sample_kind(&mut rng, &mixes[tenant as usize]),
                                offload: rng.bernoulli(p_offload),
                            });
                            // Scripted pacing: fixed gap with ±20% jitter.
                            t = t.saturating_add(SimDuration::from_secs_f64(
                                gap_s * rng.uniform(0.8, 1.2),
                            ));
                        }
                    }
                    next_user += containers;
                }
            }
        }

        arrivals.sort_by_key(|a| (a.at, a.user));
        windows.sort_by_key(|w| w.window.start);

        let total_users = next_user.max(base_users);
        let tenant_of: Vec<u32> = (0..total_users)
            .map(|u| tenant_band(u, &tenants, total_share))
            .collect();
        let base_kinds = if self.tenants.is_empty() {
            None
        } else {
            let root = derive_seed(seed, STREAM_BASE_KINDS);
            Some(
                (0..base_users)
                    .map(|u| {
                        let mut rng = SimRng::new(derive_seed(root, u as u64));
                        sample_kind(&mut rng, &mixes[tenant_of[u as usize] as usize])
                    })
                    .collect(),
            )
        };

        CompiledScenario {
            base_users,
            total_users,
            arrivals,
            windows,
            tenant_of,
            tenant_names: tenants.into_iter().map(|t| t.name).collect(),
            base_kinds,
        }
    }
}

/// Tenant of user `u`: stripe the population by share bands so every
/// contiguous run of `total_share` users splits exactly per the
/// declared shares (deterministic, order-stable).
fn tenant_band(u: u32, tenants: &[TenantSpec], total_share: u32) -> u32 {
    let band = u % total_share;
    let mut acc = 0;
    for (i, t) in tenants.iter().enumerate() {
        acc += t.share.max(1);
        if band < acc {
            return i as u32;
        }
    }
    (tenants.len() - 1) as u32
}
