//! The scenario plane: declarative, seeded adversarial-traffic
//! scripts compiled into the engines (ROADMAP Open item 3).
//!
//! A [`ScenarioSpec`] is a list of [`PhaseSpec`]s over sim-time plus a
//! multi-tenant population map. Compilation is a pure function of
//! `(spec, base_users, seed)`: the [`ScenarioDriver`] materializes a
//! sorted arrival script, per-cohort radio windows (reusing the fault
//! plane's [`LinkWindow`] algebra so outage pricing composes with PR
//! 2's FaultPlan), and a user → tenant map. The engines then inject
//! the script through their ordinary event queues — injected arrivals
//! are just more `Arrive` events, so the serial ≡ sharded bit-identity
//! of the windowed LP engine holds for every scenario by construction.
//!
//! Four scenario families ship ([`ScenarioFamily`]):
//!
//! - **Flash crowd** — a Poisson burst cohort ramps a region's users
//!   10–50× over seconds ([`ScenarioSpec::flash_crowd`]).
//! - **Correlated failure** — a regional radio outage cuts a device
//!   cohort's uplink; at restore every deferred upload re-offloads at
//!   once (thundering herd), composable with a host-crash FaultPlan
//!   ([`ScenarioSpec::correlated_failure`]).
//! - **Noisy neighbor** — heavy Linpack/VirusScan tenants share hosts
//!   with latency-sensitive ChessGame/OCR tenants; per-tenant metrics
//!   split out of the request records ([`ScenarioSpec::noisy_neighbor`]).
//! - **Interaction storm** — hundreds of emulated Android containers
//!   per host replay scripted touch/offload event scripts, cyber-range
//!   style; non-offload touches are device-local and counted
//!   *suppressed* ([`ScenarioSpec::interaction_storm`]).
//!
//! Determinism contract: every draw comes from a stream derived as
//! `derive_seed(scenario_seed, phase) → derive_seed(·, user)`, so a
//! phase's script is independent of every other phase and of the
//! engine's own streams, and compilation order can never leak into
//! results.

mod compile;
mod driver;
mod spec;

pub use compile::{CompiledScenario, InjectedArrival, RadioWindow};
pub use driver::ScenarioDriver;
pub use spec::{PhaseAction, PhaseSpec, ScenarioFamily, ScenarioSpec, TenantSpec};
