//! The runtime face of a compiled scenario: what the engines query
//! while they run.

use crate::compile::{CompiledScenario, InjectedArrival};
use crate::spec::ScenarioSpec;
use simkit::faults::{link_available_at, transfer_outcome, LinkWindow, TransferOutcome};
use simkit::{SimDuration, SimTime};
use workloads::WorkloadKind;

/// Drives a compiled scenario through an engine. The driver is
/// immutable after compilation — engines read the arrival script at
/// seed time and price cohort transfers per event — so one driver can
/// serve every LP of the sharded engine without synchronization, and
/// serial ≡ sharded bit-identity holds for every scenario.
#[derive(Debug, Clone)]
pub struct ScenarioDriver {
    spec_name: String,
    compiled: CompiledScenario,
}

impl ScenarioDriver {
    /// Compile `spec` against `base_users` devices under `seed`.
    pub fn compile(spec: &ScenarioSpec, base_users: u32, seed: u64) -> Self {
        ScenarioDriver {
            spec_name: spec.name.clone(),
            compiled: spec.compile(base_users, seed),
        }
    }

    /// The spec's display name.
    pub fn name(&self) -> &str {
        &self.spec_name
    }

    /// The compiled form (tests and reports).
    pub fn compiled(&self) -> &CompiledScenario {
        &self.compiled
    }

    /// The full arrival script, sorted by `(at, user)`.
    pub fn arrivals(&self) -> &[InjectedArrival] {
        &self.compiled.arrivals
    }

    /// Total scripted events.
    pub fn injected(&self) -> u64 {
        self.compiled.arrivals.len() as u64
    }

    /// Scripted events that offload (the rest are suppressed).
    pub fn planned_offloads(&self) -> u64 {
        self.compiled.arrivals.iter().filter(|a| a.offload).count() as u64
    }

    /// Tenant index of `user`.
    pub fn tenant_of(&self, user: u32) -> u32 {
        let t = &self.compiled.tenant_of;
        // Users past the compiled range (possible when an engine maps
        // synthetic indices onto its own population) wrap onto the
        // same striping.
        t[(user as usize) % t.len()]
    }

    /// Tenant display names, index order.
    pub fn tenant_names(&self) -> &[String] {
        &self.compiled.tenant_names
    }

    /// When tenancy is explicit, the app that replaces the engine's
    /// own Zipf draw for base user `user`.
    pub fn base_kind_override(&self, user: u32) -> Option<WorkloadKind> {
        self.compiled
            .base_kinds
            .as_ref()
            .and_then(|k| k.get(user as usize).copied())
    }

    /// The radio windows covering `user` (empty for unaffected users).
    pub fn windows_for(&self, user: u32) -> Vec<LinkWindow> {
        self.compiled
            .windows
            .iter()
            .filter(|w| w.lo <= user && user < w.hi)
            .map(|w| w.window)
            .collect()
    }

    /// Price a transfer for `user` starting at `start` with fault-free
    /// duration `nominal` through the user's cohort windows.
    /// [`TransferOutcome::Interrupted`] means the radio cut mid-flight:
    /// the engine defers the attempt to [`Self::release_time`] — with
    /// the whole cohort, that is the thundering herd.
    pub fn price_transfer(
        &self,
        user: u32,
        start: SimTime,
        nominal: SimDuration,
    ) -> TransferOutcome {
        let windows = self.windows_for(user);
        if windows.is_empty() {
            return TransferOutcome::Completes {
                at: start.saturating_add(nominal),
            };
        }
        transfer_outcome(&windows, start, nominal)
    }

    /// First instant at or after `t` when `user`'s radio is up.
    pub fn release_time(&self, user: u32, t: SimTime) -> SimTime {
        link_available_at(&self.windows_for(user), t)
    }

    /// The offloading arrival script folded onto `devices` trace
    /// lanes, ready for rattrap's `ArrivalModel::Trace`: lane `d`
    /// carries every scripted offload of users congruent to `d`.
    /// Suppressed (device-local) events stay off the trace, exactly as
    /// the fleet and geo engines suppress them at injection.
    pub fn device_arrivals(&self, devices: u32) -> Vec<Vec<SimTime>> {
        let n = devices.max(1) as usize;
        let mut lanes = vec![Vec::new(); n];
        for a in &self.compiled.arrivals {
            if a.offload {
                lanes[(a.user as usize) % n].push(a.at);
            }
        }
        lanes
    }

    /// Per-device workload assignment for rattrap replays under
    /// explicit tenancy: device `d` runs its tenant's app. `None` when
    /// the spec has no tenants (the engine keeps its own draw).
    pub fn device_workloads(&self, devices: u32) -> Option<Vec<WorkloadKind>> {
        self.compiled.base_kinds.as_ref()?;
        Some(
            (0..devices.max(1))
                .map(|d| {
                    // Wrap like `tenant_of`: lanes past the compiled
                    // population reuse its striping.
                    self.base_kind_override(d % self.compiled.base_users.max(1))
                        .expect("tenancy is explicit, so every device has an override")
                })
                .collect(),
        )
    }
}
