//! Deterministic event queue on a hierarchical timing wheel.
//!
//! The queue is the heart of every discrete-event simulation in this
//! workspace. Determinism is guaranteed by breaking timestamp ties with a
//! monotonically increasing sequence number, so two runs with the same
//! seed produce identical event orders.
//!
//! # Implementation
//!
//! Instead of a comparison-ordered binary heap, events live in a
//! hierarchical timing wheel ([`LEVELS`] levels of [`SLOTS`] slots;
//! level-`l` slots are `64^l` µs wide) backed by a generation-tagged
//! slab that acts as the event arena: nodes are recycled through a free
//! list, so steady-state scheduling performs **zero heap allocation**,
//! and `schedule` / `cancel` are O(1). The wheel keys slots off the
//! XOR of the event time with an internal `cursor`, so an event's level
//! is `floor(log64(at ^ cursor))` — events land as low as their
//! distance allows and cascade toward level 0 as the cursor advances.
//!
//! Three auxiliary structures complete the picture:
//!
//! * a **due heap** holding the (few) events at or before the cursor,
//!   ordered by `(time, seq)` — this is where cascades deposit events
//!   and the only place `pop` reads from, which is what preserves the
//!   exact FIFO-on-ties contract of the old comparison-ordered queue;
//! * an **overflow heap** for events beyond the wheel horizon
//!   (`2^42` µs ≈ 51 simulated days past the cursor);
//! * a **slab free list** with per-node generation counters, so an
//!   [`EventId`] from a recycled slot can never cancel its successor.
//!
//! Cancellation marks the node dead in O(1) and leaves it linked; dead
//! nodes are reclaimed when their container surfaces them (or by a full
//! sweep once the queue has no live events), and `len` counts live
//! events exactly — cancelled-but-unpopped entries are never visible.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// log2 of the slot count per wheel level.
const SLOT_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. Level `l` covers `64^(l+1)` µs relative to the cursor.
const LEVELS: usize = 7;
/// Bits of absolute time the wheel spans relative to its cursor:
/// `64^7 = 2^42` µs ≈ 51 simulated days. Events further out wait in the
/// overflow heap until the cursor reaches their region.
const WHEEL_BITS: u32 = SLOT_BITS * LEVELS as u32;
/// Null link in the intrusive slot lists / free list.
const NIL: u32 = u32::MAX;

/// Handle for a scheduled event, usable with [`EventQueue::cancel`].
///
/// Packs the slab index and the node's generation at scheduling time;
/// once the event fires or is cancelled the generation advances, so a
/// stale handle is a cheap miss rather than an aliased cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    #[inline]
    fn new(gen: u32, idx: u32) -> Self {
        EventId(((gen as u64) << 32) | idx as u64)
    }
    #[inline]
    fn idx(self) -> usize {
        (self.0 & u32::MAX as u64) as usize
    }
    #[inline]
    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// One slab cell. `next` chains the node into exactly one container at
/// a time: a wheel slot list while pending above the cursor, or the
/// free list once reclaimed (heap-resident nodes are not chained).
#[derive(Debug)]
struct Node<E> {
    at: u64,
    seq: u64,
    gen: u32,
    next: u32,
    live: bool,
    payload: Option<E>,
}

/// Heap entries order by `(time, seq)` — the queue's pop order.
type HeapKey = Reverse<(u64, u64, u32)>;

/// A time-ordered queue of events of type `E`.
///
/// Events scheduled for the same instant pop in scheduling order
/// (FIFO), which keeps simulations deterministic.
///
/// ```
/// use simkit::event::EventQueue;
/// use simkit::time::SimTime;
///
/// let mut q: EventQueue<&'static str> = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "later");
/// q.schedule(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "sooner")));
/// assert_eq!(q.now(), SimTime::from_secs(1));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Event arena: nodes are allocated once and recycled forever.
    slab: Vec<Node<E>>,
    free_head: u32,
    /// Intrusive list heads: `levels[l][s]` chains the events whose
    /// time lands in slot `s` of level `l` relative to `cursor`.
    levels: Box<[[u32; SLOTS]; LEVELS]>,
    /// Per-level occupancy bitmask; bit `s` set iff `levels[l][s] != NIL`.
    occupied: [u64; LEVELS],
    /// Internal wheel reference time (µs). Invariant:
    /// `now ≤ cursor ≤` every pending event above the due heap.
    cursor: u64,
    /// Events with `at ≤ cursor`, ordered by `(at, seq)`. The only
    /// structure `pop` reads, so pop order is exactly `(time, seq)`.
    due: BinaryHeap<HeapKey>,
    /// Events beyond the wheel horizon (`at ^ cursor ≥ 2^WHEEL_BITS`).
    overflow: BinaryHeap<HeapKey>,
    /// Exact number of pending, non-cancelled events.
    live_count: usize,
    /// Cancelled nodes still linked in a slot list or heap, awaiting
    /// reclamation.
    dead: usize,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            slab: Vec::new(),
            free_head: NIL,
            levels: Box::new([[NIL; SLOTS]; LEVELS]),
            occupied: [0; LEVELS],
            cursor: 0,
            due: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            live_count: 0,
            dead: 0,
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation clock: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events. Exact: cancelled
    /// entries leave the count the instant [`EventQueue::cancel`]
    /// returns, whether or not they have been reclaimed internally.
    #[inline]
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// `true` if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the calling simulation;
    /// the queue clamps such events to `now` so the clock never runs
    /// backwards, and debug builds panic to surface the bug early.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now).as_micros();
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = self.alloc(at, seq, payload);
        self.place(idx);
        self.live_count += 1;
        EventId::new(self.slab[idx as usize].gen, idx)
    }

    /// Schedule `payload` after a delay relative to the current clock.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule(self.now.saturating_add(delay), payload)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event
    /// had not yet fired (or been cancelled). O(1): the node is marked
    /// dead in place and reclaimed lazily; stale handles (already fired
    /// or cancelled, or from a recycled slot) are a generation-check
    /// miss and never accumulate state.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.slab.get_mut(id.idx()) {
            Some(node) if node.gen == id.gen() && node.live => {
                node.live = false;
                node.payload = None;
                self.live_count -= 1;
                self.dead += 1;
                true
            }
            _ => false,
        }
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if !self.settle() {
            return None;
        }
        self.due
            .peek()
            .map(|&Reverse((at, _, _))| SimTime::from_micros(at))
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if !self.settle() {
            return None;
        }
        let Reverse((at, _, idx)) = self.due.pop().expect("settle guarantees a due event");
        let payload = self.slab[idx as usize]
            .payload
            .take()
            .expect("live event carries its payload");
        self.free(idx);
        self.live_count -= 1;
        self.now = SimTime::from_micros(at);
        Some((self.now, payload))
    }

    /// Take a node from the free list or grow the slab.
    fn alloc(&mut self, at: u64, seq: u64, payload: E) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let node = &mut self.slab[idx as usize];
            self.free_head = node.next;
            node.at = at;
            node.seq = seq;
            node.next = NIL;
            node.live = true;
            node.payload = Some(payload);
            idx
        } else {
            let idx = self.slab.len();
            assert!(idx < NIL as usize, "event slab exhausted");
            self.slab.push(Node {
                at,
                seq,
                gen: 0,
                next: NIL,
                live: true,
                payload: Some(payload),
            });
            idx as u32
        }
    }

    /// Return a node to the free list, bumping its generation so any
    /// outstanding [`EventId`] for it goes stale.
    fn free(&mut self, idx: u32) {
        let head = self.free_head;
        let node = &mut self.slab[idx as usize];
        node.gen = node.gen.wrapping_add(1);
        node.live = false;
        node.payload = None;
        node.next = head;
        self.free_head = idx;
    }

    /// Insert node `idx` into the structure matching its distance from
    /// the cursor: the due heap at or before it, a wheel slot within
    /// the horizon, the overflow heap beyond.
    fn place(&mut self, idx: u32) {
        let (at, seq) = {
            let n = &self.slab[idx as usize];
            (n.at, n.seq)
        };
        if at <= self.cursor {
            self.due.push(Reverse((at, seq, idx)));
            return;
        }
        let diff = at ^ self.cursor;
        let level = ((63 - diff.leading_zeros()) / SLOT_BITS) as usize;
        if level >= LEVELS {
            self.overflow.push(Reverse((at, seq, idx)));
            return;
        }
        let slot = ((at >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        let head = &mut self.levels[level][slot];
        self.slab[idx as usize].next = *head;
        *head = idx;
        self.occupied[level] |= 1u64 << slot;
    }

    /// Drive the wheel until the due-heap top is the global minimum
    /// pending event. Returns `false` iff the queue is empty.
    fn settle(&mut self) -> bool {
        loop {
            // Reclaim cancelled entries surfacing at the due-heap top.
            while let Some(&Reverse((_, _, idx))) = self.due.peek() {
                if self.slab[idx as usize].live {
                    break;
                }
                self.due.pop();
                self.dead -= 1;
                self.free(idx);
            }
            // A non-empty due heap tops out at `≤ cursor`, which
            // precedes every wheel and overflow event — global min.
            if self.due.peek().is_some() {
                return true;
            }
            if self.live_count == 0 {
                if self.dead > 0 {
                    self.sweep();
                }
                return false;
            }
            if let Some((level, slot)) = self.next_occupied() {
                self.advance(level, slot);
            } else {
                self.drain_overflow();
            }
        }
    }

    /// Earliest occupied wheel slot. Events at level `l` all precede
    /// events at any level above `l` (they share the cursor's digits
    /// above `l` and differ only below), so the lowest occupied level
    /// wins, and within a level the smallest slot index wins.
    fn next_occupied(&self) -> Option<(usize, usize)> {
        self.occupied
            .iter()
            .position(|&occ| occ != 0)
            .map(|level| (level, self.occupied[level].trailing_zeros() as usize))
    }

    /// Advance the cursor to the lower bound of `(level, slot)` and
    /// cascade the slot's events down (level 0 deposits into the due
    /// heap, where `(at, seq)` ordering takes over).
    fn advance(&mut self, level: usize, slot: usize) {
        let shift = SLOT_BITS * level as u32;
        debug_assert!(
            slot as u64 > (self.cursor >> shift) & (SLOTS as u64 - 1),
            "occupied slots sit strictly past the cursor digit"
        );
        // Safe to jump: the due heap is empty and this is the earliest
        // occupied slot, so no pending event precedes its lower bound.
        let above = shift + SLOT_BITS;
        self.cursor = ((self.cursor >> above) << above) | ((slot as u64) << shift);
        self.occupied[level] &= !(1u64 << slot);
        let mut head = std::mem::replace(&mut self.levels[level][slot], NIL);
        while head != NIL {
            let next = self.slab[head as usize].next;
            if self.slab[head as usize].live {
                self.place(head);
            } else {
                self.dead -= 1;
                self.free(head);
            }
            head = next;
        }
    }

    /// Wheel and due heap are empty: jump the cursor to the earliest
    /// live overflow event, then pull every overflow entry that now
    /// falls inside the wheel horizon back into the wheel so later
    /// in-horizon schedules can never leapfrog them.
    fn drain_overflow(&mut self) {
        loop {
            match self.overflow.pop() {
                Some(Reverse((at, _, idx))) => {
                    if !self.slab[idx as usize].live {
                        self.dead -= 1;
                        self.free(idx);
                        continue;
                    }
                    self.cursor = at;
                    self.place(idx);
                    break;
                }
                None => unreachable!("live events pending but every structure is empty"),
            }
        }
        while let Some(&Reverse((at, _, idx))) = self.overflow.peek() {
            // In-horizon ⟺ same 2^WHEEL_BITS-aligned region as the new
            // cursor; monotone in `at`, so stop at the first miss.
            if (at ^ self.cursor) >> WHEEL_BITS != 0 {
                break;
            }
            self.overflow.pop();
            if self.slab[idx as usize].live {
                self.place(idx);
            } else {
                self.dead -= 1;
                self.free(idx);
            }
        }
    }

    /// Reclaim every dead node at once. Only called when no live events
    /// remain, so all linked or heap-resident nodes are dead by
    /// definition and the containers can be cleared wholesale — this
    /// keeps cancel-heavy idle periods from accumulating junk.
    fn sweep(&mut self) {
        for level in 0..LEVELS {
            if self.occupied[level] == 0 {
                continue;
            }
            for slot in 0..SLOTS {
                let mut head = std::mem::replace(&mut self.levels[level][slot], NIL);
                while head != NIL {
                    let next = self.slab[head as usize].next;
                    self.free(head);
                    head = next;
                }
            }
            self.occupied[level] = 0;
        }
        while let Some(Reverse((_, _, idx))) = self.due.pop() {
            self.free(idx);
        }
        while let Some(Reverse((_, _, idx))) = self.overflow.pop() {
            self.free(idx);
        }
        self.dead = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3u32);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10u32 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), 0u8);
        q.pop();
        q.schedule_in(SimDuration::from_secs(2), 1u8);
        assert_eq!(q.pop(), Some((SimTime::from_secs(7), 1u8)));
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 'b')));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
        assert!(!q.cancel(EventId::new(7, 3)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    /// The post-cancel length contract (regression for the old
    /// representation, where `len` was derived from container sizes
    /// rather than counted): `cancel` must be reflected by `len` /
    /// `is_empty` immediately, before any pop or peek reclaims the
    /// node, and must stay exact through partial cancellation.
    #[test]
    fn len_is_exact_after_cancel_without_pop() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..6u32)
            .map(|i| q.schedule(SimTime::from_secs(i as u64 + 1), i))
            .collect();
        assert_eq!(q.len(), 6);
        assert!(q.cancel(ids[0]));
        assert!(q.cancel(ids[3]));
        // No pop or peek has run: the dead nodes are still linked
        // internally, but the public count excludes them already.
        assert_eq!(q.len(), 4);
        assert!(!q.is_empty());
        for id in &ids {
            q.cancel(*id);
        }
        assert_eq!(q.len(), 0);
        assert!(q.is_empty(), "all-cancelled queue reads empty pre-pop");
        assert_eq!(q.pop(), None);
        assert_eq!(q.dead, 0, "empty-queue settle swept the dead nodes");
    }

    #[test]
    fn cancel_after_fire_is_false_and_leaks_nothing() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), 'a');
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 'a')));
        assert!(!q.cancel(a), "the event already fired");
        assert_eq!(q.dead, 0, "no cancellation state retained");
        assert_eq!(q.len(), 0);
        // A fault-heavy pattern: many schedule/fire/late-cancel cycles
        // must not grow the queue's internal state or corrupt `len`.
        for _ in 0..1000 {
            let id = q.schedule_in(SimDuration::from_millis(1), 'x');
            q.pop();
            assert!(!q.cancel(id));
        }
        assert_eq!(q.dead, 0);
        assert_eq!(q.len(), 0);
        assert_eq!(q.slab.len(), 1, "slot recycling reuses one arena cell");
    }

    #[test]
    fn recycled_slot_ids_do_not_alias() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), 'a');
        q.pop();
        // 'b' reuses 'a''s slab cell; the stale handle must miss.
        let b = q.schedule(SimTime::from_secs(2), 'b');
        assert_eq!(a.idx(), b.idx(), "slot is recycled");
        assert!(!q.cancel(a), "stale generation misses");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 'b')));
    }

    #[test]
    fn cancelled_nodes_reclaimed_as_they_surface() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..8u32)
            .map(|i| q.schedule(SimTime::from_secs(i as u64 + 1), i))
            .collect();
        for id in &ids[..4] {
            assert!(q.cancel(*id));
        }
        assert_eq!(q.dead, 4);
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((SimTime::from_secs(5), 4)));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn far_future_events_cascade_between_levels() {
        let mut q = EventQueue::new();
        // Spread across every wheel level and the overflow heap:
        // 10 µs, ~4 ms, ~0.26 s, ~17 s, ~18 min, ~19 h, ~51 d, ~60 d.
        let times: Vec<u64> = (0..7).map(|l| 10u64 * 64u64.pow(l)).collect();
        let beyond = (1u64 << WHEEL_BITS) + 12_345;
        let mut expect = Vec::new();
        for (i, &t) in times.iter().chain(std::iter::once(&beyond)).enumerate() {
            q.schedule(SimTime::from_micros(t), i);
            expect.push((t, i));
        }
        let popped: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_micros(), e))).collect();
        assert_eq!(popped, expect);
    }

    #[test]
    fn same_timestamp_burst_after_cascade_stays_fifo() {
        let mut q = EventQueue::new();
        // A burst at a single far-future instant has to survive
        // several level cascades without perturbing FIFO order.
        let t = SimTime::from_micros(5 * 64u64.pow(4) + 17);
        for i in 0..100u32 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn event_scheduled_behind_the_cursor_still_pops_first() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), 'z');
        // Peek advances the internal cursor to 10 s...
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(10)));
        // ...but a later schedule for an earlier instant must still
        // pop first (it routes to the due heap, not the wheel).
        q.schedule(SimTime::from_secs(1), 'a');
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 'a')));
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), 'z')));
    }

    #[test]
    fn cancel_works_while_event_sits_in_due_heap() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), 'a');
        let b = q.schedule(SimTime::from_secs(1), 'b');
        // Force both into the due heap via the cursor advance...
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        // ...then cancel one of them after the fact.
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 'b')));
        assert!(!q.cancel(b));
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_entries_rejoin_wheel_before_new_schedules() {
        let mut q = EventQueue::new();
        let horizon = 1u64 << WHEEL_BITS;
        // Two events beyond the wheel horizon, in the same far region.
        q.schedule(SimTime::from_micros(horizon + 100), 'x');
        q.schedule(SimTime::from_micros(horizon + 500), 'y');
        // Pop the first: the cursor jumps into the far region and must
        // drag 'y' out of overflow into the wheel...
        assert_eq!(q.pop(), Some((SimTime::from_micros(horizon + 100), 'x')));
        // ...so a fresh schedule between cursor and 'y' cannot
        // leapfrog it.
        q.schedule(SimTime::from_micros(horizon + 300), 'm');
        assert_eq!(q.pop(), Some((SimTime::from_micros(horizon + 300), 'm')));
        assert_eq!(q.pop(), Some((SimTime::from_micros(horizon + 500), 'y')));
    }

    #[test]
    fn interleaved_schedule_pop_cancel_matches_reference_model() {
        // Deterministic pseudo-random interleaving against a stable
        // sort reference (the proptest suite covers the random space;
        // this pins one reproducible trajectory in-module).
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, u64, u32)> = Vec::new(); // (at, seq, tag)
        let mut seq = 0u64;
        let mut ids = Vec::new();
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut popped = Vec::new();
        let mut expect = Vec::new();
        for i in 0..2000u32 {
            let r = step();
            match r % 10 {
                0..=5 => {
                    let at = q.now().as_micros() + r % 5000;
                    ids.push((q.schedule(SimTime::from_micros(at), i), i));
                    reference.push((at.max(q.now().as_micros()), seq, i));
                    seq += 1;
                }
                6..=7 => {
                    if !ids.is_empty() {
                        let k = (r as usize / 16) % ids.len();
                        let (id, tag) = ids.swap_remove(k);
                        if q.cancel(id) {
                            reference.retain(|&(_, _, t)| t != tag);
                        }
                    }
                }
                _ => {
                    if let Some((t, tag)) = q.pop() {
                        popped.push((t.as_micros(), tag));
                        reference.sort_by_key(|&(at, s, _)| (at, s));
                        let (at, _, rt) = reference.remove(0);
                        expect.push((at, rt));
                    }
                }
            }
            assert_eq!(q.len(), reference.len(), "len stays exact at step {i}");
        }
        while let Some((t, tag)) = q.pop() {
            popped.push((t.as_micros(), tag));
            reference.sort_by_key(|&(at, s, _)| (at, s));
            let (at, _, rt) = reference.remove(0);
            expect.push((at, rt));
        }
        assert_eq!(popped, expect);
        assert!(reference.is_empty());
    }
}
