//! Deterministic event queue.
//!
//! The queue is the heart of every discrete-event simulation in this
//! workspace. Determinism is guaranteed by breaking timestamp ties with a
//! monotonically increasing sequence number, so two runs with the same
//! seed produce identical event orders.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// Handle for a scheduled event, usable with [`EventQueue::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A time-ordered queue of events of type `E`.
///
/// Events scheduled for the same instant pop in scheduling order
/// (FIFO), which keeps simulations deterministic.
///
/// ```
/// use simkit::event::EventQueue;
/// use simkit::time::SimTime;
///
/// let mut q: EventQueue<&'static str> = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "later");
/// q.schedule(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "sooner")));
/// assert_eq!(q.now(), SimTime::from_secs(1));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Cancelled-but-not-yet-popped sequence numbers. A `BTreeSet`
    /// rather than a hash set: nothing here may ever depend on an
    /// iteration order that varies across builds or processes, even
    /// defensively — the queue is the determinism root of every
    /// engine in the workspace.
    cancelled: BTreeSet<u64>,
    /// Sequence numbers currently in the heap and not cancelled. Keeps
    /// `cancel` exact: cancelling an event that already fired (or was
    /// already cancelled) is a cheap miss instead of a permanent leak
    /// into `cancelled` — long fault-heavy runs cancel millions of
    /// stale ids.
    live: BTreeSet<u64>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            live: BTreeSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation clock: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the calling simulation;
    /// the queue clamps such events to `now` so the clock never runs
    /// backwards, and debug builds panic to surface the bug early.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
        self.live.insert(seq);
        EventId(seq)
    }

    /// Schedule `payload` after a delay relative to the current clock.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule(self.now.saturating_add(delay), payload)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event
    /// had not yet fired (or been cancelled).
    ///
    /// Ids below the lowest live sequence number (already fired or
    /// cancelled) short-circuit without touching the cancellation set,
    /// so stale handles never accumulate state.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.live.first() {
            None => return false,
            Some(&lowest) if id.0 < lowest => return false,
            _ => {}
        }
        if self.live.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let Reverse(e) = self.heap.pop()?;
        self.live.remove(&e.seq);
        self.now = e.at;
        Some((e.at, e.payload))
    }

    fn skip_cancelled(&mut self) {
        while let Some(Reverse(e)) = self.heap.peek() {
            if self.cancelled.remove(&e.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3u32);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10u32 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), 0u8);
        q.pop();
        q.schedule_in(SimDuration::from_secs(2), 1u8);
        assert_eq!(q.pop(), Some((SimTime::from_secs(7), 1u8)));
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 'b')));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn cancel_after_fire_is_false_and_leaks_nothing() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), 'a');
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 'a')));
        assert!(!q.cancel(a), "the event already fired");
        assert!(q.cancelled.is_empty(), "no cancellation state retained");
        assert_eq!(q.len(), 0);
        // A fault-heavy pattern: many schedule/fire/late-cancel cycles
        // must not grow the cancellation set or corrupt `len`.
        for _ in 0..1000 {
            let id = q.schedule_in(SimDuration::from_millis(1), 'x');
            q.pop();
            assert!(!q.cancel(id));
        }
        assert!(q.cancelled.is_empty());
        assert!(q.live.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn cancelled_set_drains_as_entries_surface() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..8u32)
            .map(|i| q.schedule(SimTime::from_secs(i as u64 + 1), i))
            .collect();
        for id in &ids[..4] {
            assert!(q.cancel(*id));
        }
        assert_eq!(q.cancelled.len(), 4);
        assert_eq!(q.pop(), Some((SimTime::from_secs(5), 4)));
        assert!(q.cancelled.is_empty(), "surfaced cancellations drained");
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }
}
