//! Size, bandwidth and compute-work units shared across the workspace.
//!
//! Conventions: data sizes are `u64` **bytes**; bandwidths are **bytes
//! per second** (helpers convert from the Mbps figures the paper quotes);
//! compute work is in **megacycles** (1e6 CPU cycles), matching the way
//! offloading papers characterise task cost.

/// Bytes in a kibibyte.
pub const KIB: u64 = 1024;
/// Bytes in a mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// Bytes in a gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// Kibibytes → bytes.
#[inline]
pub const fn kib(n: u64) -> u64 {
    n * KIB
}

/// Mebibytes → bytes.
#[inline]
pub const fn mib(n: u64) -> u64 {
    n * MIB
}

/// Gibibytes → bytes.
#[inline]
pub const fn gib(n: u64) -> u64 {
    n * GIB
}

/// Fractional mebibytes → bytes (rounded).
#[inline]
pub fn mib_f64(n: f64) -> u64 {
    (n * MIB as f64).round() as u64
}

/// Megabits per second → bytes per second.
#[inline]
pub fn mbps(n: f64) -> f64 {
    n * 1_000_000.0 / 8.0
}

/// Kilobits per second → bytes per second.
#[inline]
pub fn kbps(n: f64) -> f64 {
    n * 1_000.0 / 8.0
}

/// Render a byte count with a binary-unit suffix, e.g. `"7.1 MiB"`.
pub fn format_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if bytes >= GIB {
        format!("{:.2} GiB", b / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.1} MiB", b / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.1} KiB", b / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

/// Compute work expressed in megacycles (1e6 cycles).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Megacycles(pub f64);

impl Megacycles {
    /// Seconds this work takes on a core running at `ghz` gigahertz,
    /// scaled by `efficiency` (cycles-per-useful-cycle, 1.0 = native).
    ///
    /// # Panics
    /// Panics if `ghz` or `efficiency` is not strictly positive.
    pub fn seconds_at(self, ghz: f64, efficiency: f64) -> f64 {
        assert!(ghz > 0.0, "clock must be positive");
        assert!(efficiency > 0.0, "efficiency must be positive");
        self.0 / (ghz * 1000.0 * efficiency)
    }
}

impl std::ops::Add for Megacycles {
    type Output = Megacycles;
    fn add(self, rhs: Megacycles) -> Megacycles {
        Megacycles(self.0 + rhs.0)
    }
}

impl std::ops::Mul<f64> for Megacycles {
    type Output = Megacycles;
    fn mul(self, rhs: f64) -> Megacycles {
        Megacycles(self.0 * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(kib(1), 1024);
        assert_eq!(mib(2), 2 * 1024 * 1024);
        assert_eq!(gib(1), 1 << 30);
        assert_eq!(mib_f64(0.5), 524_288);
    }

    #[test]
    fn bandwidth_conversions() {
        assert_eq!(mbps(8.0), 1_000_000.0);
        assert_eq!(kbps(8.0), 1_000.0);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(kib(2)), "2.0 KiB");
        assert_eq!(format_bytes(mib(7) + 100 * KIB), "7.1 MiB");
        assert_eq!(format_bytes(gib(1) + 100 * MIB), "1.10 GiB");
    }

    #[test]
    fn megacycles_timing() {
        // 2660 megacycles on a 2.66 GHz core = 1 second.
        let w = Megacycles(2660.0);
        assert!((w.seconds_at(2.66, 1.0) - 1.0).abs() < 1e-9);
        // 5% virtualization overhead → efficiency < 1 → slower.
        assert!(w.seconds_at(2.66, 0.95) > 1.0);
    }

    #[test]
    fn megacycles_arithmetic() {
        let w = Megacycles(100.0) + Megacycles(50.0);
        assert_eq!(w.0, 150.0);
        assert_eq!((w * 2.0).0, 300.0);
    }
}
