//! Simulated time.
//!
//! All simulation clocks in the workspace use [`SimTime`] (an absolute
//! instant) and [`SimDuration`] (a span), both with **microsecond**
//! resolution stored in a `u64`. Microseconds give us headroom for
//! multi-hour trace replays (Fig. 11) while still resolving the
//! sub-millisecond costs of the binder IPC hot path.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in microseconds since the
/// start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The instant the simulation starts at.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from fractional seconds (saturating at zero for negatives).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e6).round() as u64)
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition that saturates at [`SimTime::MAX`].
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span (used as "forever").
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds (saturating at zero for negatives).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Construct from fractional milliseconds.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1e3).round() as u64)
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if the span is empty.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by a non-negative float, rounding to the nearest microsecond.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k.max(0.0)).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimDuration::from_millis_f64(0.25).as_micros(), 250);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_millis(), 1_500);
        let d = t - SimTime::from_millis(200);
        assert_eq!(d.as_millis(), 1_300);
        assert_eq!((SimDuration::from_secs(2) * 3).as_secs_f64(), 6.0);
        assert_eq!((SimDuration::from_secs(6) / 3).as_secs_f64(), 2.0);
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn negative_float_saturates_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimTime::from_secs_f64(-0.5), SimTime::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(100).mul_f64(1.499);
        assert_eq!(d.as_micros(), 150);
        assert_eq!(SimDuration::from_secs(1).mul_f64(-2.0), SimDuration::ZERO);
    }
}
