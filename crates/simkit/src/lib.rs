//! # simkit — deterministic discrete-event simulation toolkit
//!
//! The substrate under the Rattrap reproduction: a microsecond-resolution
//! simulated clock ([`time`]), a deterministic event queue ([`event`]),
//! fair-share resource models for CPUs / disks / links ([`resource`]),
//! a generic epoch-validated execution engine driving those resources
//! from an event loop ([`executor`]),
//! seeded randomness with the distributions the experiments need
//! ([`random`]), a deterministic fault-injection plan ([`faults`]),
//! a sharded runtime with conservative time-window synchronization
//! for multi-queue parallel simulation ([`shard`]),
//! online statistics and empirical CDFs ([`stats`]),
//! one-second timeline sampling for server-load figures ([`sampler`]),
//! and the unit conventions shared by every crate ([`units`]).
//!
//! Design rules:
//! * No wall-clock time anywhere — simulations are pure functions of
//!   their inputs and a `u64` seed.
//! * Ties in the event queue break by scheduling order, and resource
//!   completion ties break by job id, so runs are bit-reproducible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod executor;
pub mod faults;
pub mod random;
pub mod resource;
pub mod sampler;
pub mod shard;
pub mod stats;
pub mod time;
pub mod units;

pub use event::{EventId, EventQueue};
pub use executor::{FairShareExecutor, WORK_EPS};
pub use faults::{
    link_available_at, transfer_outcome, FaultConfig, FaultEvent, FaultKind, FaultPlan, LinkWindow,
    StragglerWindow, TransferOutcome,
};
pub use random::{derive_seed, SimRng};
pub use resource::{FairShareResource, JobId, MemoryPool};
pub use sampler::TimelineSampler;
pub use shard::{run_sharded, Envelope, Lp, Outbox, ShardMode};
pub use stats::{Cdf, OnlineStats};
pub use time::{SimDuration, SimTime};
