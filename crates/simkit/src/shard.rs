//! Sharded discrete-event execution with conservative time-window
//! synchronization.
//!
//! A simulation is decomposed into *logical processes* (LPs), each
//! owning a private [`EventQueue`](crate::EventQueue) and advancing
//! freely inside a global time window. Cross-LP interaction happens
//! only through messages carried by [`Envelope`]s with a fixed minimum
//! latency — the *sync window* `W`, derived by the caller from the
//! slowest physical path between shards (e.g. the cross-host fabric
//! hop). Because every message sent inside window `[B−W, B)` is
//! delivered at or after the boundary `B`, LPs can never receive an
//! event in their own past: the classic conservative-lookahead
//! argument of parallel discrete-event simulation.
//!
//! Determinism contract: for a fixed LP decomposition and window, the
//! serial runner and the threaded runner (worker threads each owning a
//! contiguous LP range) produce **bit-identical** executions. Both
//! process windows in the same sequence, each LP touches only its own
//! queue inside a window, and envelopes are delivered sorted by the
//! total key `(deliver_at, src, seq)`. No step depends on thread
//! scheduling; threads change wall-clock time only.

use crate::time::{SimDuration, SimTime};
use std::sync::mpsc;

/// A cross-LP message in flight.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Absolute delivery time (send time + the sync window).
    pub at: SimTime,
    /// Sending LP index.
    pub src: usize,
    /// Receiving LP index.
    pub dst: usize,
    /// Per-source send sequence (monotone; with `src` a total order).
    pub seq: u64,
    /// The payload.
    pub msg: M,
}

/// Per-LP outbox handed to [`Lp::run_window`]. Sends are buffered for
/// exchange at the next window barrier; each costs the full sync
/// window in latency.
#[derive(Debug)]
pub struct Outbox<M> {
    src: usize,
    latency: SimDuration,
    seq: u64,
    out: Vec<Envelope<M>>,
}

impl<M> Outbox<M> {
    fn new(src: usize, latency: SimDuration) -> Self {
        Outbox {
            src,
            latency,
            seq: 0,
            out: Vec::new(),
        }
    }

    /// Send `msg` to LP `dst`; it is delivered at `now + W`.
    pub fn send(&mut self, now: SimTime, dst: usize, msg: M) {
        let seq = self.seq;
        self.seq += 1;
        self.out.push(Envelope {
            at: now.saturating_add(self.latency),
            src: self.src,
            dst,
            seq,
            msg,
        });
    }

    fn drain(&mut self) -> Vec<Envelope<M>> {
        std::mem::take(&mut self.out)
    }
}

/// One logical process of a sharded simulation.
///
/// Implementations are usually `!Send` (they hold `Rc`-based recorders
/// or kernel state); the runner therefore *constructs* each LP inside
/// the worker thread that owns it, via a `Send + Sync` builder, and
/// converts it to a `Send` output there too.
pub trait Lp {
    /// Cross-LP message type.
    type Msg;

    /// Timestamp of the LP's next pending event, if any. Takes `&mut`
    /// so implementations can peek through an
    /// [`EventQueue`](crate::EventQueue) (which drains cancellations
    /// on peek).
    fn next_time(&mut self) -> Option<SimTime>;

    /// Process every pending event strictly before `bound`, sending
    /// cross-LP messages through `out`.
    fn run_window(&mut self, bound: SimTime, out: &mut Outbox<Self::Msg>);

    /// Accept a delivered envelope: schedule it in the local queue at
    /// `at` (never in this LP's past — the runner guarantees `at` is
    /// at or past the last window boundary).
    fn accept(&mut self, at: SimTime, src: usize, msg: Self::Msg);
}

/// How many worker threads drive the LPs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMode {
    /// Single-threaded reference execution on the caller thread.
    Serial,
    /// `n` worker threads, each owning a contiguous range of LPs.
    /// Clamped to `[1, n_lps]`; `Threads(1)` still spawns one worker
    /// (useful for exercising the exchange plumbing).
    Threads(usize),
}

/// Smallest multiple of `window` strictly greater than `t` — the next
/// window boundary. All events `< bound` are safe to execute: any
/// message they send is delivered at `>= t_min + W >= bound`.
fn next_boundary(t: SimTime, window: SimDuration) -> SimTime {
    let w = window.as_micros();
    let b = (t.as_micros() / w + 1).saturating_mul(w);
    SimTime::from_micros(b)
}

/// Sort envelopes destined for one LP into their canonical delivery
/// order. `(at, src, seq)` is a total order: `seq` is unique per
/// `src`.
fn sort_for_delivery<M>(batch: &mut [Envelope<M>]) {
    batch.sort_by_key(|e| (e.at, e.src, e.seq));
}

/// Run `n_lps` logical processes to completion under conservative
/// window synchronization and return each LP's output, in LP index
/// order.
///
/// `build(i)` constructs LP `i` (called once, inside the owning
/// thread); `finish(i, lp)` converts a drained LP into its `Send`
/// output. The run terminates when every queue is empty and no
/// envelope is in flight.
pub fn run_sharded<L, O, B, F>(
    n_lps: usize,
    window: SimDuration,
    mode: ShardMode,
    build: B,
    finish: F,
) -> Vec<O>
where
    L: Lp,
    L::Msg: Send,
    O: Send,
    B: Fn(usize) -> L + Send + Sync,
    F: Fn(usize, L) -> O + Send + Sync,
{
    assert!(n_lps > 0, "a sharded run needs at least one LP");
    assert!(!window.is_zero(), "the sync window must be positive");
    match mode {
        ShardMode::Serial => run_serial(n_lps, window, build, finish),
        ShardMode::Threads(t) => run_threaded(n_lps, window, t.clamp(1, n_lps), build, finish),
    }
}

fn run_serial<L, O, B, F>(n_lps: usize, window: SimDuration, build: B, finish: F) -> Vec<O>
where
    L: Lp,
    B: Fn(usize) -> L,
    F: Fn(usize, L) -> O,
{
    let mut lps: Vec<L> = (0..n_lps).map(&build).collect();
    let mut outboxes: Vec<Outbox<L::Msg>> = (0..n_lps).map(|i| Outbox::new(i, window)).collect();
    let mut pending: Vec<Envelope<L::Msg>> = Vec::new();
    loop {
        // Deliver last window's envelopes in canonical order.
        sort_for_delivery(&mut pending);
        for env in pending.drain(..) {
            lps[env.dst].accept(env.at, env.src, env.msg);
        }
        // Next boundary from the global minimum next-event time.
        let Some(t_min) = lps.iter_mut().filter_map(|l| l.next_time()).min() else {
            break;
        };
        let bound = next_boundary(t_min, window);
        for (i, lp) in lps.iter_mut().enumerate() {
            lp.run_window(bound, &mut outboxes[i]);
        }
        for ob in &mut outboxes {
            pending.append(&mut ob.drain());
        }
    }
    lps.into_iter()
        .enumerate()
        .map(|(i, lp)| finish(i, lp))
        .collect()
}

/// Coordinator → worker commands.
enum Cmd<M> {
    /// Deliver these envelopes (already in canonical order), then
    /// report the minimum next-event time over the worker's LPs.
    Deliver(Vec<Envelope<M>>),
    /// Run every owned LP up to `bound`, then report outbound
    /// envelopes.
    Run(SimTime),
    /// Drain the LPs into outputs and exit.
    Stop,
}

/// Worker → coordinator replies.
enum Reply<M, O> {
    Min(Option<SimTime>),
    Ran(Vec<Envelope<M>>),
    Done(Vec<O>),
}

fn run_threaded<L, O, B, F>(
    n_lps: usize,
    window: SimDuration,
    threads: usize,
    build: B,
    finish: F,
) -> Vec<O>
where
    L: Lp,
    L::Msg: Send,
    O: Send,
    B: Fn(usize) -> L + Send + Sync,
    F: Fn(usize, L) -> O + Send + Sync,
{
    // Contiguous LP ranges: worker w owns [starts[w], starts[w+1]).
    let base = n_lps / threads;
    let extra = n_lps % threads;
    let mut starts = Vec::with_capacity(threads + 1);
    let mut acc = 0;
    for w in 0..threads {
        starts.push(acc);
        acc += base + usize::from(w < extra);
    }
    starts.push(acc);

    let build = &build;
    let finish = &finish;
    std::thread::scope(|scope| {
        let mut cmd_txs = Vec::with_capacity(threads);
        let (reply_tx, reply_rx) = mpsc::channel::<(usize, Reply<L::Msg, O>)>();
        for w in 0..threads {
            let (tx, rx) = mpsc::channel::<Cmd<L::Msg>>();
            cmd_txs.push(tx);
            let reply_tx = reply_tx.clone();
            let (lo, hi) = (starts[w], starts[w + 1]);
            scope.spawn(move || {
                let mut lps: Vec<L> = (lo..hi).map(build).collect();
                let mut outboxes: Vec<Outbox<L::Msg>> =
                    (lo..hi).map(|i| Outbox::new(i, window)).collect();
                for cmd in rx {
                    match cmd {
                        Cmd::Deliver(batch) => {
                            for env in batch {
                                lps[env.dst - lo].accept(env.at, env.src, env.msg);
                            }
                            let min = lps.iter_mut().filter_map(|l| l.next_time()).min();
                            let _ = reply_tx.send((w, Reply::Min(min)));
                        }
                        Cmd::Run(bound) => {
                            for (i, lp) in lps.iter_mut().enumerate() {
                                lp.run_window(bound, &mut outboxes[i]);
                            }
                            let mut out = Vec::new();
                            for ob in &mut outboxes {
                                out.append(&mut ob.drain());
                            }
                            let _ = reply_tx.send((w, Reply::Ran(out)));
                        }
                        Cmd::Stop => {
                            let outs: Vec<O> = lps
                                .drain(..)
                                .enumerate()
                                .map(|(i, lp)| finish(lo + i, lp))
                                .collect();
                            let _ = reply_tx.send((w, Reply::Done(outs)));
                            break;
                        }
                    }
                }
            });
        }
        drop(reply_tx);

        let owner = |lp: usize| starts.partition_point(|&s| s <= lp) - 1;
        let mut pending: Vec<Envelope<L::Msg>> = Vec::new();
        loop {
            // Exchange: canonical order globally, partitioned by owner
            // (partitioning a sorted list keeps each batch sorted).
            sort_for_delivery(&mut pending);
            let mut batches: Vec<Vec<Envelope<L::Msg>>> =
                (0..threads).map(|_| Vec::new()).collect();
            for env in pending.drain(..) {
                batches[owner(env.dst)].push(env);
            }
            for (w, batch) in batches.into_iter().enumerate() {
                cmd_txs[w].send(Cmd::Deliver(batch)).expect("worker alive");
            }
            let mut t_min: Option<SimTime> = None;
            for _ in 0..threads {
                let (_, reply) = reply_rx.recv().expect("worker alive");
                let Reply::Min(m) = reply else {
                    unreachable!("deliver replies with Min")
                };
                t_min = match (t_min, m) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
            let Some(t_min) = t_min else { break };
            let bound = next_boundary(t_min, window);
            for tx in &cmd_txs {
                tx.send(Cmd::Run(bound)).expect("worker alive");
            }
            for _ in 0..threads {
                let (_, reply) = reply_rx.recv().expect("worker alive");
                let Reply::Ran(out) = reply else {
                    unreachable!("run replies with Ran")
                };
                pending.extend(out);
            }
        }
        for tx in &cmd_txs {
            tx.send(Cmd::Stop).expect("worker alive");
        }
        let mut outs: Vec<Option<Vec<O>>> = (0..threads).map(|_| None).collect();
        for _ in 0..threads {
            let (w, reply) = reply_rx.recv().expect("worker alive");
            let Reply::Done(o) = reply else {
                unreachable!("stop replies with Done")
            };
            outs[w] = Some(o);
        }
        outs.into_iter()
            .flat_map(|o| o.expect("all replied"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;

    /// Toy LP: a token-passing ring. Each LP holds a queue of `u64`
    /// payloads; on pop it folds the payload into a digest and, while
    /// hops remain, forwards `payload + 1` to the next LP.
    struct RingLp {
        idx: usize,
        n: usize,
        q: EventQueue<u64>,
        digest: u64,
        hops: u64,
    }

    fn ring_lp(i: usize, n: usize, hops: u64) -> RingLp {
        let mut q = EventQueue::new();
        if i == 0 && hops > 0 {
            q.schedule(SimTime::from_micros(1), 0);
        }
        RingLp {
            idx: i,
            n,
            q,
            digest: 0x9e37_79b9_7f4a_7c15,
            hops,
        }
    }

    impl Lp for RingLp {
        type Msg = u64;
        fn next_time(&mut self) -> Option<SimTime> {
            self.q.peek_time()
        }
        fn run_window(&mut self, bound: SimTime, out: &mut Outbox<u64>) {
            while self.q.peek_time().is_some_and(|t| t < bound) {
                let (now, v) = self.q.pop().unwrap();
                self.digest = self.digest.rotate_left(7).wrapping_add(v ^ now.as_micros());
                if v < self.hops {
                    out.send(now, (self.idx + 1) % self.n, v + 1);
                }
            }
        }
        fn accept(&mut self, at: SimTime, _src: usize, msg: u64) {
            self.q.schedule(at, msg);
        }
    }

    fn run_ring(n: usize, hops: u64, mode: ShardMode) -> Vec<u64> {
        run_sharded(
            n,
            SimDuration::from_millis(1),
            mode,
            |i| ring_lp(i, n, hops),
            |_, lp| lp.digest,
        )
    }

    #[test]
    fn serial_and_threaded_rings_agree() {
        let serial = run_ring(5, 400, ShardMode::Serial);
        for threads in [1usize, 2, 3, 5, 8] {
            assert_eq!(
                serial,
                run_ring(5, 400, ShardMode::Threads(threads)),
                "threads={threads} diverged from serial"
            );
        }
    }

    #[test]
    fn empty_simulation_terminates() {
        let out = run_sharded(
            3,
            SimDuration::from_millis(1),
            ShardMode::Threads(2),
            |i| ring_lp(i, 3, 0),
            |i, _| i,
        );
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn boundary_is_strictly_after_t() {
        let w = SimDuration::from_millis(1);
        assert_eq!(
            next_boundary(SimTime::from_micros(0), w),
            SimTime::from_micros(1000)
        );
        assert_eq!(
            next_boundary(SimTime::from_micros(999), w),
            SimTime::from_micros(1000)
        );
        assert_eq!(
            next_boundary(SimTime::from_micros(1000), w),
            SimTime::from_micros(2000),
            "a boundary-time event runs before the *next* boundary"
        );
    }

    #[test]
    fn messages_never_deliver_into_the_current_window() {
        // Every send from a window lands at or after the next
        // boundary: at = now + W and now >= bound - W.
        let mut ob = Outbox::new(0, SimDuration::from_millis(1));
        ob.send(SimTime::from_micros(1_999), 1, 7u64);
        let env = ob.drain().pop().unwrap();
        assert!(env.at >= SimTime::from_micros(2_000));
        assert_eq!(env.seq, 0);
        ob.send(SimTime::from_micros(1_999), 1, 8u64);
        assert_eq!(ob.drain().pop().unwrap().seq, 1, "per-src seq is monotone");
    }
}
