//! Online and batch statistics used by the experiment harness.

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample seen, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.mean = mean;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Empirical CDF built from a batch of samples.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples (NaNs are rejected).
    ///
    /// # Panics
    /// Panics if any sample is NaN.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "CDF samples must not be NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if built from zero samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x`, in `[0, 1]`.
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples `>= x`.
    pub fn fraction_ge(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&s| s < x);
        (self.sorted.len() - idx) as f64 / self.sorted.len() as f64
    }

    /// Quantile by nearest-rank; `q` clamped to `[0, 1]`.
    /// Returns `None` on an empty CDF.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[rank - 1])
    }

    /// Median (0.5 quantile).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Evaluate the CDF on an evenly spaced grid of `points` between the
    /// min and max sample; returns `(x, F(x))` pairs ready for plotting.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        if points == 1 || hi == lo {
            return vec![(hi, 1.0)];
        }
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.fraction_le(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        data.iter().for_each(|&x| whole.push(x));
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        data[..37].iter().for_each(|&x| left.push(x));
        data[37..].iter().for_each(|&x| right.push(x));
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean());
        a.merge(&OnlineStats::new());
        assert_eq!((a.count(), a.mean()), before);
        let mut b = OnlineStats::new();
        b.merge(&a);
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn cdf_fractions() {
        let c = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_le(0.5), 0.0);
        assert_eq!(c.fraction_le(2.0), 0.5);
        assert_eq!(c.fraction_le(10.0), 1.0);
        assert_eq!(c.fraction_ge(3.0), 0.5);
        assert_eq!(c.fraction_ge(0.0), 1.0);
    }

    #[test]
    fn cdf_quantiles() {
        let c = Cdf::from_samples(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(c.quantile(0.0), Some(10.0));
        assert_eq!(c.median(), Some(30.0));
        assert_eq!(c.quantile(1.0), Some(50.0));
        assert_eq!(Cdf::from_samples(vec![]).median(), None);
    }

    #[test]
    fn cdf_curve_monotone() {
        let samples: Vec<f64> = (0..200).map(|i| ((i * 37) % 100) as f64).collect();
        let c = Cdf::from_samples(samples);
        let curve = c.curve(50);
        assert_eq!(curve.len(), 50);
        assert!(
            curve.windows(2).all(|w| w[1].1 >= w[0].1),
            "CDF must be monotone"
        );
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn cdf_curve_degenerate() {
        let c = Cdf::from_samples(vec![5.0, 5.0, 5.0]);
        assert_eq!(c.curve(10), vec![(5.0, 1.0)]);
        assert!(Cdf::from_samples(vec![]).curve(10).is_empty());
    }
}
