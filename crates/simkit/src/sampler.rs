//! Timeline sampling for server-load figures.
//!
//! Figure 2 of the paper plots CPU utilization and disk I/O at one-second
//! granularity during the offloading process. [`TimelineSampler`]
//! reproduces that: callers report piecewise-constant values over
//! intervals (`record_level`) or instantaneous amounts (`record_amount`)
//! and the sampler bins them into fixed-width buckets.

use crate::time::{SimDuration, SimTime};

/// Accumulates a time series into fixed-width bins.
///
/// Two reporting styles:
/// * [`record_level`](TimelineSampler::record_level) — a level held over
///   an interval (e.g. CPU utilization 0.83 from t=4 s to t=7.2 s); bins
///   store the **time-weighted average** level.
/// * [`record_amount`](TimelineSampler::record_amount) — a discrete
///   amount at an instant (e.g. 3 MB written); bins store the **sum**,
///   which divided by the bin width is a rate.
#[derive(Debug, Clone)]
pub struct TimelineSampler {
    bin_width: SimDuration,
    /// Sum of level×duration per bin (for averages).
    weighted: Vec<f64>,
    /// Sum of instantaneous amounts per bin.
    amounts: Vec<f64>,
}

impl TimelineSampler {
    /// A sampler with bins of `bin_width` covering `[0, horizon)`.
    ///
    /// # Panics
    /// Panics if `bin_width` is zero.
    pub fn new(bin_width: SimDuration, horizon: SimDuration) -> Self {
        assert!(!bin_width.is_zero(), "bin width must be positive");
        let bins = horizon.as_micros().div_ceil(bin_width.as_micros());
        TimelineSampler {
            bin_width,
            weighted: vec![0.0; bins as usize],
            amounts: vec![0.0; bins as usize],
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.weighted.len()
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> SimDuration {
        self.bin_width
    }

    /// Record that `level` held from `from` until `to`. Portions outside
    /// the horizon are dropped; `to <= from` records nothing.
    pub fn record_level(&mut self, from: SimTime, to: SimTime, level: f64) {
        if to <= from || self.weighted.is_empty() {
            return;
        }
        let bw = self.bin_width.as_micros();
        let horizon = bw * self.weighted.len() as u64;
        let start = from.as_micros().min(horizon);
        let end = to.as_micros().min(horizon);
        let mut t = start;
        while t < end {
            let bin = (t / bw) as usize;
            let bin_end = (bin as u64 + 1) * bw;
            let span = bin_end.min(end) - t;
            self.weighted[bin] += level * span as f64;
            t = bin_end;
        }
    }

    /// Record a discrete `amount` occurring at instant `at` (dropped if
    /// beyond the horizon).
    pub fn record_amount(&mut self, at: SimTime, amount: f64) {
        let bin = (at.as_micros() / self.bin_width.as_micros()) as usize;
        if let Some(slot) = self.amounts.get_mut(bin) {
            *slot += amount;
        }
    }

    /// Spread `amount` uniformly over `[from, to)` (e.g. bytes moved by a
    /// transfer), accumulating into the amount channel of each bin.
    pub fn record_amount_over(&mut self, from: SimTime, to: SimTime, amount: f64) {
        if to <= from || self.amounts.is_empty() {
            return;
        }
        let total = (to - from).as_micros() as f64;
        let bw = self.bin_width.as_micros();
        let horizon = bw * self.amounts.len() as u64;
        let start = from.as_micros().min(horizon);
        let end = to.as_micros().min(horizon);
        let mut t = start;
        while t < end {
            let bin = (t / bw) as usize;
            let bin_end = (bin as u64 + 1) * bw;
            let span = bin_end.min(end) - t;
            self.amounts[bin] += amount * span as f64 / total;
            t = bin_end;
        }
    }

    /// Time-weighted average level per bin (level channel).
    pub fn levels(&self) -> Vec<f64> {
        let bw = self.bin_width.as_micros() as f64;
        self.weighted.iter().map(|w| w / bw).collect()
    }

    /// Summed amounts per bin (amount channel).
    pub fn amounts(&self) -> &[f64] {
        &self.amounts
    }

    /// Amounts converted to a per-second rate.
    pub fn rates_per_sec(&self) -> Vec<f64> {
        let secs = self.bin_width.as_secs_f64();
        self.amounts.iter().map(|a| a / secs).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler() -> TimelineSampler {
        TimelineSampler::new(SimDuration::from_secs(1), SimDuration::from_secs(10))
    }

    #[test]
    fn level_within_one_bin() {
        let mut s = sampler();
        // 50% utilization for half of bin 2.
        s.record_level(SimTime::from_millis(2000), SimTime::from_millis(2500), 0.5);
        let levels = s.levels();
        assert!((levels[2] - 0.25).abs() < 1e-9);
        assert_eq!(levels[1], 0.0);
    }

    #[test]
    fn level_spanning_bins() {
        let mut s = sampler();
        s.record_level(SimTime::from_millis(500), SimTime::from_millis(2500), 1.0);
        let levels = s.levels();
        assert!((levels[0] - 0.5).abs() < 1e-9);
        assert!((levels[1] - 1.0).abs() < 1e-9);
        assert!((levels[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn level_beyond_horizon_is_clipped() {
        let mut s = sampler();
        s.record_level(SimTime::from_secs(9), SimTime::from_secs(50), 1.0);
        let levels = s.levels();
        assert!((levels[9] - 1.0).abs() < 1e-9);
        assert_eq!(levels.len(), 10);
    }

    #[test]
    fn empty_interval_records_nothing() {
        let mut s = sampler();
        s.record_level(SimTime::from_secs(3), SimTime::from_secs(3), 1.0);
        assert!(s.levels().iter().all(|&l| l == 0.0));
    }

    #[test]
    fn amounts_bin_and_rate() {
        let mut s = sampler();
        s.record_amount(SimTime::from_millis(1500), 10.0);
        s.record_amount(SimTime::from_millis(1900), 5.0);
        assert_eq!(s.amounts()[1], 15.0);
        assert_eq!(s.rates_per_sec()[1], 15.0);
        // Beyond horizon: silently dropped.
        s.record_amount(SimTime::from_secs(100), 99.0);
        assert_eq!(s.amounts().iter().sum::<f64>(), 15.0);
    }

    #[test]
    fn amount_over_interval_spreads_proportionally() {
        let mut s = sampler();
        // 30 units over 3 seconds → 10 per bin.
        s.record_amount_over(SimTime::from_secs(2), SimTime::from_secs(5), 30.0);
        let a = s.amounts();
        assert!((a[2] - 10.0).abs() < 1e-9);
        assert!((a[3] - 10.0).abs() < 1e-9);
        assert!((a[4] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn amount_over_clips_at_horizon() {
        let mut s = sampler();
        // 20 units over [9s, 11s): half lands in the horizon.
        s.record_amount_over(SimTime::from_secs(9), SimTime::from_secs(11), 20.0);
        assert!((s.amounts()[9] - 10.0).abs() < 1e-9);
        assert!((s.amounts().iter().sum::<f64>() - 10.0).abs() < 1e-9);
    }
}
