//! Seeded randomness and the distributions the simulation needs.
//!
//! Everything is built on `rand::rngs::StdRng` so a single `u64` master
//! seed reproduces a whole experiment. Independent sub-streams (one per
//! device, per workload, per replication) are derived with
//! [`derive_seed`], a SplitMix64 step, so adding a new consumer never
//! perturbs existing streams.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derive an independent sub-seed from `master` for logical `stream`.
///
/// Uses the SplitMix64 finalizer, which is a bijection with excellent
/// avalanche behaviour, so distinct streams give uncorrelated seeds.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic RNG with the distribution helpers used across the
/// workspace.
#[derive(Debug, Clone)]
pub struct SimRng {
    rng: StdRng,
}

impl SimRng {
    /// Seed a new stream.
    pub fn new(seed: u64) -> Self {
        SimRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Fork an independent child stream identified by `stream`.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        SimRng::new(derive_seed(self.rng.gen(), stream))
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform01(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform bounds inverted");
        lo + (hi - lo) * self.uniform01()
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform bounds inverted");
        self.rng.gen_range(lo..=hi)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform01() < p.clamp(0.0, 1.0)
    }

    /// Exponential with the given `mean` (i.e. rate `1/mean`).
    ///
    /// # Panics
    /// Panics if `mean` is not strictly positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // Inverse CDF; (1 - u) avoids ln(0).
        -mean * (1.0 - self.uniform01()).ln()
    }

    /// Normal via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "std dev must be non-negative");
        let u1: f64 = (1.0 - self.uniform01()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform01();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Normal truncated below at `floor` (re-draws are avoided by clamping,
    /// which is adequate for the mild truncations used here).
    pub fn normal_at_least(&mut self, mean: f64, std_dev: f64, floor: f64) -> f64 {
        self.normal(mean, std_dev).max(floor)
    }

    /// Log-normal such that the *underlying* normal has parameters
    /// (`mu`, `sigma`).
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pareto with scale `x_min > 0` and shape `alpha > 0` — heavy-tailed
    /// think times in the trace generator.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(
            x_min > 0.0 && alpha > 0.0,
            "pareto parameters must be positive"
        );
        x_min / (1.0 - self.uniform01()).powf(1.0 / alpha)
    }

    /// Index drawn from the discrete distribution proportional to
    /// `weights` (non-negative, not all zero).
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.uniform01() * total;
        for (i, &w) in weights.iter().enumerate() {
            assert!(w >= 0.0, "weights must be non-negative");
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1 // floating-point slack lands on the last bucket
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_u64(0, i as u64) as usize;
            items.swap(i, j);
        }
    }

    /// Raw access for callers needing the full `rand` API.
    pub fn raw(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform01().to_bits(), b.uniform01().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.uniform01() == b.uniform01()).count();
        assert!(same < 4);
    }

    #[test]
    fn derive_seed_distinct_streams() {
        let s1 = derive_seed(7, 0);
        let s2 = derive_seed(7, 1);
        assert_ne!(s1, s2);
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::new(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean was {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut r = SimRng::new(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn bernoulli_rate_close() {
        let mut r = SimRng::new(5);
        let hits = (0..10_000).filter(|_| r.bernoulli(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.03);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SimRng::new(6);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..8_000 {
            counts[r.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn pareto_never_below_scale() {
        let mut r = SimRng::new(7);
        assert!((0..2_000).all(|_| r.pareto(2.0, 1.5) >= 2.0));
    }

    #[test]
    fn normal_at_least_respects_floor() {
        let mut r = SimRng::new(8);
        assert!((0..2_000).all(|_| r.normal_at_least(0.0, 10.0, -1.0) >= -1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SimRng::new(10);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let same = (0..32).filter(|_| c1.uniform01() == c2.uniform01()).count();
        assert!(same < 4);
    }
}
