//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seeded schedule of fault events — link outages,
//! bandwidth-degradation windows, instance crashes and straggler
//! slowdowns — derived from the scenario RNG via [`derive_seed`], so a
//! replay with the same seed reproduces the identical fault schedule
//! bit-for-bit. The plan is generated *ahead of time* (before the first
//! simulated event) from independent per-class Poisson streams; the
//! consuming engine therefore never draws fault randomness during the
//! run, and an inert config ([`FaultConfig::none`] or any zero-rate
//! scaling) yields an empty plan that perturbs nothing: the fault-free
//! path stays bit-identical.
//!
//! Link-affecting faults are exposed as piecewise-constant
//! [`LinkWindow`]s (rate factor 0 = outage, 0 < f < 1 = degradation);
//! [`transfer_outcome`] walks a transfer analytically across those
//! windows and reports either a (possibly stretched) completion instant
//! or the interruption point with the fraction of bytes that made it
//! across — the partial-progress input for resume-style retries.

use crate::random::{derive_seed, SimRng};
use crate::time::{SimDuration, SimTime};

/// Per-class fault intensities. All rates are events per simulated
/// hour over `[0, horizon)`; a rate of zero disables the class.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Link outages (hard loss of connectivity) per hour.
    pub outage_rate_per_hour: f64,
    /// Mean outage duration (exponentially distributed).
    pub mean_outage: SimDuration,
    /// Bandwidth-degradation windows per hour.
    pub degradation_rate_per_hour: f64,
    /// Mean degradation-window duration (exponentially distributed).
    pub mean_degradation: SimDuration,
    /// Link-rate multiplier inside a degradation window, in `(0, 1)`.
    pub degradation_factor: f64,
    /// Instance crashes per hour.
    pub crash_rate_per_hour: f64,
    /// Straggler (server slowdown) windows per hour.
    pub straggler_rate_per_hour: f64,
    /// Mean straggler-window duration (exponentially distributed).
    pub mean_straggler: SimDuration,
    /// Work-inflation multiplier for compute submitted inside a
    /// straggler window, `>= 1`.
    pub straggler_factor: f64,
    /// Faults are generated over `[0, horizon)`.
    pub horizon: SimDuration,
}

impl FaultConfig {
    /// No faults at all: every rate zero. Guaranteed to generate an
    /// empty plan.
    pub fn none() -> Self {
        FaultConfig {
            outage_rate_per_hour: 0.0,
            mean_outage: SimDuration::from_secs(8),
            degradation_rate_per_hour: 0.0,
            mean_degradation: SimDuration::from_secs(20),
            degradation_factor: 0.35,
            crash_rate_per_hour: 0.0,
            straggler_rate_per_hour: 0.0,
            mean_straggler: SimDuration::from_secs(15),
            straggler_factor: 6.0,
            horizon: SimDuration::from_secs(2 * 3600),
        }
    }

    /// The standard mixed-fault profile at `intensity` (events/hour per
    /// class scale linearly; `0.0` is exactly [`FaultConfig::none`]'s
    /// rates). Used by the fault-sweep experiment.
    pub fn scaled(intensity: f64) -> Self {
        FaultConfig {
            outage_rate_per_hour: 10.0 * intensity,
            degradation_rate_per_hour: 14.0 * intensity,
            crash_rate_per_hour: 8.0 * intensity,
            straggler_rate_per_hour: 10.0 * intensity,
            ..FaultConfig::none()
        }
    }

    /// `true` when no class can generate an event.
    pub fn is_inert(&self) -> bool {
        (self.outage_rate_per_hour <= 0.0
            && self.degradation_rate_per_hour <= 0.0
            && self.crash_rate_per_hour <= 0.0
            && self.straggler_rate_per_hour <= 0.0)
            || self.horizon.is_zero()
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The device ↔ cloud link is down for `duration`; transfers in
    /// flight are interrupted at onset.
    LinkOutage {
        /// How long the link stays down.
        duration: SimDuration,
    },
    /// Link capacity is multiplied by `factor` for `duration`.
    LinkDegradation {
        /// Window length.
        duration: SimDuration,
        /// Rate multiplier in `(0, 1)`.
        factor: f64,
    },
    /// A runtime instance dies. The victim is chosen *at fire time* by
    /// the consumer as `selector % live_instances` over a sorted id
    /// list, so the plan stays independent of engine state.
    InstanceCrash {
        /// Deterministic victim selector.
        selector: u64,
    },
    /// Server work submitted inside the window is inflated by `factor`.
    Straggler {
        /// Window length.
        duration: SimDuration,
        /// Work multiplier, `>= 1`.
        factor: f64,
    },
}

impl FaultKind {
    /// Stable short name for observability exports (trace-event
    /// names, counter keys).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::LinkOutage { .. } => "link_outage",
            FaultKind::LinkDegradation { .. } => "link_degradation",
            FaultKind::InstanceCrash { .. } => "instance_crash",
            FaultKind::Straggler { .. } => "straggler",
        }
    }
}

/// A fault event: what happens and when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Onset instant.
    pub at: SimTime,
    /// The fault.
    pub kind: FaultKind,
}

/// A window during which the link runs at `rate_factor` × nominal
/// (`0.0` = outage). Derived from a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkWindow {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Link-rate multiplier, `0.0 ..= 1.0`.
    pub rate_factor: f64,
}

/// A window during which server compute submissions are inflated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerWindow {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Work multiplier, `>= 1`.
    pub factor: f64,
}

/// The seeded, pre-generated schedule of fault events for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

// Per-class sub-stream tags for `derive_seed` — adding a class never
// perturbs the streams of existing classes.
const STREAM_OUTAGE: u64 = 0xFA01;
const STREAM_DEGRADATION: u64 = 0xFA02;
const STREAM_CRASH: u64 = 0xFA03;
const STREAM_STRAGGLER: u64 = 0xFA04;

impl FaultPlan {
    /// An empty plan (what [`FaultConfig::none`] generates).
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Generate the schedule for `cfg` from `seed`. Each fault class
    /// draws from its own derived sub-stream, so the schedule of one
    /// class is independent of the others' rates; the merged event list
    /// is sorted by onset (ties break by class declaration order, then
    /// within-class order — fully deterministic).
    pub fn generate(cfg: &FaultConfig, seed: u64) -> Self {
        if cfg.is_inert() {
            return FaultPlan::empty();
        }
        let horizon = cfg.horizon;
        let mut events: Vec<(SimTime, u32, u32, FaultKind)> = Vec::new();
        let mut class =
            |rate: f64, stream: u64, tag: u32, mk: &mut dyn FnMut(&mut SimRng) -> FaultKind| {
                if rate <= 0.0 {
                    return;
                }
                let mut rng = SimRng::new(derive_seed(seed, stream));
                let mean_gap = 3600.0 / rate;
                let mut t = SimTime::ZERO;
                let mut idx = 0u32;
                loop {
                    t = t.saturating_add(SimDuration::from_secs_f64(rng.exponential(mean_gap)));
                    if t >= SimTime::ZERO + horizon {
                        break;
                    }
                    let kind = mk(&mut rng);
                    events.push((t, tag, idx, kind));
                    idx += 1;
                }
            };
        let dur = |rng: &mut SimRng, mean: SimDuration| {
            SimDuration::from_secs_f64(rng.exponential(mean.as_secs_f64().max(1e-3)))
                .max(SimDuration::from_millis(1))
        };
        class(cfg.outage_rate_per_hour, STREAM_OUTAGE, 0, &mut |rng| {
            FaultKind::LinkOutage {
                duration: dur(rng, cfg.mean_outage),
            }
        });
        class(
            cfg.degradation_rate_per_hour,
            STREAM_DEGRADATION,
            1,
            &mut |rng| FaultKind::LinkDegradation {
                duration: dur(rng, cfg.mean_degradation),
                factor: cfg.degradation_factor.clamp(0.01, 1.0),
            },
        );
        class(cfg.crash_rate_per_hour, STREAM_CRASH, 2, &mut |rng| {
            FaultKind::InstanceCrash {
                selector: rng.uniform_u64(0, u64::MAX),
            }
        });
        class(
            cfg.straggler_rate_per_hour,
            STREAM_STRAGGLER,
            3,
            &mut |rng| FaultKind::Straggler {
                duration: dur(rng, cfg.mean_straggler),
                factor: cfg.straggler_factor.max(1.0),
            },
        );
        events.sort_by_key(|a| (a.0, a.1, a.2));
        FaultPlan {
            events: events
                .into_iter()
                .map(|(at, _, _, kind)| FaultEvent { at, kind })
                .collect(),
        }
    }

    /// `true` when the plan holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled fault events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The full schedule, sorted by onset.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Link-affecting windows (outages and degradations), sorted by
    /// start.
    pub fn link_windows(&self) -> Vec<LinkWindow> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::LinkOutage { duration } => Some(LinkWindow {
                    start: e.at,
                    end: e.at.saturating_add(duration),
                    rate_factor: 0.0,
                }),
                FaultKind::LinkDegradation { duration, factor } => Some(LinkWindow {
                    start: e.at,
                    end: e.at.saturating_add(duration),
                    rate_factor: factor,
                }),
                _ => None,
            })
            .collect()
    }

    /// Straggler windows, sorted by start.
    pub fn straggler_windows(&self) -> Vec<StragglerWindow> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::Straggler { duration, factor } => Some(StragglerWindow {
                    start: e.at,
                    end: e.at.saturating_add(duration),
                    factor,
                }),
                _ => None,
            })
            .collect()
    }

    /// Instance-crash events as `(at, selector)` pairs, sorted by onset.
    pub fn crashes(&self) -> Vec<(SimTime, u64)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::InstanceCrash { selector } => Some((e.at, selector)),
                _ => None,
            })
            .collect()
    }
}

/// How a transfer priced against a set of [`LinkWindow`]s ends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransferOutcome {
    /// The transfer finishes at `at` (`>= start + nominal` when
    /// degradation windows stretched it).
    Completes {
        /// Completion instant.
        at: SimTime,
    },
    /// An outage cut the connection at `at`, with `fraction_done` of
    /// the bytes already across (resume input for a retry).
    Interrupted {
        /// Interruption instant (outage onset, or the transfer start if
        /// the link was already down).
        at: SimTime,
        /// Fraction of the transfer completed, in `[0, 1)`.
        fraction_done: f64,
    },
}

/// The effective link-rate factor at `t`: `0` if any outage window
/// covers `t`, otherwise the minimum factor over covering degradation
/// windows (`1.0` when none does).
fn rate_factor_at(windows: &[LinkWindow], t: SimTime) -> f64 {
    windows
        .iter()
        .filter(|w| w.start <= t && t < w.end)
        .map(|w| w.rate_factor)
        .fold(1.0, f64::min)
}

/// Walk a transfer of nominal duration `nominal` starting at `start`
/// across the fault windows.
///
/// When no window overlaps the transfer this returns *exactly*
/// `start + nominal` (pure integer arithmetic — the fault-free path is
/// bit-identical to not pricing at all). Degradation stretches the
/// transfer by `1/factor` inside each window; hitting an outage (or
/// starting inside one) interrupts it at the outage boundary with the
/// fraction completed so far.
pub fn transfer_outcome(
    windows: &[LinkWindow],
    start: SimTime,
    nominal: SimDuration,
) -> TransferOutcome {
    let nominal_end = start.saturating_add(nominal);
    // Fast path: nothing overlaps [start, start + nominal) — exact.
    if windows
        .iter()
        .all(|w| w.end <= start || w.start >= nominal_end)
    {
        return TransferOutcome::Completes { at: nominal_end };
    }
    let total = nominal.as_secs_f64();
    if total <= 0.0 {
        // A zero-length transfer can still start inside an outage.
        if rate_factor_at(windows, start) == 0.0 {
            return TransferOutcome::Interrupted {
                at: start,
                fraction_done: 0.0,
            };
        }
        return TransferOutcome::Completes { at: nominal_end };
    }
    let mut done = 0.0f64;
    let mut t = start;
    loop {
        let factor = rate_factor_at(windows, t);
        if factor <= 0.0 {
            return TransferOutcome::Interrupted {
                at: t,
                fraction_done: (done / total).clamp(0.0, 1.0 - 1e-9),
            };
        }
        // The next instant the effective rate could change.
        let boundary = windows
            .iter()
            .flat_map(|w| [w.start, w.end])
            .filter(|&b| b > t)
            .min();
        let needed = SimDuration::from_secs_f64((total - done) / factor);
        let finish = t.saturating_add(needed);
        match boundary {
            Some(b) if b < finish => {
                done += (b - t).as_secs_f64() * factor;
                t = b;
            }
            _ => return TransferOutcome::Completes { at: finish },
        }
    }
}

/// The earliest instant `>= t` at which the link is up (outside every
/// outage window). Retries that need the network wait at least until
/// then.
pub fn link_available_at(windows: &[LinkWindow], t: SimTime) -> SimTime {
    let mut t = t;
    loop {
        let covering = windows
            .iter()
            .filter(|w| w.rate_factor == 0.0 && w.start <= t && t < w.end)
            .map(|w| w.end)
            .max();
        match covering {
            Some(end) => t = end,
            None => return t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs_f64(s)
    }

    #[test]
    fn inert_config_generates_empty_plan() {
        assert!(FaultPlan::generate(&FaultConfig::none(), 42).is_empty());
        assert!(FaultPlan::generate(&FaultConfig::scaled(0.0), 42).is_empty());
        assert!(FaultConfig::scaled(0.0).is_inert());
    }

    #[test]
    fn same_seed_same_plan() {
        let cfg = FaultConfig::scaled(3.0);
        let a = FaultPlan::generate(&cfg, 0xDEAD);
        let b = FaultPlan::generate(&cfg, 0xDEAD);
        assert!(!a.is_empty());
        assert_eq!(a, b);
        let c = FaultPlan::generate(&cfg, 0xBEEF);
        assert_ne!(a, c, "different seeds give different schedules");
    }

    #[test]
    fn class_streams_are_independent() {
        // Turning a class off must not move the others' events.
        let full = FaultPlan::generate(&FaultConfig::scaled(2.0), 7);
        let mut no_crash = FaultConfig::scaled(2.0);
        no_crash.crash_rate_per_hour = 0.0;
        let partial = FaultPlan::generate(&no_crash, 7);
        let keep: Vec<_> = full
            .events()
            .iter()
            .filter(|e| !matches!(e.kind, FaultKind::InstanceCrash { .. }))
            .copied()
            .collect();
        assert_eq!(keep, partial.events());
    }

    #[test]
    fn events_are_sorted_and_inside_horizon() {
        let cfg = FaultConfig {
            horizon: SimDuration::from_secs(600),
            ..FaultConfig::scaled(30.0)
        };
        let plan = FaultPlan::generate(&cfg, 11);
        assert!(plan.len() > 4);
        let ends: Vec<_> = plan.events().windows(2).collect();
        assert!(ends.iter().all(|p| p[0].at <= p[1].at), "sorted by onset");
        assert!(plan.events().iter().all(|e| e.at < t(600.0)));
    }

    #[test]
    fn no_overlap_completes_exactly_at_nominal_end() {
        let windows = vec![LinkWindow {
            start: t(100.0),
            end: t(110.0),
            rate_factor: 0.0,
        }];
        let start = SimTime::from_micros(12_345);
        let nominal = SimDuration::from_micros(6_789);
        assert_eq!(
            transfer_outcome(&windows, start, nominal),
            TransferOutcome::Completes {
                at: start + nominal
            },
            "integer-exact when untouched by any window"
        );
        assert_eq!(
            transfer_outcome(&[], start, nominal),
            TransferOutcome::Completes {
                at: start + nominal
            }
        );
    }

    #[test]
    fn outage_interrupts_with_partial_progress() {
        // 10 s transfer starting at t=0; link dies at t=4.
        let windows = vec![LinkWindow {
            start: t(4.0),
            end: t(9.0),
            rate_factor: 0.0,
        }];
        match transfer_outcome(&windows, SimTime::ZERO, d(10.0)) {
            TransferOutcome::Interrupted { at, fraction_done } => {
                assert_eq!(at, t(4.0));
                assert!((fraction_done - 0.4).abs() < 1e-9, "40% made it");
            }
            other => panic!("expected interruption, got {other:?}"),
        }
    }

    #[test]
    fn starting_inside_an_outage_fails_immediately() {
        let windows = vec![LinkWindow {
            start: t(1.0),
            end: t(5.0),
            rate_factor: 0.0,
        }];
        match transfer_outcome(&windows, t(2.0), d(3.0)) {
            TransferOutcome::Interrupted { at, fraction_done } => {
                assert_eq!(at, t(2.0));
                assert_eq!(fraction_done, 0.0);
            }
            other => panic!("expected interruption, got {other:?}"),
        }
        assert_eq!(link_available_at(&windows, t(2.0)), t(5.0));
        assert_eq!(link_available_at(&windows, t(6.0)), t(6.0));
    }

    #[test]
    fn degradation_stretches_the_transfer() {
        // 10 s nominal at factor 0.5 covering the whole transfer → 20 s.
        let windows = vec![LinkWindow {
            start: SimTime::ZERO,
            end: t(1000.0),
            rate_factor: 0.5,
        }];
        match transfer_outcome(&windows, SimTime::ZERO, d(10.0)) {
            TransferOutcome::Completes { at } => {
                assert!((at.as_secs_f64() - 20.0).abs() < 1e-6, "at {at}");
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn partial_degradation_walks_segments() {
        // 10 s nominal; first 5 s run at factor 0.5 (2.5 s of work done),
        // remaining 7.5 s of work at full rate → completes at 12.5 s.
        let windows = vec![LinkWindow {
            start: SimTime::ZERO,
            end: t(5.0),
            rate_factor: 0.5,
        }];
        match transfer_outcome(&windows, SimTime::ZERO, d(10.0)) {
            TransferOutcome::Completes { at } => {
                assert!((at.as_secs_f64() - 12.5).abs() < 1e-6, "at {at}");
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn degradation_into_outage_interrupts_with_degraded_progress() {
        // Factor 0.5 over [0, 4), outage at 4: 2 s of 10 s done → 20%.
        let windows = vec![
            LinkWindow {
                start: SimTime::ZERO,
                end: t(4.0),
                rate_factor: 0.5,
            },
            LinkWindow {
                start: t(4.0),
                end: t(6.0),
                rate_factor: 0.0,
            },
        ];
        match transfer_outcome(&windows, SimTime::ZERO, d(10.0)) {
            TransferOutcome::Interrupted { at, fraction_done } => {
                assert_eq!(at, t(4.0));
                assert!((fraction_done - 0.2).abs() < 1e-9);
            }
            other => panic!("expected interruption, got {other:?}"),
        }
    }

    #[test]
    fn overlapping_windows_take_the_minimum_factor() {
        let windows = vec![
            LinkWindow {
                start: SimTime::ZERO,
                end: t(100.0),
                rate_factor: 0.8,
            },
            LinkWindow {
                start: SimTime::ZERO,
                end: t(100.0),
                rate_factor: 0.25,
            },
        ];
        assert_eq!(rate_factor_at(&windows, t(1.0)), 0.25);
        match transfer_outcome(&windows, SimTime::ZERO, d(1.0)) {
            TransferOutcome::Completes { at } => {
                assert!((at.as_secs_f64() - 4.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn window_extraction_partitions_the_plan() {
        let plan = FaultPlan::generate(&FaultConfig::scaled(4.0), 99);
        let links = plan.link_windows().len();
        let stragglers = plan.straggler_windows().len();
        let crashes = plan.crashes().len();
        assert_eq!(links + stragglers + crashes, plan.len());
        assert!(plan
            .link_windows()
            .iter()
            .all(|w| w.end > w.start && (0.0..=1.0).contains(&w.rate_factor)));
        assert!(plan.straggler_windows().iter().all(|w| w.factor >= 1.0));
    }
}
