//! Shared-resource models.
//!
//! Two contention models cover everything the Rattrap simulation needs:
//!
//! * [`FairShareResource`] — max–min fair sharing of a divisible capacity
//!   among concurrent jobs, each individually rate-capped. Models a
//!   multi-core CPU under processor sharing (capacity = total cores,
//!   per-job cap = 1 core) and a disk or network link under bandwidth
//!   sharing (capacity = device bandwidth, per-job cap = stream limit).
//! * [`MemoryPool`] — simple reserve/release accounting with a peak-usage
//!   watermark, used for container/VM memory footprints (Table I).
//!
//! The fair-share model is *exact* for homogeneous per-job caps: between
//! mutations, every active job progresses at
//! `min(per_job_cap, capacity / n)` units per second. Callers drive the
//! model from an event loop: mutate, then ask [`FairShareResource::next_completion`]
//! and schedule that instant; on any later mutation the previously
//! scheduled completion must be re-validated (the canonical pattern is to
//! re-query after every event).

use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Identifier of a job executing on a [`FairShareResource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// A divisible capacity shared max–min fairly between jobs.
#[derive(Debug, Clone)]
pub struct FairShareResource {
    /// Total capacity in units/second (e.g. core-seconds/s, bytes/s).
    capacity: f64,
    /// Upper bound on any single job's rate (units/second).
    per_job_cap: f64,
    /// Remaining work per active job, in units.
    jobs: BTreeMap<u64, f64>,
    next_id: u64,
    last_update: SimTime,
    /// Total units of work completed since construction.
    completed_work: f64,
}

impl FairShareResource {
    /// Create a resource with `capacity` units/s shared among jobs capped
    /// at `per_job_cap` units/s each.
    ///
    /// # Panics
    /// Panics if either argument is not strictly positive and finite.
    pub fn new(capacity: f64, per_job_cap: f64) -> Self {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "capacity must be positive"
        );
        assert!(
            per_job_cap > 0.0 && per_job_cap.is_finite(),
            "per-job cap must be positive"
        );
        FairShareResource {
            capacity,
            per_job_cap,
            jobs: BTreeMap::new(),
            next_id: 0,
            last_update: SimTime::ZERO,
            completed_work: 0.0,
        }
    }

    /// Total capacity, in units/second.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Change the total capacity (degradation/restoration epochs).
    /// Callers must [`advance_to`](Self::advance_to) the mutation
    /// instant *first* so work already done is charged at the old rate,
    /// and must re-validate any scheduled completion afterwards.
    ///
    /// # Panics
    /// Panics if `capacity` is not strictly positive and finite.
    pub fn set_capacity(&mut self, capacity: f64) {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "capacity must be positive"
        );
        self.capacity = capacity;
    }

    /// Number of currently active jobs.
    pub fn active_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Rate each active job currently receives (units/second).
    pub fn per_job_rate(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            self.per_job_cap.min(self.capacity / self.jobs.len() as f64)
        }
    }

    /// Fraction of the total capacity currently in use, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            (self.per_job_rate() * self.jobs.len() as f64 / self.capacity).min(1.0)
        }
    }

    /// Total units of work completed so far (across removed and active jobs).
    pub fn completed_work(&self) -> f64 {
        self.completed_work
    }

    /// Advance internal bookkeeping to `now`, consuming work on all
    /// active jobs. Must be called with a monotonically non-decreasing
    /// clock; calls with `now < last_update` are ignored.
    pub fn advance_to(&mut self, now: SimTime) {
        if now <= self.last_update {
            return;
        }
        let dt = (now - self.last_update).as_secs_f64();
        let rate = self.per_job_rate();
        if rate > 0.0 {
            for remaining in self.jobs.values_mut() {
                let done = (rate * dt).min(*remaining);
                *remaining -= done;
                self.completed_work += done;
            }
        }
        self.last_update = now;
    }

    /// Add a job with `work` units at time `now`. Returns its id.
    ///
    /// # Panics
    /// Panics if `work` is negative or non-finite.
    pub fn add_job(&mut self, now: SimTime, work: f64) -> JobId {
        assert!(work >= 0.0 && work.is_finite(), "work must be non-negative");
        self.advance_to(now);
        let id = self.next_id;
        self.next_id += 1;
        self.jobs.insert(id, work);
        JobId(id)
    }

    /// Remaining work for `job`, or `None` if unknown/finished-and-removed.
    pub fn remaining(&self, job: JobId) -> Option<f64> {
        self.jobs.get(&job.0).copied()
    }

    /// Remove a job (completed or aborted) at time `now`. Returns the
    /// work that was still outstanding, or `None` if the id is unknown.
    pub fn remove_job(&mut self, now: SimTime, job: JobId) -> Option<f64> {
        self.advance_to(now);
        self.jobs.remove(&job.0)
    }

    /// The earliest instant at which some active job finishes, assuming
    /// no further mutations, along with that job's id. Jobs that are
    /// already at zero remaining work complete "now".
    ///
    /// Ties resolve to the lowest job id, keeping the simulation
    /// deterministic.
    pub fn next_completion(&self) -> Option<(SimTime, JobId)> {
        let rate = self.per_job_rate();
        if rate <= 0.0 {
            return None;
        }
        let (&id, &rem) = self.jobs.iter().min_by(|a, b| {
            a.1.partial_cmp(b.1)
                .expect("work is finite")
                .then(a.0.cmp(b.0))
        })?;
        let dt = SimDuration::from_secs_f64(rem / rate);
        Some((self.last_update.saturating_add(dt), JobId(id)))
    }
}

/// Reserve/release memory accounting with a peak watermark.
#[derive(Debug, Clone)]
pub struct MemoryPool {
    capacity: u64,
    used: u64,
    peak: u64,
}

/// Error returned when a reservation exceeds the pool capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested by the failed reservation.
    pub requested: u64,
    /// Bytes that were still available.
    pub available: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

impl MemoryPool {
    /// A pool holding `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        MemoryPool {
            capacity,
            used: 0,
            peak: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }

    /// High-water mark of reserved bytes.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Reserve `bytes`, failing if the pool would overflow.
    pub fn reserve(&mut self, bytes: u64) -> Result<(), OutOfMemory> {
        if bytes > self.available() {
            return Err(OutOfMemory {
                requested: bytes,
                available: self.available(),
            });
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        Ok(())
    }

    /// Release `bytes`. Releasing more than is reserved is a logic error;
    /// the pool saturates at zero and debug builds panic.
    pub fn release(&mut self, bytes: u64) {
        debug_assert!(bytes <= self.used, "released more than reserved");
        self.used = self.used.saturating_sub(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn single_job_runs_at_cap() {
        // 12-core machine, job capped at 1 core, 2 core-seconds of work.
        let mut cpu = FairShareResource::new(12.0, 1.0);
        let j = cpu.add_job(SimTime::ZERO, 2.0);
        let (done, id) = cpu.next_completion().unwrap();
        assert_eq!(id, j);
        assert!((done.as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn jobs_share_when_oversubscribed() {
        // 2 units/s capacity, cap 2/s each, two jobs of 2 units → each
        // gets 1 unit/s → both finish at t=2.
        let mut r = FairShareResource::new(2.0, 2.0);
        r.add_job(SimTime::ZERO, 2.0);
        r.add_job(SimTime::ZERO, 2.0);
        let (done, _) = r.next_completion().unwrap();
        assert!((done.as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn departure_speeds_up_survivor() {
        let mut r = FairShareResource::new(1.0, 1.0);
        let a = r.add_job(SimTime::ZERO, 1.0);
        let b = r.add_job(SimTime::ZERO, 3.0);
        // Both run at 0.5/s. a finishes at t=2.
        let (ta, ja) = r.next_completion().unwrap();
        assert_eq!(ja, a);
        assert!((ta.as_secs_f64() - 2.0).abs() < 1e-6);
        r.remove_job(ta, a);
        // b has 2.0 left and now runs at 1/s → finishes at t=4.
        let (tb, jb) = r.next_completion().unwrap();
        assert_eq!(jb, b);
        assert!((tb.as_secs_f64() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn utilization_tracks_active_jobs() {
        let mut cpu = FairShareResource::new(4.0, 1.0);
        assert_eq!(cpu.utilization(), 0.0);
        cpu.add_job(SimTime::ZERO, 10.0);
        assert!((cpu.utilization() - 0.25).abs() < 1e-9);
        for _ in 0..7 {
            cpu.add_job(SimTime::ZERO, 10.0);
        }
        // 8 jobs on 4 cores: saturated.
        assert!((cpu.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn completed_work_accumulates() {
        let mut r = FairShareResource::new(1.0, 1.0);
        let j = r.add_job(SimTime::ZERO, 5.0);
        r.advance_to(t(2.0));
        assert!((r.completed_work() - 2.0).abs() < 1e-9);
        assert!((r.remaining(j).unwrap() - 3.0).abs() < 1e-9);
        r.remove_job(t(5.0), j);
        assert!((r.completed_work() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn advance_ignores_time_travel() {
        let mut r = FairShareResource::new(1.0, 1.0);
        let j = r.add_job(t(5.0), 10.0);
        r.advance_to(t(1.0)); // earlier than last update; ignored
        assert!((r.remaining(j).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_work_job_completes_immediately() {
        let mut r = FairShareResource::new(1.0, 1.0);
        let j = r.add_job(t(3.0), 0.0);
        let (done, id) = r.next_completion().unwrap();
        assert_eq!(id, j);
        assert_eq!(done, t(3.0));
    }

    #[test]
    fn completion_ties_break_by_lowest_id() {
        let mut r = FairShareResource::new(2.0, 1.0);
        let a = r.add_job(SimTime::ZERO, 1.0);
        let _b = r.add_job(SimTime::ZERO, 1.0);
        assert_eq!(r.next_completion().unwrap().1, a);
    }

    #[test]
    fn memory_pool_accounting() {
        let mut m = MemoryPool::new(1024);
        m.reserve(512).unwrap();
        m.reserve(256).unwrap();
        assert_eq!(m.used(), 768);
        assert_eq!(m.peak(), 768);
        m.release(512);
        assert_eq!(m.used(), 256);
        assert_eq!(m.peak(), 768, "peak is a watermark");
        let err = m.reserve(10_000).unwrap_err();
        assert_eq!(err.available, 768);
        assert_eq!(m.used(), 256, "failed reserve leaves pool untouched");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        FairShareResource::new(0.0, 1.0);
    }
}
