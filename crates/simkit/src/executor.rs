//! Generic fair-share execution engine.
//!
//! Every contended device in the workspace — server CPU, offloading
//! disk, device-side CPU, shared network links — follows the same
//! event-loop pattern on top of [`FairShareResource`]: submit work,
//! schedule a completion check at the predicted next-finish instant,
//! and invalidate stale checks whenever the job set mutates (a
//! mutation changes every job's rate, so previously predicted finish
//! times are wrong). [`FairShareExecutor`] owns that pattern once:
//!
//! * it assigns [`JobId`]s and maps them to caller payloads,
//! * [`FairShareExecutor::reschedule`] bumps the *epoch* and schedules
//!   the next completion-check event into the caller's [`EventQueue`],
//! * [`FairShareExecutor::poll`] rejects checks carrying a stale epoch
//!   and otherwise drains every finished job (remaining work ≤
//!   [`WORK_EPS`]) in ascending job-id order — deterministically.
//!
//! The caller stays in charge of its own event type: `reschedule`
//! takes a constructor closure from the fresh epoch to an event, so an
//! executor embeds in any simulation without dynamic dispatch.

use crate::event::{EventId, EventQueue};
use crate::resource::{FairShareResource, JobId};
use crate::time::{SimDuration, SimTime};
use obsv::{attrs, AttrValue, Counter, Recorder, SpanId, Subsystem};
use std::collections::BTreeMap;

/// Work remaining at or below this is "done" (float slack on
/// resources). Shared by every executor-driven device so completion
/// semantics never drift between them.
pub const WORK_EPS: f64 = 1e-9;

/// Completion instants round to the microsecond grid; scheduling a
/// hair early would find the job with a sliver of work left and spin.
const CHECK_SLACK: SimDuration = SimDuration::from_micros(2);

/// Observability hooks for an instrumented executor: one span per
/// job (opened at submit, closed at completion/cancellation, parented
/// under the recorder's ambient span) plus epoch counters. Purely
/// observational — never feeds back into scheduling.
#[derive(Debug, Clone)]
struct ExecObs {
    rec: Recorder,
    device: &'static str,
    job_spans: BTreeMap<u64, SpanId>,
    reschedules: Counter,
    stale_polls: Counter,
    completions: Counter,
}

/// A fair-shared device plus the epoch/job-map bookkeeping needed to
/// drive it from a discrete-event loop. `T` is the caller's per-job
/// payload (typically a request index), returned on completion.
#[derive(Debug, Clone)]
pub struct FairShareExecutor<T> {
    resource: FairShareResource,
    epoch: u64,
    jobs: BTreeMap<u64, T>,
    /// Handle of the outstanding completion-check event, cancelled on
    /// the next [`FairShareExecutor::reschedule`] (when
    /// [`FairShareExecutor::eager_check_cancel`] is on) so superseded
    /// checks never surface from the queue. The epoch stamp stays as
    /// defense in depth either way.
    pending: Option<EventId>,
    /// Cancel superseded checks eagerly instead of letting them pop as
    /// stale-epoch no-ops. Off by default: consumers whose golden
    /// digests pin the historical pop stream (the rattrap host closes
    /// a float-accumulating sampler interval at *every* pop, so even
    /// semantically-neutral pop removal is bit-visible) must keep the
    /// legacy stream.
    eager_cancel: bool,
    obs: Option<ExecObs>,
}

impl<T> FairShareExecutor<T> {
    /// An executor over a fresh device with `capacity` units/s shared
    /// among jobs individually capped at `per_job_cap` units/s.
    ///
    /// # Panics
    /// Panics if either argument is not strictly positive and finite
    /// (see [`FairShareResource::new`]).
    pub fn new(capacity: f64, per_job_cap: f64) -> Self {
        Self::from_resource(FairShareResource::new(capacity, per_job_cap))
    }

    /// Wrap an existing resource.
    pub fn from_resource(resource: FairShareResource) -> Self {
        FairShareExecutor {
            resource,
            epoch: 0,
            jobs: BTreeMap::new(),
            pending: None,
            eager_cancel: false,
            obs: None,
        }
    }

    /// Report into `rec` as device `device` ("cpu", "disk", …): one
    /// span per job plus reschedule / stale-poll / completion
    /// counters. A disabled recorder keeps the executor on its
    /// zero-cost path.
    pub fn instrument(&mut self, rec: Recorder, device: &'static str) {
        if !rec.is_enabled() {
            self.obs = None;
            return;
        }
        let counter = |suffix: &str| rec.counter(&format!("simkit.{device}.{suffix}"));
        self.obs = Some(ExecObs {
            reschedules: counter("reschedules"),
            stale_polls: counter("stale_polls"),
            completions: counter("completions"),
            rec,
            device,
            job_spans: BTreeMap::new(),
        });
    }

    /// Cancel superseded completion checks out of the queue instead of
    /// letting them surface as stale-epoch no-op pops. O(1) per
    /// reschedule on the timing-wheel queue and semantically neutral —
    /// stale checks are rejected by the epoch guard either way — but
    /// it *changes the pop stream*, so consumers that derive
    /// order-sensitive float accumulations from raw pops (the rattrap
    /// host's per-pop sampler, pinned by the golden digests) must not
    /// enable it. The same `queue` must then drive the executor for
    /// its whole lifetime (every caller in the workspace already
    /// does); generation-tagged [`EventId`]s make a mismatched cancel
    /// a harmless miss rather than an aliased cancellation.
    pub fn eager_check_cancel(&mut self) {
        self.eager_cancel = true;
    }

    /// The underlying shared device (read-only; mutations must go
    /// through the executor so the bookkeeping stays consistent).
    pub fn resource(&self) -> &FairShareResource {
        &self.resource
    }

    /// Number of jobs currently executing.
    pub fn active_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when no job is executing.
    pub fn is_idle(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Current scheduling epoch (advances on every [`reschedule`]).
    ///
    /// [`reschedule`]: FairShareExecutor::reschedule
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Submit `work` units at `now`, tagged with `payload`. The caller
    /// must follow up with [`reschedule`] (after any batch of
    /// submissions) so a completion check covers the new job.
    ///
    /// [`reschedule`]: FairShareExecutor::reschedule
    pub fn submit(&mut self, now: SimTime, work: f64, payload: T) -> JobId {
        let job = self.resource.add_job(now, work);
        self.jobs.insert(job.0, payload);
        if let Some(obs) = &mut self.obs {
            let span = obs.rec.span_start_at(
                Subsystem::Simkit,
                obs.device,
                SpanId::NONE,
                now.as_micros(),
                attrs![
                    ("job", AttrValue::U64(job.0)),
                    ("work", AttrValue::F64(work)),
                ],
            );
            obs.job_spans.insert(job.0, span);
        }
        job
    }

    /// Abort a job, returning its payload (or `None` if unknown).
    pub fn cancel(&mut self, now: SimTime, job: JobId) -> Option<T> {
        let payload = self.jobs.remove(&job.0)?;
        self.resource.remove_job(now, job);
        if let Some(obs) = &mut self.obs {
            if let Some(span) = obs.job_spans.remove(&job.0) {
                obs.rec.span_end_at(
                    span,
                    now.as_micros(),
                    attrs![("cancelled", AttrValue::Bool(true))],
                );
            }
        }
        Some(payload)
    }

    /// Work still outstanding on `job` as of `now` (advances the
    /// device first so the answer reflects progress up to `now`), or
    /// `None` if the job is unknown. The caller must follow up with
    /// [`reschedule`] if it mutates the job set based on the answer.
    ///
    /// [`reschedule`]: FairShareExecutor::reschedule
    pub fn remaining(&mut self, now: SimTime, job: JobId) -> Option<f64> {
        self.resource.advance_to(now);
        self.resource.remaining(job)
    }

    /// Change the device capacity at `now` (degradation/restoration
    /// epochs): work done so far is charged at the old rate, then the
    /// new rate applies. The caller must follow up with [`reschedule`]
    /// — the predicted completion instants are all stale.
    ///
    /// # Panics
    /// Panics if `capacity` is not strictly positive and finite.
    ///
    /// [`reschedule`]: FairShareExecutor::reschedule
    pub fn set_capacity(&mut self, now: SimTime, capacity: f64) {
        self.resource.advance_to(now);
        self.resource.set_capacity(capacity);
        if let Some(obs) = &self.obs {
            obs.rec.instant_at(
                Subsystem::Simkit,
                "set_capacity",
                now.as_micros(),
                attrs![
                    ("device", AttrValue::Str(obs.device)),
                    ("capacity", AttrValue::F64(capacity)),
                ],
            );
        }
    }

    /// Advance the device to `now`, invalidate any outstanding
    /// completion check (cancelling its event *and* bumping the
    /// epoch), and — if jobs remain — schedule a fresh check into
    /// `queue` at the predicted next completion (with grid slack),
    /// built by `make_event` from the new epoch.
    ///
    /// With [`eager_check_cancel`] enabled, the superseded check is
    /// also cancelled out of the queue (O(1) on the timing wheel), so
    /// the executor keeps **at most one** check event resident per
    /// device regardless of how often the job set mutates — instead of
    /// a trail of stale-epoch pops.
    ///
    /// [`eager_check_cancel`]: FairShareExecutor::eager_check_cancel
    pub fn reschedule<E>(
        &mut self,
        now: SimTime,
        queue: &mut EventQueue<E>,
        make_event: impl FnOnce(u64) -> E,
    ) {
        self.resource.advance_to(now);
        self.epoch += 1;
        if let Some(id) = self.pending.take() {
            if self.eager_cancel {
                queue.cancel(id);
            }
        }
        if let Some(obs) = &self.obs {
            obs.reschedules.inc();
        }
        if let Some((t, _)) = self.resource.next_completion() {
            self.pending = Some(queue.schedule(t.max(now) + CHECK_SLACK, make_event(self.epoch)));
        }
    }

    /// Handle a completion-check event stamped with `epoch`.
    ///
    /// Returns `None` for a stale check (a newer [`reschedule`]
    /// superseded it — the event must be ignored). Otherwise advances
    /// the device to `now` and drains every job whose remaining work is
    /// at or below [`WORK_EPS`], in ascending job-id order, returning
    /// `(id, payload)` pairs. The caller processes the completions and
    /// then calls [`reschedule`] once to cover the survivors.
    ///
    /// [`reschedule`]: FairShareExecutor::reschedule
    pub fn poll(&mut self, now: SimTime, epoch: u64) -> Option<Vec<(JobId, T)>> {
        if epoch != self.epoch {
            if let Some(obs) = &self.obs {
                obs.stale_polls.inc();
            }
            return None;
        }
        // This check just fired; its handle is spent.
        self.pending = None;
        self.resource.advance_to(now);
        let finished: Vec<u64> = self
            .jobs
            .keys()
            .copied()
            .filter(|&j| {
                self.resource
                    .remaining(JobId(j))
                    .map(|r| r <= WORK_EPS)
                    .unwrap_or(false)
            })
            .collect();
        let mut out = Vec::with_capacity(finished.len());
        for j in finished {
            let payload = self.jobs.remove(&j).expect("tracked job");
            self.resource.remove_job(now, JobId(j));
            if let Some(obs) = &mut self.obs {
                obs.completions.inc();
                if let Some(span) = obs.job_spans.remove(&j) {
                    obs.rec.span_end_at(span, now.as_micros(), Vec::new());
                }
            }
            out.push((JobId(j), payload));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Ev {
        Check(u64),
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    /// Drive an executor through its queue until idle; returns
    /// completions as (finish time, payload).
    fn drain(exec: &mut FairShareExecutor<u32>, queue: &mut EventQueue<Ev>) -> Vec<(SimTime, u32)> {
        let mut done = Vec::new();
        while let Some((now, Ev::Check(epoch))) = queue.pop() {
            let Some(finished) = exec.poll(now, epoch) else {
                continue;
            };
            for (_, payload) in finished {
                done.push((now, payload));
            }
            exec.reschedule(now, queue, Ev::Check);
        }
        done
    }

    #[test]
    fn single_job_completes_at_predicted_instant() {
        let mut exec = FairShareExecutor::new(1.0, 1.0);
        let mut queue = EventQueue::new();
        exec.submit(SimTime::ZERO, 3.0, 7u32);
        exec.reschedule(SimTime::ZERO, &mut queue, Ev::Check);
        let done = drain(&mut exec, &mut queue);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, 7);
        assert!((done[0].0.as_secs_f64() - 3.0).abs() < 1e-3);
        assert!(exec.is_idle());
    }

    #[test]
    fn stale_epoch_is_rejected() {
        let mut exec = FairShareExecutor::new(1.0, 1.0);
        let mut queue: EventQueue<Ev> = EventQueue::new();
        exec.submit(SimTime::ZERO, 5.0, 1u32);
        exec.reschedule(SimTime::ZERO, &mut queue, Ev::Check);
        let stale = exec.epoch();
        // A later submission invalidates the outstanding check.
        exec.submit(t(1.0), 5.0, 2u32);
        exec.reschedule(t(1.0), &mut queue, Ev::Check);
        assert_eq!(
            exec.poll(t(2.0), stale),
            None,
            "stale check must be ignored"
        );
        assert_eq!(exec.active_jobs(), 2, "stale poll must not drain jobs");
    }

    #[test]
    fn contending_jobs_fair_share_and_finish_in_work_order() {
        let mut exec = FairShareExecutor::new(1.0, 1.0);
        let mut queue = EventQueue::new();
        // Two jobs from t=0: 1 unit and 3 units at 0.5/s each.
        exec.submit(SimTime::ZERO, 1.0, 10u32);
        exec.submit(SimTime::ZERO, 3.0, 30u32);
        exec.reschedule(SimTime::ZERO, &mut queue, Ev::Check);
        let done = drain(&mut exec, &mut queue);
        assert_eq!(
            done.iter().map(|&(_, p)| p).collect::<Vec<_>>(),
            vec![10, 30]
        );
        // 1-unit job: shared until t=2. 3-unit job: 2 left at t=2, alone → t=4.
        assert!((done[0].0.as_secs_f64() - 2.0).abs() < 1e-3);
        assert!((done[1].0.as_secs_f64() - 4.0).abs() < 1e-3);
    }

    #[test]
    fn simultaneous_completions_drain_in_job_id_order() {
        let mut exec = FairShareExecutor::new(2.0, 1.0);
        let mut queue = EventQueue::new();
        exec.submit(SimTime::ZERO, 1.0, 100u32);
        exec.submit(SimTime::ZERO, 1.0, 200u32);
        exec.reschedule(SimTime::ZERO, &mut queue, Ev::Check);
        let done = drain(&mut exec, &mut queue);
        assert_eq!(
            done.iter().map(|&(_, p)| p).collect::<Vec<_>>(),
            vec![100, 200]
        );
        assert_eq!(done[0].0, done[1].0, "both finish at the same instant");
    }

    #[test]
    fn cancel_removes_job_and_returns_payload() {
        let mut exec = FairShareExecutor::new(1.0, 1.0);
        let job = exec.submit(SimTime::ZERO, 5.0, 9u32);
        assert_eq!(exec.cancel(t(1.0), job), Some(9));
        assert_eq!(exec.cancel(t(1.0), job), None);
        assert!(exec.is_idle());
    }

    #[test]
    fn instrumented_executor_records_job_spans_and_counters() {
        use obsv::{Recorder, RecorderConfig, TraceEvent};
        let rec = Recorder::enabled(RecorderConfig::default());
        let mut exec = FairShareExecutor::new(1.0, 1.0);
        exec.instrument(rec.clone(), "cpu");
        let mut queue = EventQueue::new();
        exec.submit(SimTime::ZERO, 2.0, 1u32);
        let doomed = exec.submit(SimTime::ZERO, 9.0, 2u32);
        exec.reschedule(SimTime::ZERO, &mut queue, Ev::Check);
        exec.cancel(t(1.0), doomed);
        exec.reschedule(t(1.0), &mut queue, Ev::Check);
        drain(&mut exec, &mut queue);
        let snap = rec.snapshot();
        let begins = snap
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Begin { name: "cpu", .. }))
            .count();
        let ends = snap
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::End { .. }))
            .count();
        assert_eq!(begins, 2, "one span per submitted job");
        assert_eq!(ends, 2, "cancelled + completed both close");
        assert_eq!(snap.counters["simkit.cpu.completions"], 1);
        assert!(snap.counters["simkit.cpu.reschedules"] >= 2);
        assert!(snap
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::End { attrs, .. } if !attrs.is_empty())));
    }

    #[test]
    fn instrumentation_does_not_change_completion_times() {
        let run = |instrument: bool| {
            let mut exec = FairShareExecutor::new(1.0, 1.0);
            if instrument {
                exec.instrument(
                    obsv::Recorder::enabled(obsv::RecorderConfig::default()),
                    "cpu",
                );
            }
            let mut queue = EventQueue::new();
            exec.submit(SimTime::ZERO, 1.0, 10u32);
            exec.submit(SimTime::ZERO, 3.0, 30u32);
            exec.reschedule(SimTime::ZERO, &mut queue, Ev::Check);
            drain(&mut exec, &mut queue)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn reschedule_keeps_at_most_one_check_resident() {
        let mut exec = FairShareExecutor::new(1.0, 1.0);
        exec.eager_check_cancel();
        let mut queue: EventQueue<Ev> = EventQueue::new();
        exec.submit(SimTime::ZERO, 100.0, 1u32);
        // A mutation-heavy pattern: every submit triggers a reschedule,
        // which previously left the superseded check behind as a
        // stale-epoch event. Now it is cancelled eagerly.
        for i in 0..50 {
            exec.submit(t(0.001 * f64::from(i)), 100.0, i as u32);
            exec.reschedule(t(0.001 * f64::from(i)), &mut queue, Ev::Check);
            assert_eq!(queue.len(), 1, "exactly one completion check resident");
        }
        // And the surviving check is the live one: draining completes
        // every job without a single stale pop.
        let done = drain(&mut exec, &mut queue);
        assert_eq!(done.len(), 51);
        assert!(exec.is_idle());
        assert!(queue.is_empty());
    }

    #[test]
    fn no_check_scheduled_when_idle() {
        let mut exec: FairShareExecutor<u32> = FairShareExecutor::new(1.0, 1.0);
        let mut queue: EventQueue<Ev> = EventQueue::new();
        exec.reschedule(SimTime::ZERO, &mut queue, Ev::Check);
        assert!(queue.is_empty(), "idle executor schedules nothing");
    }
}
