//! Property-based tests for simkit invariants.

use proptest::prelude::*;
use simkit::{
    Cdf, EventQueue, FairShareExecutor, FairShareResource, OnlineStats, SimDuration, SimTime,
};

proptest! {
    /// Events always pop in non-decreasing time order, regardless of the
    /// scheduling order.
    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Equal-time events pop in scheduling (FIFO) order.
    #[test]
    fn event_queue_fifo_on_ties(n in 1usize..100, t in 0u64..1000) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::from_micros(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn event_queue_cancellation(spec in prop::collection::vec((0u64..1000, any::<bool>()), 1..100)) {
        let mut q = EventQueue::new();
        let mut expect = 0usize;
        let mut to_cancel = Vec::new();
        for &(t, cancel) in &spec {
            let id = q.schedule(SimTime::from_micros(t), ());
            if cancel {
                to_cancel.push(id);
            } else {
                expect += 1;
            }
        }
        for id in to_cancel {
            prop_assert!(q.cancel(id));
        }
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, expect);
    }

    /// Work is conserved on a fair-share resource: total completed work
    /// after all jobs drain equals the sum of submitted work.
    #[test]
    fn fair_share_conserves_work(
        jobs in prop::collection::vec((0.0f64..50.0, 0u64..10_000), 1..40),
        capacity in 0.5f64..16.0,
    ) {
        let mut r = FairShareResource::new(capacity, 1.0);
        let mut q = EventQueue::new();
        let mut submitted = 0.0;
        for &(work, at_us) in &jobs {
            q.schedule(SimTime::from_micros(at_us), work);
        }
        // Drive arrivals, then drain completions interleaved.
        let mut active = 0usize;
        loop {
            let next_arrival = q.peek_time();
            let next_done = r.next_completion();
            match (next_arrival, next_done) {
                (Some(ta), Some((td, jid))) if td <= ta => {
                    r.remove_job(td, jid);
                    active -= 1;
                }
                (Some(_), _) => {
                    let (t, work) = q.pop().unwrap();
                    submitted += work;
                    r.add_job(t, work);
                    active += 1;
                }
                (None, Some((td, jid))) => {
                    r.remove_job(td, jid);
                    active -= 1;
                }
                (None, None) => break,
            }
        }
        prop_assert_eq!(active, 0);
        prop_assert!((r.completed_work() - submitted).abs() < 1e-6 * submitted.max(1.0),
            "completed {} vs submitted {}", r.completed_work(), submitted);
    }

    /// OnlineStats::merge is equivalent to pushing sequentially, for any
    /// split point.
    #[test]
    fn stats_merge_associative(data in prop::collection::vec(-1e6f64..1e6, 2..200), split_frac in 0.0f64..1.0) {
        let split = ((data.len() as f64 * split_frac) as usize).min(data.len());
        let mut whole = OnlineStats::new();
        data.iter().for_each(|&x| whole.push(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        data[..split].iter().for_each(|&x| a.push(x));
        data[split..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
        prop_assert!((a.variance() - whole.variance()).abs() <= 1e-4 * whole.variance().abs().max(1.0));
    }

    /// CDF invariants: monotone, bounded, quantile within sample range.
    #[test]
    fn cdf_invariants(data in prop::collection::vec(-1e3f64..1e3, 1..300), q in 0.0f64..1.0) {
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let cdf = Cdf::from_samples(data);
        prop_assert_eq!(cdf.fraction_le(hi), 1.0);
        prop_assert_eq!(cdf.fraction_le(lo - 1.0), 0.0);
        let quant = cdf.quantile(q).unwrap();
        prop_assert!(quant >= lo && quant <= hi);
        // fraction_le is monotone in its argument.
        prop_assert!(cdf.fraction_le(lo) <= cdf.fraction_le((lo + hi) / 2.0));
        prop_assert!(cdf.fraction_le((lo + hi) / 2.0) <= cdf.fraction_le(hi));
    }

    /// Durations formed from seconds round-trip within 1 µs.
    #[test]
    fn duration_roundtrip(s in 0.0f64..1e6) {
        let d = SimDuration::from_secs_f64(s);
        prop_assert!((d.as_secs_f64() - s).abs() < 1e-6);
    }

    /// N simultaneously submitted jobs on a [`FairShareExecutor`]
    /// complete in work-proportional order: with equal fair shares,
    /// less work always finishes no later, and equal work drains in
    /// job-id order. Works are multiples of 0.01 core-seconds so
    /// distinct works are separated by far more than the executor's
    /// µs-quantized check instants.
    #[test]
    fn executor_completes_in_work_proportional_order(
        centiworks in prop::collection::vec(1u32..1000, 1..40),
        capacity in 0.5f64..8.0,
    ) {
        let mut exec: FairShareExecutor<usize> =
            FairShareExecutor::new(capacity, capacity);
        let mut q: EventQueue<u64> = EventQueue::new();
        let works: Vec<f64> = centiworks.iter().map(|&c| c as f64 / 100.0).collect();
        for (i, &w) in works.iter().enumerate() {
            exec.submit(SimTime::ZERO, w, i);
        }
        exec.reschedule(SimTime::ZERO, &mut q, |e| e);
        let mut completed: Vec<usize> = Vec::new();
        while let Some((now, epoch)) = q.pop() {
            let Some(finished) = exec.poll(now, epoch) else { continue };
            completed.extend(finished.into_iter().map(|(_, i)| i));
            exec.reschedule(now, &mut q, |e| e);
        }
        prop_assert_eq!(completed.len(), works.len(), "every job completes");
        prop_assert!(exec.is_idle());
        // Expected order: ascending (work, submission index).
        let mut expect: Vec<usize> = (0..works.len()).collect();
        expect.sort_by(|&a, &b| {
            works[a].partial_cmp(&works[b]).unwrap().then(a.cmp(&b))
        });
        prop_assert_eq!(completed, expect);
    }

    /// Total work served by a [`FairShareExecutor`] equals total work
    /// submitted within `WORK_EPS` per job, no matter how submissions
    /// interleave with completions.
    #[test]
    fn executor_serves_exactly_what_was_submitted(
        arrivals in prop::collection::vec((0u64..5_000_000, 0.01f64..5.0), 1..60),
        capacity in 0.5f64..4.0,
    ) {
        let mut exec: FairShareExecutor<f64> =
            FairShareExecutor::new(capacity, 1.0);
        #[derive(Clone)]
        enum Ev { Submit(f64), Check(u64) }
        let mut q: EventQueue<Ev> = EventQueue::new();
        let mut submitted = 0.0f64;
        for &(t, w) in &arrivals {
            q.schedule(SimTime::from_micros(t), Ev::Submit(w));
            submitted += w;
        }
        let mut served = 0.0f64;
        let mut completions = 0usize;
        while let Some((now, ev)) = q.pop() {
            match ev {
                Ev::Submit(w) => {
                    exec.submit(now, w, w);
                    exec.reschedule(now, &mut q, Ev::Check);
                }
                Ev::Check(epoch) => {
                    let Some(finished) = exec.poll(now, epoch) else { continue };
                    for (_, w) in finished {
                        served += w;
                        completions += 1;
                    }
                    exec.reschedule(now, &mut q, Ev::Check);
                }
            }
        }
        prop_assert_eq!(completions, arrivals.len(), "all jobs complete");
        prop_assert!(exec.is_idle());
        // Each completed job ran to within WORK_EPS of its work.
        prop_assert!(
            (served - submitted).abs() <= simkit::WORK_EPS * arrivals.len() as f64 + 1e-9,
            "served {} vs submitted {}", served, submitted
        );
    }
}

/// One step of the interleaved queue-vs-model equivalence property.
///
/// Push deltas are split into three bands so shrunken failures say
/// which wheel regime broke: `Near` stays within the bottom level
/// (and includes zero-delta same-timestamp bursts), `Mid` crosses
/// intermediate levels, and `Far` reaches the top level and the
/// beyond-horizon overflow heap (deltas up to 2^45 µs > the 2^42 µs
/// wheel horizon).
#[derive(Debug, Clone)]
enum QueueOp {
    PushNear(u64),
    PushMid(u64),
    PushFar(u64),
    Pop,
    Cancel(u64),
}

proptest! {
    /// The timing-wheel queue agrees with a plain sorted reference
    /// model over arbitrary push/pop/cancel interleavings: identical
    /// pop sequences (time *and* payload, so same-timestamp FIFO order
    /// is covered), identical `len` after every step (cancelled events
    /// leave the count immediately), and identical drain at the end.
    #[test]
    fn event_queue_matches_reference_model(
        ops in prop::collection::vec(
            // The vendored `prop_oneof!` is unweighted; duplicate arms
            // stand in for weights (pushes and pops dominate so runs
            // build real backlogs instead of ping-ponging empty).
            prop_oneof![
                (0u64..16).prop_map(QueueOp::PushNear),
                (0u64..16).prop_map(QueueOp::PushNear),
                (16u64..1 << 20).prop_map(QueueOp::PushMid),
                (1u64 << 20..1 << 45).prop_map(QueueOp::PushFar),
                Just(QueueOp::Pop),
                Just(QueueOp::Pop),
                Just(QueueOp::Pop),
                any::<u64>().prop_map(QueueOp::Cancel),
            ],
            1..300,
        )
    ) {
        let mut q = EventQueue::new();
        // Reference: (at, insertion_counter, tag, id). Pop = min by
        // (at, insertion_counter) — the documented FIFO tie contract.
        let mut model: Vec<(u64, u64, u64, simkit::EventId)> = Vec::new();
        let mut counter = 0u64;
        for op in ops {
            match op {
                QueueOp::PushNear(d) | QueueOp::PushMid(d) | QueueOp::PushFar(d) => {
                    let at = q.now().as_micros() + d;
                    let id = q.schedule(SimTime::from_micros(at), counter);
                    model.push((at, counter, counter, id));
                    counter += 1;
                }
                QueueOp::Pop => {
                    let expect = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(at, c, _, _))| (at, c))
                        .map(|(i, _)| i);
                    match expect {
                        Some(i) => {
                            let (at, _, tag, _) = model.remove(i);
                            let got = q.pop();
                            prop_assert_eq!(got, Some((SimTime::from_micros(at), tag)));
                        }
                        None => prop_assert_eq!(q.pop(), None),
                    }
                }
                QueueOp::Cancel(which) => {
                    if model.is_empty() {
                        continue;
                    }
                    let (_, _, _, id) = model.remove(which as usize % model.len());
                    prop_assert!(q.cancel(id), "live event must cancel");
                    prop_assert!(!q.cancel(id), "second cancel is a no-op");
                }
            }
            prop_assert_eq!(q.len(), model.len(), "len counts live events only");
            prop_assert_eq!(q.is_empty(), model.is_empty());
        }
        // Drain both to the end: full sequence equivalence.
        model.sort_by_key(|&(at, c, _, _)| (at, c));
        for (at, _, tag, _) in model {
            prop_assert_eq!(q.pop(), Some((SimTime::from_micros(at), tag)));
        }
        prop_assert_eq!(q.pop(), None);
        prop_assert_eq!(q.len(), 0);
    }
}
