//! Property-based tests for simkit invariants.

use proptest::prelude::*;
use simkit::{Cdf, EventQueue, FairShareResource, OnlineStats, SimDuration, SimTime};

proptest! {
    /// Events always pop in non-decreasing time order, regardless of the
    /// scheduling order.
    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Equal-time events pop in scheduling (FIFO) order.
    #[test]
    fn event_queue_fifo_on_ties(n in 1usize..100, t in 0u64..1000) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::from_micros(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn event_queue_cancellation(spec in prop::collection::vec((0u64..1000, any::<bool>()), 1..100)) {
        let mut q = EventQueue::new();
        let mut expect = 0usize;
        let mut to_cancel = Vec::new();
        for &(t, cancel) in &spec {
            let id = q.schedule(SimTime::from_micros(t), ());
            if cancel {
                to_cancel.push(id);
            } else {
                expect += 1;
            }
        }
        for id in to_cancel {
            prop_assert!(q.cancel(id));
        }
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, expect);
    }

    /// Work is conserved on a fair-share resource: total completed work
    /// after all jobs drain equals the sum of submitted work.
    #[test]
    fn fair_share_conserves_work(
        jobs in prop::collection::vec((0.0f64..50.0, 0u64..10_000), 1..40),
        capacity in 0.5f64..16.0,
    ) {
        let mut r = FairShareResource::new(capacity, 1.0);
        let mut q = EventQueue::new();
        let mut submitted = 0.0;
        for &(work, at_us) in &jobs {
            q.schedule(SimTime::from_micros(at_us), work);
        }
        // Drive arrivals, then drain completions interleaved.
        let mut active = 0usize;
        loop {
            let next_arrival = q.peek_time();
            let next_done = r.next_completion();
            match (next_arrival, next_done) {
                (Some(ta), Some((td, jid))) if td <= ta => {
                    r.remove_job(td, jid);
                    active -= 1;
                }
                (Some(_), _) => {
                    let (t, work) = q.pop().unwrap();
                    submitted += work;
                    r.add_job(t, work);
                    active += 1;
                }
                (None, Some((td, jid))) => {
                    r.remove_job(td, jid);
                    active -= 1;
                }
                (None, None) => break,
            }
        }
        prop_assert_eq!(active, 0);
        prop_assert!((r.completed_work() - submitted).abs() < 1e-6 * submitted.max(1.0),
            "completed {} vs submitted {}", r.completed_work(), submitted);
    }

    /// OnlineStats::merge is equivalent to pushing sequentially, for any
    /// split point.
    #[test]
    fn stats_merge_associative(data in prop::collection::vec(-1e6f64..1e6, 2..200), split_frac in 0.0f64..1.0) {
        let split = ((data.len() as f64 * split_frac) as usize).min(data.len());
        let mut whole = OnlineStats::new();
        data.iter().for_each(|&x| whole.push(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        data[..split].iter().for_each(|&x| a.push(x));
        data[split..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
        prop_assert!((a.variance() - whole.variance()).abs() <= 1e-4 * whole.variance().abs().max(1.0));
    }

    /// CDF invariants: monotone, bounded, quantile within sample range.
    #[test]
    fn cdf_invariants(data in prop::collection::vec(-1e3f64..1e3, 1..300), q in 0.0f64..1.0) {
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let cdf = Cdf::from_samples(data);
        prop_assert_eq!(cdf.fraction_le(hi), 1.0);
        prop_assert_eq!(cdf.fraction_le(lo - 1.0), 0.0);
        let quant = cdf.quantile(q).unwrap();
        prop_assert!(quant >= lo && quant <= hi);
        // fraction_le is monotone in its argument.
        prop_assert!(cdf.fraction_le(lo) <= cdf.fraction_le((lo + hi) / 2.0));
        prop_assert!(cdf.fraction_le((lo + hi) / 2.0) <= cdf.fraction_le(hi));
    }

    /// Durations formed from seconds round-trip within 1 µs.
    #[test]
    fn duration_roundtrip(s in 0.0f64..1e6) {
        let d = SimDuration::from_secs_f64(s);
        prop_assert!((d.as_secs_f64() - s).abs() < 1e-6);
    }
}
