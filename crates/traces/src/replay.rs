//! Trace-driven replay against the three platforms (Fig. 11).

use crate::livelab::{generate, TraceConfig};
use rattrap::{ArrivalModel, PlatformKind, ScenarioConfig, SimulationReport};
use simkit::{Cdf, SimDuration};
use workloads::WorkloadKind;

/// Results for one platform under the trace.
#[derive(Debug)]
pub struct PlatformTraceResult {
    /// Which platform.
    pub platform: PlatformKind,
    /// Speedup distribution over all requests.
    pub speedup_cdf: Cdf,
    /// Fraction of offloading failures (speedup ≤ 1).
    pub failure_rate: f64,
    /// Fraction of requests with speedup > 3.0 (the §VI-E statistic).
    pub speedup3_fraction: f64,
    /// Number of requests served.
    pub requests: usize,
    /// The raw simulation report.
    pub report: SimulationReport,
}

/// Run the Fig. 11 experiment: replay one synthetic LiveLab trace of
/// `workload` requests against every platform. "For fair comparison"
/// the identical trace (and identical per-request randomness, keyed by
/// seed) hits all three systems.
pub fn run_trace_experiment(
    workload: WorkloadKind,
    trace_cfg: &TraceConfig,
    platforms: &[PlatformKind],
) -> Vec<PlatformTraceResult> {
    let trace = generate(trace_cfg);
    platforms
        .iter()
        .map(|&platform| {
            let scenario = ScenarioConfig {
                arrivals: ArrivalModel::Trace(trace.clone()),
                devices: trace_cfg.users,
                requests_per_device: 0, // ignored in trace mode
                sample_horizon: SimDuration::from_secs(60), // timelines unused here
                ..ScenarioConfig::paper_default(platform.config(), workload, trace_cfg.seed)
            };
            let report = rattrap::run_scenario(scenario);
            let speedups: Vec<f64> = report.requests.iter().map(|r| r.speedup()).collect();
            let n = speedups.len();
            let failure_rate = report.failure_rate();
            let cdf = Cdf::from_samples(speedups);
            let speedup3_fraction = cdf.fraction_ge(3.0);
            PlatformTraceResult {
                platform,
                speedup_cdf: cdf,
                failure_rate,
                speedup3_fraction,
                requests: n,
                report,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace() -> TraceConfig {
        TraceConfig {
            users: 5,
            duration: SimDuration::from_secs(2 * 3600),
            sessions_per_hour: 3.0,
            ..Default::default()
        }
    }

    #[test]
    fn all_platforms_serve_the_same_trace() {
        let results =
            run_trace_experiment(WorkloadKind::ChessGame, &small_trace(), &PlatformKind::ALL);
        assert_eq!(results.len(), 3);
        let n = results[0].requests;
        assert!(n > 50, "trace produced {n} requests");
        assert!(results.iter().all(|r| r.requests == n), "same inflow everywhere");
    }

    #[test]
    fn failure_ordering_matches_fig11() {
        let results =
            run_trace_experiment(WorkloadKind::ChessGame, &small_trace(), &PlatformKind::ALL);
        let by = |k: PlatformKind| {
            results.iter().find(|r| r.platform == k).expect("present")
        };
        let rattrap = by(PlatformKind::Rattrap);
        let wo = by(PlatformKind::RattrapWithout);
        let vm = by(PlatformKind::VmBaseline);
        // §VI-E: 1.3 % vs 7.7 % vs 9.7 %.
        assert!(
            rattrap.failure_rate < wo.failure_rate,
            "rattrap {} !< w/o {}",
            rattrap.failure_rate,
            wo.failure_rate
        );
        assert!(wo.failure_rate <= vm.failure_rate + 0.02, "w/o {} vm {}", wo.failure_rate, vm.failure_rate);
        assert!(rattrap.failure_rate < 0.06, "rattrap failures {}", rattrap.failure_rate);
        assert!(vm.failure_rate > 0.04, "vm failures {}", vm.failure_rate);
    }

    #[test]
    fn speedup_cdf_ordering_matches_fig11() {
        let results =
            run_trace_experiment(WorkloadKind::ChessGame, &small_trace(), &PlatformKind::ALL);
        let by = |k: PlatformKind| results.iter().find(|r| r.platform == k).unwrap();
        let rattrap = by(PlatformKind::Rattrap);
        let vm = by(PlatformKind::VmBaseline);
        // Rattrap's CDF dominates the VM's: more mass at high speedups.
        assert!(
            rattrap.speedup3_fraction > vm.speedup3_fraction,
            "≥3x: rattrap {} vm {}",
            rattrap.speedup3_fraction,
            vm.speedup3_fraction
        );
        assert!(
            rattrap.speedup_cdf.median().unwrap() > vm.speedup_cdf.median().unwrap(),
            "median speedup ordering"
        );
    }
}
