//! Trace-driven replay against the three platforms (Fig. 11).

use crate::livelab::{generate, TraceConfig};
use rattrap::{
    ArrivalModel, PlatformKind, ReportSummary, RequestRecord, RequestSink, ScenarioConfig,
    SimulationReport,
};
use simkit::{Cdf, OnlineStats, SimDuration};
use workloads::WorkloadKind;

/// Results for one platform under the trace.
#[derive(Debug)]
pub struct PlatformTraceResult {
    /// Which platform.
    pub platform: PlatformKind,
    /// Speedup distribution over all requests.
    pub speedup_cdf: Cdf,
    /// Fraction of offloading failures (speedup ≤ 1).
    pub failure_rate: f64,
    /// Fraction of requests with speedup > 3.0 (the §VI-E statistic).
    pub speedup3_fraction: f64,
    /// Number of requests served.
    pub requests: usize,
    /// The raw simulation report.
    pub report: SimulationReport,
}

/// Run the Fig. 11 experiment: replay one synthetic LiveLab trace of
/// `workload` requests against every platform. "For fair comparison"
/// the identical trace (and identical per-request randomness, keyed by
/// seed) hits all three systems.
pub fn run_trace_experiment(
    workload: WorkloadKind,
    trace_cfg: &TraceConfig,
    platforms: &[PlatformKind],
) -> Vec<PlatformTraceResult> {
    let trace = generate(trace_cfg);
    platforms
        .iter()
        .map(|&platform| {
            let scenario = ScenarioConfig {
                arrivals: ArrivalModel::Trace(trace.clone()),
                devices: trace_cfg.users,
                requests_per_device: 0, // ignored in trace mode
                sample_horizon: SimDuration::from_secs(60), // timelines unused here
                ..ScenarioConfig::paper_default(platform.config(), workload, trace_cfg.seed)
            };
            let report = rattrap::run_scenario(scenario);
            let speedups: Vec<f64> = report.requests.iter().map(|r| r.speedup()).collect();
            let n = speedups.len();
            let failure_rate = report.failure_rate();
            let cdf = Cdf::from_samples(speedups);
            let speedup3_fraction = cdf.fraction_ge(3.0);
            PlatformTraceResult {
                platform,
                speedup_cdf: cdf,
                failure_rate,
                speedup3_fraction,
                requests: n,
                report,
            }
        })
        .collect()
}

/// Streaming per-platform summary of a trace replay: everything Fig. 11
/// reports, accumulated online. Memory is O(1) in the trace length —
/// no `Vec<RequestRecord>` ever exists.
#[derive(Debug)]
pub struct StreamingTraceResult {
    /// Which platform.
    pub platform: PlatformKind,
    /// Online speedup statistics (mean / min / max / stddev).
    pub speedup_stats: OnlineStats,
    /// Fraction of offloading failures (speedup ≤ 1).
    pub failure_rate: f64,
    /// Fraction of requests with speedup > 3.0 (the §VI-E statistic).
    pub speedup3_fraction: f64,
    /// Number of requests served.
    pub requests: u64,
    /// The engine's non-per-request outputs (timelines, counters).
    pub summary: ReportSummary,
}

/// A [`RequestSink`] that folds each completed request into online
/// accumulators and drops the record — the bounded-memory path for
/// replaying very large traces.
#[derive(Debug, Default)]
pub struct SpeedupSink {
    /// Online speedup statistics.
    pub speedup_stats: OnlineStats,
    /// Requests with speedup ≤ 1.
    pub failures: u64,
    /// Requests with speedup > 3.
    pub speedup3: u64,
    /// Total requests seen.
    pub total: u64,
}

impl RequestSink for SpeedupSink {
    fn accept(&mut self, record: RequestRecord) {
        let s = record.speedup();
        self.speedup_stats.push(s);
        if record.is_offloading_failure() {
            self.failures += 1;
        }
        if s > 3.0 {
            self.speedup3 += 1;
        }
        self.total += 1;
    }
}

/// Streaming variant of [`run_trace_experiment`]: replay the identical
/// trace against every platform through a [`SpeedupSink`]. Use this for
/// traces far beyond Fig. 11's scale (hundreds of thousands of
/// requests) where materializing per-request records is off the table.
pub fn run_trace_experiment_streaming(
    workload: WorkloadKind,
    trace_cfg: &TraceConfig,
    platforms: &[PlatformKind],
) -> Vec<StreamingTraceResult> {
    let trace = generate(trace_cfg);
    platforms
        .iter()
        .map(|&platform| {
            let scenario = ScenarioConfig {
                arrivals: ArrivalModel::Trace(trace.clone()),
                devices: trace_cfg.users,
                requests_per_device: 0, // ignored in trace mode
                sample_horizon: SimDuration::from_secs(60), // timelines unused here
                ..ScenarioConfig::paper_default(platform.config(), workload, trace_cfg.seed)
            };
            let mut sink = SpeedupSink::default();
            let summary = rattrap::run_scenario_with_sink(scenario, &mut sink);
            let n = sink.total.max(1);
            StreamingTraceResult {
                platform,
                failure_rate: sink.failures as f64 / n as f64,
                speedup3_fraction: sink.speedup3 as f64 / n as f64,
                requests: sink.total,
                speedup_stats: sink.speedup_stats,
                summary,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace() -> TraceConfig {
        TraceConfig {
            users: 5,
            duration: SimDuration::from_secs(2 * 3600),
            sessions_per_hour: 3.0,
            ..Default::default()
        }
    }

    #[test]
    fn streaming_matches_collecting_exactly() {
        let cfg = small_trace();
        let collected =
            run_trace_experiment(WorkloadKind::ChessGame, &cfg, &[PlatformKind::Rattrap]);
        let streamed =
            run_trace_experiment_streaming(WorkloadKind::ChessGame, &cfg, &[PlatformKind::Rattrap]);
        let c = &collected[0];
        let s = &streamed[0];
        assert_eq!(s.requests as usize, c.requests);
        assert_eq!(s.failure_rate, c.failure_rate);
        // fraction_ge on the CDF uses > semantics at the boundary like
        // the sink, over the same sample multiset.
        assert!((s.speedup3_fraction - c.speedup3_fraction).abs() < 1e-12);
        let mean_c = c.report.mean_of(|r| r.speedup());
        assert!((s.speedup_stats.mean() - mean_c).abs() < 1e-9);
    }

    #[test]
    fn hundred_thousand_request_replay_streams_in_bounded_memory() {
        // Far beyond Fig. 11's scale: the point of the streaming sink.
        let cfg = TraceConfig {
            users: 70,
            duration: SimDuration::from_secs(24 * 3600),
            sessions_per_hour: 9.0,
            mean_session_len: 20.0,
            intra_gap_s: 10.0,
            seed: 0xB16,
        };
        let trace = crate::livelab::generate(&cfg);
        let n: usize = trace.iter().map(|v| v.len()).sum();
        assert!(n >= 100_000, "trace holds {n} requests");
        let results =
            run_trace_experiment_streaming(WorkloadKind::ChessGame, &cfg, &[PlatformKind::Rattrap]);
        let r = &results[0];
        assert_eq!(r.requests as usize, n, "every request completed");
        assert_eq!(r.summary.completed_requests as usize, n);
        assert!(r.speedup_stats.mean() > 1.0, "offloading pays off on LAN");
        assert!(r.failure_rate < 0.2, "failure rate {}", r.failure_rate);
    }

    #[test]
    fn all_platforms_serve_the_same_trace() {
        let results =
            run_trace_experiment(WorkloadKind::ChessGame, &small_trace(), &PlatformKind::ALL);
        assert_eq!(results.len(), 3);
        let n = results[0].requests;
        assert!(n > 50, "trace produced {n} requests");
        assert!(
            results.iter().all(|r| r.requests == n),
            "same inflow everywhere"
        );
    }

    #[test]
    fn failure_ordering_matches_fig11() {
        let results =
            run_trace_experiment(WorkloadKind::ChessGame, &small_trace(), &PlatformKind::ALL);
        let by = |k: PlatformKind| results.iter().find(|r| r.platform == k).expect("present");
        let rattrap = by(PlatformKind::Rattrap);
        let wo = by(PlatformKind::RattrapWithout);
        let vm = by(PlatformKind::VmBaseline);
        // §VI-E: 1.3 % vs 7.7 % vs 9.7 %.
        assert!(
            rattrap.failure_rate < wo.failure_rate,
            "rattrap {} !< w/o {}",
            rattrap.failure_rate,
            wo.failure_rate
        );
        assert!(
            wo.failure_rate <= vm.failure_rate + 0.02,
            "w/o {} vm {}",
            wo.failure_rate,
            vm.failure_rate
        );
        assert!(
            rattrap.failure_rate < 0.06,
            "rattrap failures {}",
            rattrap.failure_rate
        );
        assert!(vm.failure_rate > 0.04, "vm failures {}", vm.failure_rate);
    }

    #[test]
    fn speedup_cdf_ordering_matches_fig11() {
        let results =
            run_trace_experiment(WorkloadKind::ChessGame, &small_trace(), &PlatformKind::ALL);
        let by = |k: PlatformKind| results.iter().find(|r| r.platform == k).unwrap();
        let rattrap = by(PlatformKind::Rattrap);
        let vm = by(PlatformKind::VmBaseline);
        // Rattrap's CDF dominates the VM's: more mass at high speedups.
        assert!(
            rattrap.speedup3_fraction > vm.speedup3_fraction,
            "≥3x: rattrap {} vm {}",
            rattrap.speedup3_fraction,
            vm.speedup3_fraction
        );
        assert!(
            rattrap.speedup_cdf.median().unwrap() > vm.speedup_cdf.median().unwrap(),
            "median speedup ordering"
        );
    }
}
