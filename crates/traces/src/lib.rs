//! # traces — LiveLab-style trace generation and replay (Fig. 11)
//!
//! The §VI-E experiment replays real-world app-access traces (LiveLab)
//! as offloading-request start times. [`livelab`] generates synthetic
//! traces with the session/burst/diurnal structure the experiment
//! depends on; [`replay`] runs one trace against all three platforms
//! and produces the speedup CDFs and offloading-failure rates.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod livelab;
pub mod replay;

pub use livelab::{generate, stats, TraceConfig, TraceStats, DIURNAL};
pub use replay::{
    run_trace_experiment, run_trace_experiment_streaming, PlatformTraceResult, SpeedupSink,
    StreamingTraceResult,
};
