//! LiveLab-style app-access trace generation.
//!
//! The paper's Fig. 11 replays real-world app access traces from the
//! LiveLab dataset (Rice University, 34 iPhone users over a year),
//! using access timestamps as offloading-request start times. The
//! dataset itself is not redistributable, so we generate synthetic
//! traces with the structure that matters to the experiment: *bursty
//! sessions* (a user opens an app and interacts for a while) separated
//! by long idle gaps, under a diurnal activity profile. The session
//! structure is what exercises cold starts — runtimes are reclaimed
//! during the long gaps — and the burst structure is what piles
//! requests onto a still-booting runtime.

use simkit::{SimDuration, SimRng, SimTime};

/// Parameters of the synthetic trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of users (devices).
    pub users: u32,
    /// Trace duration.
    pub duration: SimDuration,
    /// Mean app sessions per user per *active* hour.
    pub sessions_per_hour: f64,
    /// Mean requests per session (geometric, ≥ 1).
    pub mean_session_len: f64,
    /// Mean gap between requests inside a session, seconds (exponential).
    pub intra_gap_s: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            users: 5,
            duration: SimDuration::from_secs(6 * 3600),
            sessions_per_hour: 2.0,
            mean_session_len: 18.0,
            intra_gap_s: 25.0,
            seed: 0x11FE,
        }
    }
}

/// Diurnal activity multiplier per hour of day, normalized so the peak
/// is 1. Shape follows smartphone-usage studies: quiet at night, rising
/// through the morning, peaks at midday and evening.
pub const DIURNAL: [f64; 24] = [
    0.05, 0.03, 0.02, 0.02, 0.03, 0.08, 0.20, 0.40, 0.60, 0.70, 0.75, 0.85, //
    0.90, 0.80, 0.70, 0.65, 0.70, 0.80, 0.95, 1.00, 0.90, 0.60, 0.30, 0.12,
];

/// Generate per-user request timestamps (sorted, within `duration`).
/// The trace starts at 08:00 "wall time" so short traces land in active
/// hours.
pub fn generate(cfg: &TraceConfig) -> Vec<Vec<SimTime>> {
    generate_with_start(cfg, 8.0)
}

/// [`generate`] with an explicit local start hour. Multi-region
/// topologies use this to phase-shift the shared [`DIURNAL`] profile
/// per timezone (sun-following load): each region generates its trace
/// with its own local wall-clock hour at sim time zero.
pub fn generate_with_start(cfg: &TraceConfig, start_hour: f64) -> Vec<Vec<SimTime>> {
    (0..cfg.users)
        .map(|u| {
            let mut rng = SimRng::new(simkit::derive_seed(cfg.seed, u as u64));
            let mut times = Vec::new();
            // Non-homogeneous Poisson session starts via thinning.
            let max_rate = cfg.sessions_per_hour / 3600.0; // per second at peak
            let mut t = 0.0f64;
            let horizon = cfg.duration.as_secs_f64();
            loop {
                t += rng.exponential(1.0 / max_rate);
                if t >= horizon {
                    break;
                }
                let hour = (start_hour + t / 3600.0).rem_euclid(24.0) as usize;
                if !rng.bernoulli(DIURNAL[hour % 24]) {
                    continue; // thinned out
                }
                // A session: geometric length, exponential intra gaps.
                let len = 1 + (rng.exponential(cfg.mean_session_len - 1.0).floor() as usize);
                let mut st = t;
                for i in 0..len {
                    if st >= horizon {
                        break;
                    }
                    times.push(SimTime::from_secs_f64(st));
                    if i + 1 < len {
                        st += rng.exponential(cfg.intra_gap_s);
                    }
                }
                t = st; // next session starts after this one
            }
            times.sort_unstable();
            times.dedup();
            times
        })
        .collect()
}

/// Structural statistics of a trace (to validate burstiness).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Total requests across users.
    pub requests: usize,
    /// Fraction of inter-request gaps longer than the idle-teardown
    /// window (these requests hit cold runtimes).
    pub cold_gap_fraction: f64,
    /// Median inter-request gap, seconds.
    pub median_gap_s: f64,
}

/// Compute [`TraceStats`] with the given cold-gap threshold.
pub fn stats(trace: &[Vec<SimTime>], cold_threshold: SimDuration) -> TraceStats {
    let mut gaps: Vec<f64> = Vec::new();
    let mut requests = 0;
    for user in trace {
        requests += user.len();
        for w in user.windows(2) {
            gaps.push((w[1] - w[0]).as_secs_f64());
        }
    }
    if gaps.is_empty() {
        return TraceStats {
            requests,
            cold_gap_fraction: 1.0,
            median_gap_s: 0.0,
        };
    }
    gaps.sort_by(|a, b| a.partial_cmp(b).expect("gaps are finite"));
    let cold = gaps
        .iter()
        .filter(|&&g| g > cold_threshold.as_secs_f64())
        .count();
    TraceStats {
        requests,
        // +users: each user's first request is cold by definition.
        cold_gap_fraction: (cold + trace.len()) as f64 / (gaps.len() + trace.len()) as f64,
        median_gap_s: gaps[gaps.len() / 2],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = TraceConfig::default();
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn timestamps_sorted_and_bounded() {
        let cfg = TraceConfig::default();
        let trace = generate(&cfg);
        assert_eq!(trace.len(), 5);
        for user in &trace {
            assert!(user.windows(2).all(|w| w[0] < w[1]));
            assert!(user.iter().all(|&t| t < SimTime::ZERO + cfg.duration));
        }
    }

    #[test]
    fn trace_is_bursty() {
        let cfg = TraceConfig {
            duration: SimDuration::from_secs(24 * 3600),
            ..Default::default()
        };
        let trace = generate(&cfg);
        let s = stats(&trace, SimDuration::from_secs(60));
        assert!(s.requests > 200, "enough requests: {}", s.requests);
        // Sessions: most gaps are short, a meaningful minority are long.
        assert!(s.median_gap_s < 30.0, "median gap {}", s.median_gap_s);
        assert!(
            s.cold_gap_fraction > 0.05 && s.cold_gap_fraction < 0.35,
            "cold fraction {}",
            s.cold_gap_fraction
        );
    }

    #[test]
    fn diurnal_profile_shifts_volume() {
        // Daytime window (starts 08:00) vs the same length overnight:
        // generate a 16 h trace and compare first 8 h vs last 8 h… the
        // trace wraps at midnight, so just check the table itself.
        let night = DIURNAL[3];
        let evening = DIURNAL[19];
        assert!(night < 0.1, "3am is quiet: {night}");
        assert!(evening > 0.9, "evening peak: {evening}");
        assert_eq!(DIURNAL.len(), 24);
    }

    #[test]
    fn start_hour_shifts_volume() {
        // A short trace started at the 19:00 peak generates far more
        // requests than the same trace started at 02:00.
        let cfg = TraceConfig {
            users: 20,
            duration: SimDuration::from_secs(2 * 3600),
            ..Default::default()
        };
        let count = |t: &Vec<Vec<SimTime>>| t.iter().map(|u| u.len()).sum::<usize>();
        let peak = count(&generate_with_start(&cfg, 19.0));
        let night = count(&generate_with_start(&cfg, 2.0));
        assert!(
            peak > 4 * night.max(1),
            "peak {peak} should dwarf night {night}"
        );
        // The default entry point is exactly start_hour = 8.
        assert_eq!(generate(&cfg), generate_with_start(&cfg, 8.0));
    }

    #[test]
    fn more_sessions_more_requests() {
        let small = generate(&TraceConfig {
            sessions_per_hour: 1.0,
            ..Default::default()
        });
        let big = generate(&TraceConfig {
            sessions_per_hour: 6.0,
            ..Default::default()
        });
        let count = |t: &Vec<Vec<SimTime>>| t.iter().map(|u| u.len()).sum::<usize>();
        assert!(count(&big) > 2 * count(&small));
    }
}
