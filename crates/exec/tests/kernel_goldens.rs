//! Pinned output checksums for every real kernel at two input sizes.
//!
//! `Real` execution is verifiable because kernel outputs are pure
//! functions of `(kind, size, seed)`. These goldens pin that contract:
//! a checksum change means a kernel's observable output changed, which
//! invalidates the committed calibration map and every serve-API
//! response comparison. Regenerate deliberately (print the table with
//! `cargo test -p exec --test kernel_goldens -- --nocapture`) and
//! re-record `crates/exec/data/calibration.json` when you do.

use exec::{execute_kernel, SizeClass};
use workloads::WorkloadKind;

/// The seed every golden cell is pinned at (the paper's date, like the
/// engine goldens).
const GOLDEN_SEED: u64 = 0x2017_0529;

/// `(kind, size, checksum)` — regenerated via `print_golden_table`.
const GOLDEN: [(WorkloadKind, SizeClass, u64); 8] = [
    (WorkloadKind::Ocr, SizeClass::Small, 0x02c46ac9549f8e7a),
    (WorkloadKind::Ocr, SizeClass::Medium, 0x5a993172c8864ab5),
    (
        WorkloadKind::ChessGame,
        SizeClass::Small,
        0x2db98882b5bd7e8a,
    ),
    (
        WorkloadKind::ChessGame,
        SizeClass::Medium,
        0x6ed2ccea8b708657,
    ),
    (
        WorkloadKind::VirusScan,
        SizeClass::Small,
        0x738b0906b0855336,
    ),
    (
        WorkloadKind::VirusScan,
        SizeClass::Medium,
        0x7eefd7971e32f3c6,
    ),
    (WorkloadKind::Linpack, SizeClass::Small, 0x8e8ca94974d8cfc1),
    (WorkloadKind::Linpack, SizeClass::Medium, 0x6b974adeaf8be133),
];

#[test]
fn print_golden_table() {
    for kind in WorkloadKind::ALL {
        for size in [SizeClass::Small, SizeClass::Medium] {
            let out = execute_kernel(kind, size, GOLDEN_SEED);
            println!(
                "    (WorkloadKind::{:?}, SizeClass::{:?}, 0x{:016x}),",
                kind, size, out.checksum
            );
        }
    }
}

#[test]
fn outputs_match_committed_checksums() {
    for (kind, size, want) in GOLDEN {
        let got = execute_kernel(kind, size, GOLDEN_SEED).checksum;
        assert_eq!(got, want, "{}/{}", kind.label(), size.label());
    }
}
