//! The pluggable compute backend: what one offloaded request's compute
//! phase costs in sim time.
//!
//! The engines call [`ComputeBackend::charge`] exactly where they used
//! to price megacycles directly, passing a [`ComputeCtx`] describing
//! the executing host and a deterministic input seed. The returned
//! value is **core-seconds of work** handed to the fair-share CPU
//! executor — contention, stragglers, and everything downstream stay
//! the engine's business.

use crate::workset::SizeClass;
use std::fmt;
use std::sync::Arc;
use workloads::TaskRequest;

/// Coarse hardware class an execution is attributed to; the third
/// component of every calibration key. A static label (not a full
/// spec) so measurements aggregate across hosts of the same shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct HostClass(pub &'static str);

impl HostClass {
    /// The paper's 2.66 GHz Dell server (rattrap + fleet hosts).
    pub const PAPER_SERVER: HostClass = HostClass("paper-server");
    /// A geo edge-PoP host.
    pub const EDGE_POP: HostClass = HostClass("edge-pop");
    /// A geo regional-core host.
    pub const REGIONAL_CORE: HostClass = HostClass("regional-core");
    /// The machine this process runs on (drift/serve measurements).
    pub const LOCALHOST: HostClass = HostClass("localhost");
}

impl fmt::Display for HostClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// Everything the engine knows at the instant it prices one request's
/// compute phase.
#[derive(Debug, Clone, Copy)]
pub struct ComputeCtx {
    /// Which workload the request belongs to.
    pub kind: workloads::WorkloadKind,
    /// The sampled task quantized to a kernel input size.
    pub size: SizeClass,
    /// Hardware class of the executing host.
    pub host: HostClass,
    /// Host core clock, GHz.
    pub clock_ghz: f64,
    /// Runtime-class CPU efficiency (1.0 = native).
    pub cpu_efficiency: f64,
    /// Deterministic seed for kernel-input construction. Derived from
    /// the scenario seed and the request identity, so a replayed run
    /// builds bit-identical inputs.
    pub input_seed: u64,
}

/// A compute backend prices (or performs) one request's compute phase.
///
/// Implementations must be shareable across the sharded engine's host
/// threads (`Send + Sync`); deterministic backends must return a value
/// that is a pure function of `(ctx, task)`.
pub trait ComputeBackend: fmt::Debug + Send + Sync {
    /// Stable backend label for reports and run metadata.
    fn name(&self) -> &'static str;

    /// Core-seconds of work the request's compute phase costs on the
    /// executing host.
    fn charge(&self, ctx: &ComputeCtx, task: &TaskRequest) -> f64;

    /// Whether `charge` is a pure function of its arguments. Golden
    /// and explorer runs refuse nondeterministic backends.
    fn is_deterministic(&self) -> bool {
        true
    }
}

/// Shared, thread-safe handle the engines store and clone.
pub type BackendHandle = Arc<dyn ComputeBackend>;

/// The default [`Modeled`] backend as a handle.
pub fn modeled() -> BackendHandle {
    Arc::new(Modeled)
}

/// The calibrated cycle-profile backend — the engines' historical
/// behaviour, bit for bit: the sampled task's megacycles priced at the
/// host clock scaled by the runtime-class efficiency. All seven golden
/// digests (and the geo regression digest) are pinned against it.
#[derive(Debug, Default, Clone, Copy)]
pub struct Modeled;

impl ComputeBackend for Modeled {
    fn name(&self) -> &'static str {
        "modeled"
    }

    fn charge(&self, ctx: &ComputeCtx, task: &TaskRequest) -> f64 {
        task.compute.seconds_at(ctx.clock_ghz, ctx.cpu_efficiency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::units::Megacycles;
    use simkit::SimRng;
    use workloads::WorkloadKind;

    fn ctx(task: &TaskRequest) -> ComputeCtx {
        ComputeCtx {
            kind: task.kind,
            size: SizeClass::of(task),
            host: HostClass::PAPER_SERVER,
            clock_ghz: 2.66,
            cpu_efficiency: 0.995,
            input_seed: 7,
        }
    }

    #[test]
    fn modeled_matches_the_legacy_expression_bit_for_bit() {
        for kind in WorkloadKind::ALL {
            let mut rng = SimRng::new(11);
            for _ in 0..64 {
                let task = kind.profile().sample(&mut rng);
                let c = ctx(&task);
                let legacy = Megacycles(task.compute.0).seconds_at(c.clock_ghz, c.cpu_efficiency);
                let backend = Modeled.charge(&c, &task);
                assert_eq!(backend.to_bits(), legacy.to_bits());
            }
        }
    }

    #[test]
    fn modeled_is_deterministic_and_named() {
        assert!(Modeled.is_deterministic());
        assert_eq!(modeled().name(), "modeled");
    }
}
