//! The replay backend: recorded real wall times as deterministic
//! sim-time charges.
//!
//! A [`CalibrationMap`] holds one [`CalEntry`] per
//! `"kind/size/host"` key — the mean real/modeled ratio observed by a
//! [`RealBackend`](crate::real::RealBackend) run. [`ReplayBackend`]
//! charges `modeled × ratio`: a pure function of `(ctx, task)`, so
//! real-informed runs are bit-for-bit reproducible from the committed
//! map. The identity map (every ratio 1.0) reproduces
//! [`Modeled`](crate::backend::Modeled) exactly, because `x × 1.0 == x`
//! in IEEE arithmetic — the golden digests hold under replay.
//!
//! ## Map format
//!
//! ```json
//! {
//!   "default_ratio": 1.0,
//!   "entries": {
//!     "OCR/M/localhost": { "ratio": 1.07, "wall_micros": 42180, "samples": 5 }
//!   }
//! }
//! ```
//!
//! Lookup order for `(kind, size, host)`: exact `"kind/size/host"`,
//! then wildcard-host `"kind/size/*"`, then `default_ratio`.

use crate::backend::{ComputeBackend, ComputeCtx, HostClass};
use crate::workset::SizeClass;
use obsv::json::{self, Value};
use std::collections::BTreeMap;
use workloads::{TaskRequest, WorkloadKind};

/// One calibration cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalEntry {
    /// Mean real/modeled wall-time ratio.
    pub ratio: f64,
    /// Mean measured kernel wall time, microseconds (reporting only;
    /// replay charges use `ratio`).
    pub wall_micros: u64,
    /// Samples behind the mean.
    pub samples: u64,
}

/// A committed map from `"kind/size/host"` keys to calibration cells.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationMap {
    /// Ratio applied when no key matches.
    pub default_ratio: f64,
    entries: BTreeMap<String, CalEntry>,
}

impl CalibrationMap {
    /// The identity map: every charge replays as pure `Modeled`.
    pub fn identity() -> CalibrationMap {
        CalibrationMap {
            default_ratio: 1.0,
            entries: BTreeMap::new(),
        }
    }

    /// The calibration committed with the crate
    /// (`crates/exec/data/calibration.json`), recorded by
    /// `exp_drift --write-calibration` on the reference machine.
    pub fn committed() -> CalibrationMap {
        CalibrationMap::from_json(include_str!("../data/calibration.json"))
            .expect("committed calibration map parses")
    }

    /// Canonical key for one cell.
    pub fn key(kind: WorkloadKind, size: SizeClass, host: HostClass) -> String {
        format!("{}/{}/{}", kind.label(), size.label(), host.0)
    }

    /// Insert or replace a cell.
    pub fn insert(&mut self, key: String, entry: CalEntry) {
        self.entries.insert(key, entry);
    }

    /// Direct entry lookup (no wildcard fallback).
    pub fn entry(&self, key: &str) -> Option<&CalEntry> {
        self.entries.get(key)
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map holds no cells.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate cells in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &CalEntry)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Resolve the ratio for one execution: exact key, then
    /// wildcard-host, then the default.
    pub fn ratio(&self, kind: WorkloadKind, size: SizeClass, host: HostClass) -> f64 {
        if let Some(e) = self.entries.get(&Self::key(kind, size, host)) {
            return e.ratio;
        }
        let wild = format!("{}/{}/*", kind.label(), size.label());
        if let Some(e) = self.entries.get(&wild) {
            return e.ratio;
        }
        self.default_ratio
    }

    /// Serialize to the committed JSON format (stable key order).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"default_ratio\": {},\n", self.default_ratio));
        s.push_str("  \"entries\": {");
        let mut first = true;
        for (key, e) in &self.entries {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "\n    \"{}\": {{ \"ratio\": {}, \"wall_micros\": {}, \"samples\": {} }}",
                key, e.ratio, e.wall_micros, e.samples
            ));
        }
        if !first {
            s.push_str("\n  ");
        }
        s.push_str("}\n}\n");
        s
    }

    /// Parse the committed JSON format.
    pub fn from_json(text: &str) -> Result<CalibrationMap, String> {
        let v = json::parse(text)?;
        let default_ratio = v
            .get("default_ratio")
            .and_then(Value::as_f64)
            .ok_or("calibration: missing default_ratio")?;
        let mut entries = BTreeMap::new();
        if let Some(Value::Object(map)) = v.get("entries") {
            for (key, cell) in map {
                let num = |field: &str| -> Result<f64, String> {
                    cell.get(field)
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("calibration {key}: missing {field}"))
                };
                entries.insert(
                    key.clone(),
                    CalEntry {
                        ratio: num("ratio")?,
                        wall_micros: num("wall_micros")? as u64,
                        samples: num("samples")? as u64,
                    },
                );
            }
        }
        Ok(CalibrationMap {
            default_ratio,
            entries,
        })
    }
}

/// The deterministic replay backend.
#[derive(Debug, Clone)]
pub struct ReplayBackend {
    map: CalibrationMap,
}

impl ReplayBackend {
    /// Replay against an explicit map.
    pub fn new(map: CalibrationMap) -> ReplayBackend {
        ReplayBackend { map }
    }

    /// Replay against the identity map (≡ `Modeled`).
    pub fn identity() -> ReplayBackend {
        ReplayBackend::new(CalibrationMap::identity())
    }

    /// Replay against the committed calibration.
    pub fn committed() -> ReplayBackend {
        ReplayBackend::new(CalibrationMap::committed())
    }

    /// The map replayed against.
    pub fn map(&self) -> &CalibrationMap {
        &self.map
    }
}

impl ComputeBackend for ReplayBackend {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn charge(&self, ctx: &ComputeCtx, task: &TaskRequest) -> f64 {
        let modeled = task.compute.seconds_at(ctx.clock_ghz, ctx.cpu_efficiency);
        modeled * self.map.ratio(ctx.kind, ctx.size, ctx.host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Modeled;
    use simkit::units::Megacycles;
    use simkit::SimRng;

    fn ctx(kind: WorkloadKind, task: &TaskRequest) -> ComputeCtx {
        ComputeCtx {
            kind,
            size: SizeClass::of(task),
            host: HostClass::PAPER_SERVER,
            clock_ghz: 2.66,
            cpu_efficiency: 0.995,
            input_seed: 3,
        }
    }

    #[test]
    fn identity_replay_is_bitwise_modeled() {
        let replay = ReplayBackend::identity();
        for kind in WorkloadKind::ALL {
            let mut rng = SimRng::new(21);
            for _ in 0..64 {
                let task = kind.profile().sample(&mut rng);
                let c = ctx(kind, &task);
                assert_eq!(
                    replay.charge(&c, &task).to_bits(),
                    Modeled.charge(&c, &task).to_bits()
                );
            }
        }
    }

    #[test]
    fn lookup_falls_back_exact_then_wildcard_then_default() {
        let mut map = CalibrationMap::identity();
        map.default_ratio = 2.0;
        map.insert("OCR/M/*".into(), cal(1.5));
        map.insert(
            CalibrationMap::key(
                WorkloadKind::Ocr,
                SizeClass::Medium,
                HostClass::PAPER_SERVER,
            ),
            cal(1.2),
        );
        assert_eq!(
            map.ratio(
                WorkloadKind::Ocr,
                SizeClass::Medium,
                HostClass::PAPER_SERVER
            ),
            1.2
        );
        assert_eq!(
            map.ratio(WorkloadKind::Ocr, SizeClass::Medium, HostClass::EDGE_POP),
            1.5
        );
        assert_eq!(
            map.ratio(WorkloadKind::Linpack, SizeClass::Small, HostClass::EDGE_POP),
            2.0
        );
    }

    fn cal(ratio: f64) -> CalEntry {
        CalEntry {
            ratio,
            wall_micros: 1000,
            samples: 1,
        }
    }

    #[test]
    fn json_round_trips() {
        let mut map = CalibrationMap::identity();
        map.insert("Linpack/S/localhost".into(), cal(0.93));
        map.insert("OCR/L/*".into(), cal(1.41));
        let text = map.to_json();
        let back = CalibrationMap::from_json(&text).unwrap();
        assert_eq!(map, back);
        let empty = CalibrationMap::identity();
        assert_eq!(CalibrationMap::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn committed_map_parses_and_covers_all_kernels() {
        let map = CalibrationMap::committed();
        for kind in WorkloadKind::ALL {
            for size in SizeClass::ALL {
                let r = map.ratio(kind, size, HostClass::LOCALHOST);
                assert!(r > 0.0, "{}/{}", kind.label(), size.label());
            }
        }
    }

    #[test]
    fn replay_is_scaled_modeled() {
        let mut map = CalibrationMap::identity();
        map.default_ratio = 3.0;
        let replay = ReplayBackend::new(map);
        let task = TaskRequest {
            kind: WorkloadKind::Linpack,
            payload_bytes: 260,
            control_bytes: 96,
            result_bytes: 113,
            compute: Megacycles(2400.0),
            io_bytes: 0,
        };
        let c = ctx(WorkloadKind::Linpack, &task);
        assert_eq!(replay.charge(&c, &task), 3.0 * Modeled.charge(&c, &task));
    }
}
