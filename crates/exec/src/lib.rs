//! `exec` — the real-execution compute backend.
//!
//! The discrete-event simulation charges every offloaded request a
//! *calibrated cycle profile* ([`workloads::WorkloadProfile`]), even
//! though the four workload kernels (OCR, chess, VirusScan, Linpack)
//! are genuinely executable Rust. This crate closes that loop with a
//! pluggable [`ComputeBackend`] the engines (rattrap's `Simulation`,
//! the `fleet` host shards, and through them every `geo` cell) consult
//! when a request reaches its compute phase:
//!
//! * [`Modeled`] — today's behaviour, verbatim: the sampled task's
//!   megacycles priced at the host clock and runtime-class efficiency.
//!   Bit-identical to the pre-backend engines; every golden digest is
//!   pinned against it.
//! * [`RealBackend`] — the kernel actually *runs* on a bounded worker
//!   thread pool. The request's sampled task is quantized to a
//!   [`SizeClass`], a deterministic kernel input is built from the
//!   request's seed, and the measured wall time becomes the sim-time
//!   charge. Every execution is logged as a [`Measurement`] keyed by
//!   `(WorkloadKind, SizeClass, HostClass)` — the raw material of a
//!   [`CalibrationMap`].
//! * [`ReplayBackend`] — a committed calibration map converts recorded
//!   real/modeled ratios back into deterministic charges, so
//!   real-informed runs are reproducible: same map, same seed, same
//!   report, bit for bit. The identity map reproduces [`Modeled`]
//!   exactly (`modeled × 1.0`), which is how the golden digests stay
//!   meaningful under replay.
//!
//! On top of the backends sits a thin offload API server
//! ([`serve::serve`]): a client submits `{kind, size, seed}` as one
//! line of JSON over TCP, a pluggable [`serve::OffloadHandler`]
//! routes/admits/executes it (the `fleet` crate provides the
//! control-plane-backed handler), and the response carries the output
//! checksum plus a queue/execute timing breakdown — the
//! ship-code/run-remote/copy-back loop of the paper's platform, served
//! for real.
//!
//! Determinism contract: [`Modeled`] and [`ReplayBackend`] are pure
//! functions of `(ComputeCtx, TaskRequest)` and may be used in golden
//! runs; [`RealBackend`] measures wall clocks and is explicitly
//! nondeterministic — its *outputs* (kernel checksums) are still
//! deterministic and pinned by `tests/kernel_goldens.rs`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod drift;
pub mod real;
pub mod replay;
pub mod serve;
pub mod workset;

pub use backend::{modeled, BackendHandle, ComputeBackend, ComputeCtx, HostClass, Modeled};
pub use drift::{calibration_from_rows, measure_drift, DriftConfig, DriftRow};
pub use real::{Measurement, RealBackend};
pub use replay::{CalEntry, CalibrationMap, ReplayBackend};
pub use workset::{execute_kernel, kind_from_label, KernelOutput, SizeClass};
