//! Modeled-vs-real drift measurement.
//!
//! For every `(WorkloadKind, SizeClass)` cell this runs the real
//! kernel `reps` times on a [`RealBackend`] pool, takes the median
//! wall time, and compares it with what the cycle model would charge
//! for a task of that nominal size. The ratio `real / modeled` is the
//! calibration signal: 1.0 means the cycle profile prices the kernel
//! perfectly on this host; the committed
//! [`CalibrationMap`](crate::replay::CalibrationMap) is exactly these
//! ratios, recorded on the reference machine.

use crate::backend::HostClass;
use crate::real::RealBackend;
use crate::replay::{CalEntry, CalibrationMap};
use crate::workset::SizeClass;
use simkit::units::Megacycles;
use workloads::WorkloadKind;

/// Parameters of one drift sweep.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Size classes to sweep.
    pub sizes: Vec<SizeClass>,
    /// Repetitions per cell (median is reported).
    pub reps: usize,
    /// Simulated host clock the model prices against, GHz.
    pub ghz: f64,
    /// Runtime-class CPU efficiency the model prices against.
    pub efficiency: f64,
    /// Host class measurements are attributed to.
    pub host: HostClass,
    /// Base input seed; rep `i` of a cell uses `seed + i`.
    pub seed: u64,
}

impl Default for DriftConfig {
    fn default() -> DriftConfig {
        DriftConfig {
            sizes: SizeClass::ALL.to_vec(),
            reps: 5,
            // The paper's 2.66 GHz server with the Rattrap container
            // runtime class — the configuration every golden run uses.
            ghz: 2.66,
            efficiency: 0.995,
            host: HostClass::LOCALHOST,
            seed: 20_170_529,
        }
    }
}

/// One cell of the drift report.
#[derive(Debug, Clone)]
pub struct DriftRow {
    /// Workload.
    pub kind: WorkloadKind,
    /// Input size class.
    pub size: SizeClass,
    /// Modeled charge for a task of this nominal size, milliseconds.
    pub modeled_ms: f64,
    /// Median measured kernel wall time, milliseconds.
    pub real_ms: f64,
    /// `real_ms / modeled_ms` — the drift ratio.
    pub ratio: f64,
    /// Kernel output checksum at the base seed (verifiability anchor).
    pub checksum: u64,
    /// Repetitions behind the median.
    pub reps: usize,
}

/// Sweep every `(kind, size)` cell and report drift rows in
/// presentation order (kinds in paper order, sizes ascending).
pub fn measure_drift(backend: &RealBackend, cfg: &DriftConfig) -> Vec<DriftRow> {
    let mut rows = Vec::new();
    for kind in WorkloadKind::ALL {
        let mean_mc = kind.profile().compute_megacycles_mean;
        for &size in &cfg.sizes {
            let modeled_secs =
                Megacycles(mean_mc * size.compute_scale()).seconds_at(cfg.ghz, cfg.efficiency);
            let mut walls = Vec::with_capacity(cfg.reps);
            let mut checksum = 0;
            for rep in 0..cfg.reps.max(1) {
                let (out, wall) = backend.execute(kind, size, cfg.seed + rep as u64);
                if rep == 0 {
                    checksum = out.checksum;
                }
                walls.push(wall);
            }
            walls.sort_unstable();
            let real_ms = walls[walls.len() / 2] as f64 / 1e3;
            let modeled_ms = modeled_secs * 1e3;
            rows.push(DriftRow {
                kind,
                size,
                modeled_ms,
                real_ms,
                ratio: real_ms / modeled_ms,
                checksum,
                reps: cfg.reps.max(1),
            });
        }
    }
    rows
}

/// Fold drift rows into a calibration map keyed at the sweep's host
/// class (plus wildcard-host entries so any simulated host replays).
pub fn calibration_from_rows(rows: &[DriftRow], host: HostClass) -> CalibrationMap {
    let mut map = CalibrationMap::identity();
    for r in rows {
        let entry = CalEntry {
            ratio: r.ratio,
            wall_micros: (r.real_ms * 1e3).round() as u64,
            samples: r.reps as u64,
        };
        map.insert(CalibrationMap::key(r.kind, r.size, host), entry);
        map.insert(format!("{}/{}/*", r.kind.label(), r.size.label()), entry);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workset::execute_kernel;

    #[test]
    fn drift_covers_every_cell_once() {
        let backend = RealBackend::new(2);
        let cfg = DriftConfig {
            sizes: vec![SizeClass::Small],
            reps: 1,
            ..DriftConfig::default()
        };
        let rows = measure_drift(&backend, &cfg);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.modeled_ms > 0.0);
            assert!(row.ratio > 0.0);
            assert_eq!(
                row.checksum,
                execute_kernel(row.kind, row.size, cfg.seed).checksum
            );
        }
        let map = calibration_from_rows(&rows, cfg.host);
        assert_eq!(map.len(), 8); // exact + wildcard per cell
    }
}
