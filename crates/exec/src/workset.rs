//! Deterministic kernel work sets: how a sampled [`TaskRequest`] maps
//! onto a genuinely executable kernel input.
//!
//! The simulation samples continuous task sizes; the kernels take
//! discrete parameters (word counts, search depths, corpus sizes,
//! matrix orders). The bridge is [`SizeClass`]: a sampled task is
//! quantized against its profile mean into Small/Medium/Large, and
//! each `(WorkloadKind, SizeClass)` pair names one fixed, seeded
//! kernel input. Kernel *outputs* are therefore pure functions of
//! `(kind, size, seed)` — pinned by `tests/kernel_goldens.rs` — even
//! though real wall times are not.

use simkit::SimRng;
use workloads::{chess, linpack, ocr, virusscan, TaskRequest, WorkloadKind};

/// Quantized kernel input size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SizeClass {
    /// Below ~85 % of the profile's mean compute.
    Small,
    /// Around the mean (the calibration anchor).
    Medium,
    /// Above ~125 % of the mean.
    Large,
}

impl SizeClass {
    /// All size classes, ascending.
    pub const ALL: [SizeClass; 3] = [SizeClass::Small, SizeClass::Medium, SizeClass::Large];

    /// Single-letter display label (used in calibration keys and the
    /// serve protocol).
    pub const fn label(self) -> &'static str {
        match self {
            SizeClass::Small => "S",
            SizeClass::Medium => "M",
            SizeClass::Large => "L",
        }
    }

    /// Parse a size label (`"S"`/`"M"`/`"L"`, case-insensitive).
    pub fn from_label(s: &str) -> Option<SizeClass> {
        match s.to_ascii_uppercase().as_str() {
            "S" | "SMALL" => Some(SizeClass::Small),
            "M" | "MEDIUM" => Some(SizeClass::Medium),
            "L" | "LARGE" => Some(SizeClass::Large),
            _ => None,
        }
    }

    /// Quantize a sampled task against its profile's mean compute.
    pub fn of(task: &TaskRequest) -> SizeClass {
        let mean = task.kind.profile().compute_megacycles_mean;
        let ratio = task.compute.0 / mean;
        if ratio < 0.85 {
            SizeClass::Small
        } else if ratio <= 1.25 {
            SizeClass::Medium
        } else {
            SizeClass::Large
        }
    }

    /// Nominal compute scale of the class relative to the profile mean
    /// (the midpoint of each quantization band). Used by drift reports
    /// to price the modeled equivalent of one kernel run.
    pub const fn compute_scale(self) -> f64 {
        match self {
            SizeClass::Small => 0.7,
            SizeClass::Medium => 1.0,
            SizeClass::Large => 1.4,
        }
    }
}

/// Parse a workload label (as printed by [`WorkloadKind::label`]).
pub fn kind_from_label(s: &str) -> Option<WorkloadKind> {
    WorkloadKind::ALL
        .into_iter()
        .find(|k| k.label().eq_ignore_ascii_case(s))
}

/// Output of one real kernel execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelOutput {
    /// FNV-1a 64 checksum over the kernel's canonical output encoding.
    /// Deterministic per `(kind, size, seed)`; this is what the serve
    /// API returns to the client as proof of execution.
    pub checksum: u64,
    /// Kernel-reported work units (comparisons, nodes, bytes, flops)
    /// — a machine-independent compute proxy.
    pub work_units: u64,
    /// Short human-readable result summary.
    pub detail: String,
}

/// FNV-1a 64-bit over a byte stream.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Fnv {
        Fnv(Self::OFFSET)
    }

    fn bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Kernel input parameters for one `(kind, size)` cell.
///
/// Sized so that Medium ≈ tens of milliseconds on a modern core and
/// Large stays well under half a second — CI's exec smoke job runs
/// every cell and must finish in bounded wall time.
#[derive(Debug, Clone, Copy)]
struct KernelParams {
    /// OCR: pseudo-words rendered into the page image.
    ocr_words: usize,
    /// Chess: search depth from the start position.
    chess_depth: u32,
    /// VirusScan: corpus file count (signature db is fixed at 64).
    scan_files: usize,
    /// VirusScan: mean file size, bytes.
    scan_mean_bytes: usize,
    /// Linpack: matrix order.
    linpack_n: usize,
}

const fn params(size: SizeClass) -> KernelParams {
    match size {
        SizeClass::Small => KernelParams {
            ocr_words: 4,
            chess_depth: 3,
            scan_files: 8,
            scan_mean_bytes: 2048,
            linpack_n: 80,
        },
        SizeClass::Medium => KernelParams {
            ocr_words: 10,
            chess_depth: 4,
            scan_files: 24,
            scan_mean_bytes: 2048,
            linpack_n: 140,
        },
        SizeClass::Large => KernelParams {
            ocr_words: 24,
            chess_depth: 5,
            scan_files: 64,
            scan_mean_bytes: 2048,
            linpack_n: 220,
        },
    }
}

/// VirusScan signature-database size (fixed across size classes: the
/// cloud side keeps the database resident; files are the migrated data).
const SCAN_DB_SIGS: usize = 64;
/// VirusScan infection rate for generated corpora.
const SCAN_INFECTION_RATE: f64 = 0.25;

/// Execute the real kernel for one `(kind, size, seed)` cell and
/// checksum its output.
///
/// The input is rebuilt deterministically from `seed` via [`SimRng`],
/// so the returned [`KernelOutput`] is a pure function of the three
/// arguments — on every machine, at every optimisation level.
pub fn execute_kernel(kind: WorkloadKind, size: SizeClass, seed: u64) -> KernelOutput {
    let p = params(size);
    let mut rng = SimRng::new(seed);
    let mut h = Fnv::new();
    match kind {
        WorkloadKind::Ocr => {
            let req = ocr::generate_request(p.ocr_words, &mut rng);
            let r = ocr::execute(&req);
            h.bytes(r.text.as_bytes());
            h.u64(r.comparisons);
            KernelOutput {
                checksum: h.finish(),
                work_units: r.comparisons,
                detail: format!("ocr: {} chars, conf {:.3}", r.text.len(), r.confidence),
            }
        }
        WorkloadKind::ChessGame => {
            // Walk a short seeded opening from the start position so
            // each seed analyses a different (still legal) middlegame.
            let mut board = chess::Board::start();
            for _ in 0..6 {
                let moves = chess::legal_moves(&board);
                if moves.is_empty() {
                    break;
                }
                let mv = moves[rng.uniform_u64(0, moves.len() as u64 - 1) as usize];
                board = chess::apply_move(&board, mv);
            }
            let req = chess::ChessRequest {
                fen: board.to_fen(),
                depth: p.chess_depth,
            };
            let r = chess::execute(&req).expect("start position FEN is valid");
            let mv = r.best_move.map(|m| m.uci()).unwrap_or_default();
            h.bytes(mv.as_bytes());
            h.u64(r.score as i64 as u64);
            h.u64(r.nodes);
            KernelOutput {
                checksum: h.finish(),
                work_units: r.nodes,
                detail: format!("chess: {} score {} nodes {}", mv, r.score, r.nodes),
            }
        }
        WorkloadKind::VirusScan => {
            let db = virusscan::generate_database(SCAN_DB_SIGS, &mut rng);
            let corpus = virusscan::generate_corpus(
                p.scan_files,
                p.scan_mean_bytes,
                SCAN_INFECTION_RATE,
                &db,
                &mut rng,
            );
            let r = virusscan::scan(&db, &corpus);
            h.u64(r.files_scanned as u64);
            h.u64(r.bytes_scanned);
            for &(f, s) in &r.detections {
                h.u64(f as u64);
                h.u64(s as u64);
            }
            KernelOutput {
                checksum: h.finish(),
                work_units: r.bytes_scanned,
                detail: format!(
                    "virusscan: {} files, {} detections",
                    r.files_scanned,
                    r.detections.len()
                ),
            }
        }
        WorkloadKind::Linpack => {
            let r = linpack::run(p.linpack_n, &mut rng).expect("random matrix is non-singular");
            h.u64(r.n as u64);
            h.f64(r.residual);
            h.f64(r.normalized_residual);
            h.f64(r.flops);
            KernelOutput {
                checksum: h.finish(),
                work_units: r.flops as u64,
                detail: format!("linpack: n={} resid {:.3e}", r.n, r.normalized_residual),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::units::Megacycles;

    fn task(kind: WorkloadKind, scale: f64) -> TaskRequest {
        let p = kind.profile();
        TaskRequest {
            kind,
            payload_bytes: p.payload_bytes_mean,
            control_bytes: p.control_bytes,
            result_bytes: p.result_bytes_mean,
            compute: Megacycles(p.compute_megacycles_mean * scale),
            io_bytes: 0,
        }
    }

    #[test]
    fn size_quantization_bands() {
        for kind in WorkloadKind::ALL {
            assert_eq!(SizeClass::of(&task(kind, 0.5)), SizeClass::Small);
            assert_eq!(SizeClass::of(&task(kind, 1.0)), SizeClass::Medium);
            assert_eq!(SizeClass::of(&task(kind, 1.6)), SizeClass::Large);
        }
    }

    #[test]
    fn labels_round_trip() {
        for s in SizeClass::ALL {
            assert_eq!(SizeClass::from_label(s.label()), Some(s));
        }
        for k in WorkloadKind::ALL {
            assert_eq!(kind_from_label(k.label()), Some(k));
        }
        assert_eq!(SizeClass::from_label("xl"), None);
        assert_eq!(kind_from_label("Doom"), None);
    }

    #[test]
    fn kernel_outputs_are_seed_deterministic() {
        for kind in WorkloadKind::ALL {
            let a = execute_kernel(kind, SizeClass::Small, 42);
            let b = execute_kernel(kind, SizeClass::Small, 42);
            assert_eq!(a, b, "{}", kind.label());
            let c = execute_kernel(kind, SizeClass::Small, 43);
            assert_ne!(a.checksum, c.checksum, "{} ignores seed", kind.label());
        }
    }

    #[test]
    fn larger_sizes_do_more_work() {
        for kind in WorkloadKind::ALL {
            let s = execute_kernel(kind, SizeClass::Small, 9).work_units;
            let l = execute_kernel(kind, SizeClass::Large, 9).work_units;
            assert!(l > s, "{}: {} !> {}", kind.label(), l, s);
        }
    }
}
