//! The real-execution backend: offloaded jobs actually run.
//!
//! [`RealBackend`] owns a bounded worker thread pool. When the engine
//! asks for a charge, the request's kernel input is rebuilt from its
//! deterministic seed, shipped to a worker, executed for real, and the
//! measured wall time becomes the sim-time charge (scaled from the
//! measuring host's clock to the simulated host's). Every execution is
//! logged as a [`Measurement`]; [`RealBackend::calibration`] folds the
//! log into a [`CalibrationMap`](crate::replay::CalibrationMap) for
//! deterministic replay.
//!
//! Wall clocks are not reproducible, so this backend reports
//! `is_deterministic() == false`; golden checks never run against it.
//! Kernel *outputs* stay deterministic and are checksummed on the way
//! through.

use crate::backend::{ComputeBackend, ComputeCtx, HostClass};
use crate::replay::{CalEntry, CalibrationMap};
use crate::workset::{execute_kernel, KernelOutput, SizeClass};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;
use workloads::{TaskRequest, WorkloadKind};

/// One logged real execution.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Workload executed.
    pub kind: WorkloadKind,
    /// Quantized input size.
    pub size: SizeClass,
    /// Hardware class the wall time is attributed to.
    pub host: HostClass,
    /// Measured kernel wall time, microseconds.
    pub wall_micros: u64,
    /// What the `Modeled` backend would have charged, microseconds
    /// (at the same ctx clock/efficiency) — the drift denominator.
    pub modeled_micros: u64,
    /// Deterministic output checksum of the execution.
    pub checksum: u64,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A bounded worker pool executing kernel jobs.
///
/// `std::sync::mpsc` receivers are single-consumer, so the receiving
/// end sits behind a mutex and idle workers race to pull the next job
/// — a classic shared-queue pool with no extra dependencies.
#[derive(Debug)]
struct Pool {
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Pool {
    fn new(workers: usize) -> Pool {
        let workers = workers.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                thread::Builder::new()
                    .name(format!("exec-worker-{i}"))
                    .spawn(move || loop {
                        let job = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => break,
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // sender dropped: shut down
                        }
                    })
                    .expect("spawn exec worker")
            })
            .collect();
        Pool {
            tx: Some(tx),
            workers: handles,
        }
    }

    fn submit(&self, job: Job) {
        self.tx
            .as_ref()
            .expect("pool is live until drop")
            .send(job)
            .expect("workers outlive the pool handle");
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        drop(self.tx.take()); // hang up; workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The real-execution compute backend.
#[derive(Debug)]
pub struct RealBackend {
    pool: Pool,
    /// Clock of the machine the kernels physically run on, GHz. Wall
    /// times are rescaled by `local_clock_ghz / ctx.clock_ghz` so a
    /// fast measuring host charges the slower simulated host fairly.
    local_clock_ghz: f64,
    log: Mutex<Vec<Measurement>>,
}

impl RealBackend {
    /// Pool with `workers` threads, assuming the local machine matches
    /// the simulated host clock (no rescaling).
    pub fn new(workers: usize) -> RealBackend {
        RealBackend::with_local_clock(workers, 0.0)
    }

    /// Pool with an explicit local clock for wall-time rescaling; pass
    /// `0.0` to disable rescaling.
    pub fn with_local_clock(workers: usize, local_clock_ghz: f64) -> RealBackend {
        RealBackend {
            pool: Pool::new(workers),
            local_clock_ghz,
            log: Mutex::new(Vec::new()),
        }
    }

    /// Execute one kernel cell on the pool and wait for its output and
    /// wall time (microseconds). Public so the serve path and drift
    /// experiment share the measured pool with the backend.
    pub fn execute(&self, kind: WorkloadKind, size: SizeClass, seed: u64) -> (KernelOutput, u64) {
        let (tx, rx) = mpsc::channel();
        self.pool.submit(Box::new(move || {
            let start = Instant::now();
            let out = execute_kernel(kind, size, seed);
            let wall = start.elapsed().as_micros() as u64;
            let _ = tx.send((out, wall));
        }));
        rx.recv().expect("worker completes the job")
    }

    /// Snapshot of the measurement log.
    pub fn measurements(&self) -> Vec<Measurement> {
        self.log.lock().expect("measurement log lock").clone()
    }

    /// Fold the measurement log into a calibration map: per
    /// `(kind, size, host)` key, the mean real/modeled ratio and mean
    /// wall time over all samples.
    pub fn calibration(&self) -> CalibrationMap {
        let log = self.measurements();
        let mut map = CalibrationMap::identity();
        let mut acc: std::collections::BTreeMap<String, (f64, u64, u64)> = Default::default();
        for m in &log {
            let key = CalibrationMap::key(m.kind, m.size, m.host);
            let ratio = if m.modeled_micros > 0 {
                m.wall_micros as f64 / m.modeled_micros as f64
            } else {
                1.0
            };
            let e = acc.entry(key).or_insert((0.0, 0, 0));
            e.0 += ratio;
            e.1 += m.wall_micros;
            e.2 += 1;
        }
        for (key, (ratio_sum, wall_sum, n)) in acc {
            map.insert(
                key,
                CalEntry {
                    ratio: ratio_sum / n as f64,
                    wall_micros: wall_sum / n,
                    samples: n,
                },
            );
        }
        map
    }
}

impl ComputeBackend for RealBackend {
    fn name(&self) -> &'static str {
        "real"
    }

    fn charge(&self, ctx: &ComputeCtx, task: &TaskRequest) -> f64 {
        let (out, wall_micros) = self.execute(ctx.kind, ctx.size, ctx.input_seed);
        let modeled = task.compute.seconds_at(ctx.clock_ghz, ctx.cpu_efficiency);
        self.log
            .lock()
            .expect("measurement log lock")
            .push(Measurement {
                kind: ctx.kind,
                size: ctx.size,
                host: ctx.host,
                wall_micros,
                modeled_micros: (modeled * 1e6).round() as u64,
                checksum: out.checksum,
            });
        let mut secs = wall_micros as f64 / 1e6;
        if self.local_clock_ghz > 0.0 && ctx.clock_ghz > 0.0 {
            secs *= self.local_clock_ghz / ctx.clock_ghz;
        }
        secs
    }

    fn is_deterministic(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::units::Megacycles;

    #[test]
    fn pool_executes_and_logs() {
        let backend = RealBackend::new(2);
        let task = TaskRequest {
            kind: WorkloadKind::Linpack,
            payload_bytes: 260,
            control_bytes: 96,
            result_bytes: 113,
            compute: Megacycles(2400.0),
            io_bytes: 0,
        };
        let ctx = ComputeCtx {
            kind: task.kind,
            size: SizeClass::Small,
            host: HostClass::LOCALHOST,
            clock_ghz: 2.66,
            cpu_efficiency: 0.995,
            input_seed: 5,
        };
        let charge = backend.charge(&ctx, &task);
        assert!(charge > 0.0);
        let log = backend.measurements();
        assert_eq!(log.len(), 1);
        assert_eq!(
            log[0].checksum,
            execute_kernel(WorkloadKind::Linpack, SizeClass::Small, 5).checksum
        );
        assert!(!backend.is_deterministic());
    }

    #[test]
    fn calibration_aggregates_per_key() {
        let backend = RealBackend::new(2);
        let task = TaskRequest {
            kind: WorkloadKind::ChessGame,
            payload_bytes: 26 * 1024,
            control_bytes: 610,
            result_bytes: 348,
            compute: Megacycles(1600.0),
            io_bytes: 0,
        };
        let ctx = ComputeCtx {
            kind: task.kind,
            size: SizeClass::Small,
            host: HostClass::LOCALHOST,
            clock_ghz: 2.66,
            cpu_efficiency: 0.995,
            input_seed: 1,
        };
        backend.charge(&ctx, &task);
        backend.charge(&ctx, &task);
        let cal = backend.calibration();
        let key = CalibrationMap::key(task.kind, SizeClass::Small, HostClass::LOCALHOST);
        let entry = cal.entry(&key).expect("aggregated entry");
        assert_eq!(entry.samples, 2);
        assert!(entry.ratio > 0.0);
    }
}
