//! A thin offload API server over the compute backends.
//!
//! The wire protocol is one JSON object per line over TCP — the
//! smallest protocol that exercises the paper's full loop (submit →
//! route/admit → execute → result back):
//!
//! ```json
//! → {"kind": "OCR", "size": "M", "seed": 7}
//! ← {"ok": true, "kind": "OCR", "size": "M", "host": 3,
//!    "backend": "real", "checksum": "988d5275376ae587",
//!    "queue_micros": 120, "exec_micros": 41873, "detail": "..."}
//! ```
//!
//! Checksums travel as hex *strings*: the JSON reader holds numbers as
//! `f64`, which cannot carry a full 64-bit checksum.
//!
//! Routing/admission is behind [`OffloadHandler`]; the `fleet` crate
//! provides the control-plane-backed implementation (consistent-hash
//! routing + admission bounds), while [`DirectHandler`] here executes
//! on a local [`RealBackend`] with no control plane — enough for
//! loopback tests and single-host serving.

use crate::real::RealBackend;
use crate::workset::{kind_from_label, SizeClass};
use obsv::json::{self, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;
use workloads::WorkloadKind;

/// One offload request as submitted by a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffloadRequest {
    /// Workload to execute.
    pub kind: WorkloadKind,
    /// Kernel input size.
    pub size: SizeClass,
    /// Deterministic kernel input seed.
    pub seed: u64,
}

impl OffloadRequest {
    /// Encode as one protocol line (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"kind\": \"{}\", \"size\": \"{}\", \"seed\": {}}}",
            self.kind.label(),
            self.size.label(),
            self.seed
        )
    }

    /// Parse one protocol line.
    pub fn from_json(line: &str) -> Result<OffloadRequest, String> {
        let v = json::parse(line)?;
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .and_then(kind_from_label)
            .ok_or("request: bad or missing \"kind\"")?;
        let size = v
            .get("size")
            .and_then(Value::as_str)
            .and_then(SizeClass::from_label)
            .ok_or("request: bad or missing \"size\"")?;
        let seed = v
            .get("seed")
            .and_then(Value::as_f64)
            .ok_or("request: bad or missing \"seed\"")? as u64;
        Ok(OffloadRequest { kind, size, seed })
    }
}

/// Outcome of one served offload, as returned to the client.
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadResponse {
    /// Whether execution succeeded.
    pub ok: bool,
    /// Error description when `ok` is false.
    pub error: String,
    /// Deterministic kernel output checksum (the client's proof the
    /// right work ran).
    pub checksum: u64,
    /// Host index the request was routed to (0 for direct serving).
    pub host: usize,
    /// Backend label that executed the request.
    pub backend: String,
    /// Time spent queued/routed before execution, microseconds.
    pub queue_micros: u64,
    /// Kernel execution wall time, microseconds.
    pub exec_micros: u64,
    /// Human-readable result summary.
    pub detail: String,
}

impl OffloadResponse {
    /// An error response.
    pub fn error(msg: impl Into<String>) -> OffloadResponse {
        OffloadResponse {
            ok: false,
            error: msg.into(),
            checksum: 0,
            host: 0,
            backend: String::new(),
            queue_micros: 0,
            exec_micros: 0,
            detail: String::new(),
        }
    }

    /// Encode as one protocol line (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ok\": {}, \"error\": \"{}\", \"checksum\": \"{:016x}\", \"host\": {}, \
             \"backend\": \"{}\", \"queue_micros\": {}, \"exec_micros\": {}, \"detail\": \"{}\"}}",
            self.ok,
            escape(&self.error),
            self.checksum,
            self.host,
            self.backend,
            self.queue_micros,
            self.exec_micros,
            escape(&self.detail)
        )
    }

    /// Parse one protocol line.
    pub fn from_json(line: &str) -> Result<OffloadResponse, String> {
        let v = json::parse(line)?;
        let b = |key: &str| {
            v.get(key).and_then(|x| match x {
                Value::Bool(b) => Some(*b),
                _ => None,
            })
        };
        let s = |key: &str| {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .unwrap_or_default()
        };
        let n = |key: &str| v.get(key).and_then(Value::as_f64).unwrap_or(0.0) as u64;
        let checksum = u64::from_str_radix(&s("checksum"), 16)
            .map_err(|e| format!("response: bad checksum: {e}"))?;
        Ok(OffloadResponse {
            ok: b("ok").ok_or("response: missing \"ok\"")?,
            error: s("error"),
            checksum,
            host: n("host") as usize,
            backend: s("backend"),
            queue_micros: n("queue_micros"),
            exec_micros: n("exec_micros"),
            detail: s("detail"),
        })
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Routes, admits, and executes one offload request. The server is
/// generic over this so the fleet control plane can sit behind it
/// without `exec` depending on `fleet`.
pub trait OffloadHandler: Send + Sync + 'static {
    /// Serve one request to completion.
    fn handle(&self, req: &OffloadRequest) -> OffloadResponse;
}

/// The no-control-plane handler: every request executes on a local
/// [`RealBackend`] pool as host 0.
#[derive(Debug)]
pub struct DirectHandler {
    backend: RealBackend,
}

impl DirectHandler {
    /// Direct handler with `workers` pool threads.
    pub fn new(workers: usize) -> DirectHandler {
        DirectHandler {
            backend: RealBackend::new(workers),
        }
    }
}

impl OffloadHandler for DirectHandler {
    fn handle(&self, req: &OffloadRequest) -> OffloadResponse {
        let queued = Instant::now();
        let (out, wall) = self.backend.execute(req.kind, req.size, req.seed);
        let total = queued.elapsed().as_micros() as u64;
        OffloadResponse {
            ok: true,
            error: String::new(),
            checksum: out.checksum,
            host: 0,
            backend: "real".into(),
            queue_micros: total.saturating_sub(wall),
            exec_micros: wall,
            detail: out.detail,
        }
    }
}

/// A running offload API server.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// The address the server is listening on (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept loop. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop only observes the flag between connections;
        // poke it awake with a throwaway connect.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start serving `handler` on `addr` (e.g. `"127.0.0.1:0"`).
/// Connections are handled one thread each; every line received is one
/// request, answered with one response line.
pub fn serve<H: OffloadHandler>(addr: &str, handler: H) -> std::io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let handler = Arc::new(handler);
    let stop_flag = Arc::clone(&stop);
    let accept_thread = thread::Builder::new()
        .name("exec-serve-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let handler = Arc::clone(&handler);
                let _ = thread::Builder::new()
                    .name("exec-serve-conn".into())
                    .spawn(move || serve_connection(stream, &*handler));
            }
        })?;
    Ok(Server {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
    })
}

fn serve_connection<H: OffloadHandler>(stream: TcpStream, handler: &H) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = match OffloadRequest::from_json(&line) {
            Ok(req) => handler.handle(&req),
            Err(e) => OffloadResponse::error(e),
        };
        if writeln!(writer, "{}", response.to_json()).is_err() {
            break;
        }
    }
}

/// Client side: submit one request to a running server and wait for
/// the response.
pub fn submit(addr: impl ToSocketAddrs, req: &OffloadRequest) -> Result<OffloadResponse, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    writeln!(writer, "{}", req.to_json()).map_err(|e| format!("send: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("recv: {e}"))?;
    if line.is_empty() {
        return Err("recv: connection closed".into());
    }
    OffloadResponse::from_json(line.trim_end())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workset::execute_kernel;

    #[test]
    fn request_and_response_round_trip() {
        let req = OffloadRequest {
            kind: WorkloadKind::VirusScan,
            size: SizeClass::Large,
            seed: 77,
        };
        assert_eq!(OffloadRequest::from_json(&req.to_json()).unwrap(), req);

        let resp = OffloadResponse {
            ok: true,
            error: String::new(),
            checksum: 0xdead_beef_0102_0304,
            host: 5,
            backend: "real".into(),
            queue_micros: 12,
            exec_micros: 3456,
            detail: "said \"hi\"".into(),
        };
        assert_eq!(OffloadResponse::from_json(&resp.to_json()).unwrap(), resp);
    }

    #[test]
    fn direct_serving_end_to_end() {
        let mut server = serve("127.0.0.1:0", DirectHandler::new(2)).unwrap();
        let req = OffloadRequest {
            kind: WorkloadKind::Linpack,
            size: SizeClass::Small,
            seed: 11,
        };
        let resp = submit(server.addr(), &req).unwrap();
        assert!(resp.ok, "{}", resp.error);
        assert_eq!(
            resp.checksum,
            execute_kernel(req.kind, req.size, req.seed).checksum
        );
        assert!(resp.exec_micros > 0);
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_an_error_line() {
        let mut server = serve("127.0.0.1:0", DirectHandler::new(1)).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        writeln!(writer, "{{\"kind\": \"Doom\"}}").unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        let resp = OffloadResponse::from_json(line.trim_end()).unwrap();
        assert!(!resp.ok);
        assert!(resp.error.contains("kind"));
        server.shutdown();
    }
}
