//! Property tests for the content-addressed store and SHA-256.

use dockerlike::image::{layer_from_image, BlobStore, Manifest};
use dockerlike::{sha256, Sha256};
use proptest::prelude::*;

proptest! {
    /// Incremental hashing equals one-shot hashing for any chunking.
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..2048),
        cuts in prop::collection::vec(0usize..2048, 0..8),
    ) {
        let whole = sha256(&data);
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut h = Sha256::new();
        let mut prev = 0;
        for c in cuts {
            h.update(&data[prev..c.max(prev)]);
            prev = c.max(prev);
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), whole);
    }

    /// Distinct inputs produce distinct digests (collision-freedom on
    /// small random inputs — a sanity check, not a proof).
    #[test]
    fn sha256_injective_on_samples(a in prop::collection::vec(any::<u8>(), 0..64),
                                   b in prop::collection::vec(any::<u8>(), 0..64)) {
        if a != b {
            prop_assert_ne!(sha256(&a), sha256(&b));
        }
    }

    /// BlobStore: total bytes equals the sum of distinct blob sizes no
    /// matter how many duplicate puts occur, and full release drains it.
    #[test]
    fn blobstore_dedup_invariant(sizes in prop::collection::vec(1u64..10_000, 1..20),
                                 dups in 1u32..4) {
        let mut store = BlobStore::new();
        let mut layers = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let mut img = containerfs::FsImage::new();
            img.insert(
                format!("/blob/{i}"),
                containerfs::FileEntry::new(size, containerfs::FileCategory::OffloadData),
            );
            layers.push(layer_from_image(&format!("l{i}"), &img));
        }
        for _ in 0..dups {
            for l in &layers {
                store.put(l.clone());
            }
        }
        let expect: u64 = layers.iter().map(|l| l.size).sum();
        prop_assert_eq!(store.total_bytes(), expect, "stored once regardless of dup puts");
        // Release every reference: the store drains completely.
        for _ in 0..dups {
            for l in &layers {
                store.release(l.digest);
            }
        }
        prop_assert!(store.is_empty());
    }

    /// Manifest config digests are injective over (name, tag, layers).
    #[test]
    fn manifest_identity(n1 in "[a-z]{3,8}", n2 in "[a-z]{3,8}", size in 1u64..1000) {
        let mut img = containerfs::FsImage::new();
        img.insert("/x".to_string(),
            containerfs::FileEntry::new(size, containerfs::FileCategory::OffloadData));
        let l = layer_from_image("l", &img);
        let a = Manifest::new(&n1, "1.0", std::slice::from_ref(&l));
        let b = Manifest::new(&n2, "1.0", &[l]);
        if n1 == n2 {
            prop_assert_eq!(a.config, b.config);
        } else {
            prop_assert_ne!(a.config, b.config);
        }
    }
}
