//! The image registry: push/pull with per-layer dedup and transfer
//! accounting.

use crate::image::{BlobStore, Digest, Layer, Manifest};
use std::collections::BTreeMap;

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No such `name:tag`.
    ManifestNotFound(String),
    /// A manifest references a blob the registry does not hold.
    MissingBlob(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::ManifestNotFound(r) => write!(f, "manifest not found: {r}"),
            RegistryError::MissingBlob(d) => write!(f, "missing blob: {d}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// What a pull had to move over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PullReceipt {
    /// Layers fetched.
    pub layers_fetched: usize,
    /// Layers already present locally (dedup hits).
    pub layers_cached: usize,
    /// Bytes transferred.
    pub bytes_transferred: u64,
}

/// An image registry.
#[derive(Debug, Default)]
pub struct Registry {
    manifests: BTreeMap<String, Manifest>,
    blobs: BlobStore,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Push an image: manifest + its layer blobs.
    pub fn push(&mut self, manifest: Manifest, layers: Vec<Layer>) {
        debug_assert_eq!(manifest.layers.len(), layers.len());
        for l in layers {
            self.blobs.put(l);
        }
        self.manifests.insert(manifest.reference(), manifest);
    }

    /// Resolve a manifest by `name:tag`.
    pub fn manifest(&self, reference: &str) -> Result<&Manifest, RegistryError> {
        self.manifests
            .get(reference)
            .ok_or_else(|| RegistryError::ManifestNotFound(reference.to_string()))
    }

    /// Blob metadata lookup.
    pub fn blob(&self, digest: Digest) -> Result<&Layer, RegistryError> {
        self.blobs
            .get(digest)
            .ok_or_else(|| RegistryError::MissingBlob(digest.short()))
    }

    /// Pull `reference` into `local`, skipping blobs the local store
    /// already holds — Docker's layer-dedup fast path.
    pub fn pull(
        &self,
        reference: &str,
        local: &mut BlobStore,
    ) -> Result<(Manifest, PullReceipt), RegistryError> {
        let manifest = self.manifest(reference)?.clone();
        let mut receipt = PullReceipt::default();
        for &digest in &manifest.layers {
            if local.has(digest) {
                receipt.layers_cached += 1;
                // Take a reference so release() accounting stays sound.
                let layer = self.blob(digest)?.clone();
                local.put(layer);
            } else {
                let layer = self.blob(digest)?.clone();
                receipt.bytes_transferred += layer.size;
                receipt.layers_fetched += 1;
                local.put(layer);
            }
        }
        Ok((manifest, receipt))
    }

    /// Number of stored manifests.
    pub fn manifest_count(&self) -> usize {
        self.manifests.len()
    }

    /// Registry-side blob bytes (dedup across images).
    pub fn stored_bytes(&self) -> u64 {
        self.blobs.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{cloud_android_layers, layer_from_image};
    use containerfs::{FileCategory, FileEntry, FsImage};

    fn app_layer(name: &str, bytes: u64) -> Layer {
        let mut img = FsImage::new();
        img.insert(
            format!("/data/app/{name}.apk"),
            FileEntry::new(bytes, FileCategory::OffloadData),
        );
        layer_from_image(&format!("app {name}"), &img)
    }

    fn push_cloud_android(reg: &mut Registry) -> Manifest {
        let layers: Vec<Layer> = cloud_android_layers().into_iter().map(|(l, _)| l).collect();
        let m = Manifest::new("rattrap/cloud-android", "4.4-r2", &layers);
        reg.push(m.clone(), layers);
        m
    }

    #[test]
    fn push_pull_round_trip() {
        let mut reg = Registry::new();
        let m = push_cloud_android(&mut reg);
        let mut local = BlobStore::new();
        let (pulled, receipt) = reg.pull(&m.reference(), &mut local).unwrap();
        assert_eq!(pulled.config, m.config);
        assert_eq!(receipt.layers_fetched, 4);
        assert_eq!(receipt.layers_cached, 0);
        assert_eq!(receipt.bytes_transferred, reg.stored_bytes());
        assert_eq!(local.len(), 4);
    }

    #[test]
    fn second_pull_is_fully_cached() {
        let mut reg = Registry::new();
        let m = push_cloud_android(&mut reg);
        let mut local = BlobStore::new();
        reg.pull(&m.reference(), &mut local).unwrap();
        let (_, receipt) = reg.pull(&m.reference(), &mut local).unwrap();
        assert_eq!(receipt.layers_fetched, 0);
        assert_eq!(receipt.layers_cached, 4);
        assert_eq!(receipt.bytes_transferred, 0, "warm pull moves nothing");
    }

    #[test]
    fn derived_image_pulls_only_its_delta() {
        let mut reg = Registry::new();
        let base = push_cloud_android(&mut reg);
        // A derived image: base layers + one app layer.
        let base_layers: Vec<Layer> = base
            .layers
            .iter()
            .map(|&d| reg.blob(d).unwrap().clone())
            .collect();
        let app = app_layer("chessgame", 2 << 20);
        let mut all = base_layers.clone();
        all.push(app.clone());
        let derived = Manifest::new("rattrap/chessgame", "1.0", &all);
        reg.push(derived.clone(), all);

        let mut local = BlobStore::new();
        reg.pull(&base.reference(), &mut local).unwrap();
        let (_, receipt) = reg.pull(&derived.reference(), &mut local).unwrap();
        assert_eq!(receipt.layers_cached, 4, "base layers dedup");
        assert_eq!(receipt.layers_fetched, 1, "only the app layer moves");
        assert_eq!(receipt.bytes_transferred, app.size);
    }

    #[test]
    fn registry_dedups_across_images() {
        let mut reg = Registry::new();
        let before = {
            push_cloud_android(&mut reg);
            reg.stored_bytes()
        };
        // Pushing a derived image adds only the app layer's bytes.
        let base = reg
            .manifest("rattrap/cloud-android:4.4-r2")
            .unwrap()
            .clone();
        let base_layers: Vec<Layer> = base
            .layers
            .iter()
            .map(|&d| reg.blob(d).unwrap().clone())
            .collect();
        let app = app_layer("ocr", 1 << 20);
        let mut all = base_layers;
        all.push(app.clone());
        reg.push(Manifest::new("rattrap/ocr", "1.0", &all), all.clone());
        assert_eq!(reg.stored_bytes(), before + app.size);
        assert_eq!(reg.manifest_count(), 2);
    }

    #[test]
    fn missing_manifest_and_blob_errors() {
        let reg = Registry::new();
        let mut local = BlobStore::new();
        let err = reg.pull("nope:latest", &mut local).unwrap_err();
        assert!(matches!(err, RegistryError::ManifestNotFound(_)));
        assert!(reg.blob(crate::image::digest_of(b"ghost")).is_err());
    }
}
