//! # dockerlike — Docker-style image distribution for Cloud Android
//! Containers
//!
//! The paper's future work (§VIII): "We will also explore the
//! possibility of Rattrap implemented on Docker, which may bring about
//! the real just-in-time provision of Cloud Android Container." This
//! crate builds that path: content-addressed layers over a from-scratch
//! SHA-256 ([`mod@sha256`]), image manifests and a dedup'ing blob store
//! ([`image`]), a push/pull registry ([`registry`]), and a daemon with
//! eager and Slacker-style lazy pull strategies ([`daemon`]) whose
//! startup latencies the `exp_docker` experiment compares against the
//! LXC prototype.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod daemon;
pub mod image;
pub mod registry;
pub mod sha256;

pub use daemon::{CreateReceipt, Daemon, JitContainer, PullStrategy, STARTUP_WORKING_SET};
pub use image::{cloud_android_layers, digest_of, BlobStore, Digest, Layer, Manifest};
pub use registry::{PullReceipt, Registry, RegistryError};
pub use sha256::{sha256, Sha256};
