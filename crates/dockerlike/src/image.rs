//! Content-addressed layers, image manifests, and the blob store.

use crate::sha256::{sha256, to_hex, Sha256};
use containerfs::FsImage;
use std::collections::BTreeMap;

/// A content digest (`sha256:…`), the identity of a layer blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Docker-style rendering, e.g. `sha256:ba7816bf…` (truncated).
    pub fn short(&self) -> String {
        format!("sha256:{}", &to_hex(&self.0)[..12])
    }

    /// Full hex rendering.
    pub fn hex(&self) -> String {
        to_hex(&self.0)
    }
}

/// One image layer: a named filesystem delta, content-addressed.
#[derive(Debug, Clone)]
pub struct Layer {
    /// Content digest over the layer's (path, size, category) stream.
    pub digest: Digest,
    /// Human-readable description (the Dockerfile step, in spirit).
    pub description: String,
    /// Bytes the layer occupies (compressed ≈ uncompressed here).
    pub size: u64,
    /// File count in the delta.
    pub files: usize,
}

/// Build a layer from a filesystem delta. The digest covers the full
/// content listing, so identical deltas are identical blobs wherever
/// they are built — the property Docker's layer dedup rests on.
pub fn layer_from_image(description: &str, delta: &FsImage) -> Layer {
    let mut h = Sha256::new();
    for (path, entry) in delta.iter() {
        h.update(path.as_bytes());
        h.update(&entry.size.to_be_bytes());
        h.update(format!("{:?}", entry.category).as_bytes());
        h.update(&[0]);
    }
    Layer {
        digest: Digest(h.finalize()),
        description: description.to_string(),
        size: delta.total_bytes(),
        files: delta.file_count(),
    }
}

/// An image manifest: ordered layers plus a config digest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Repository name, e.g. `rattrap/cloud-android`.
    pub name: String,
    /// Tag, e.g. `4.4-r2-custom`.
    pub tag: String,
    /// Layer digests, bottom → top.
    pub layers: Vec<Digest>,
    /// Digest of the config blob (we hash the name+tag+layer list).
    pub config: Digest,
}

impl Manifest {
    /// Assemble a manifest over `layers`.
    pub fn new(name: &str, tag: &str, layers: &[Layer]) -> Self {
        let mut h = Sha256::new();
        h.update(name.as_bytes());
        h.update(tag.as_bytes());
        for l in layers {
            h.update(&l.digest.0);
        }
        Manifest {
            name: name.to_string(),
            tag: tag.to_string(),
            layers: layers.iter().map(|l| l.digest).collect(),
            config: Digest(h.finalize()),
        }
    }

    /// `name:tag` reference.
    pub fn reference(&self) -> String {
        format!("{}:{}", self.name, self.tag)
    }
}

/// A store of layer blobs keyed by digest, with reference counts —
/// both the registry's backend and the daemon's local cache.
#[derive(Debug, Default)]
pub struct BlobStore {
    blobs: BTreeMap<Digest, (Layer, u32)>,
}

impl BlobStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a blob (idempotent — content addressing dedups).
    /// Returns `true` if the blob was new.
    pub fn put(&mut self, layer: Layer) -> bool {
        match self.blobs.get_mut(&layer.digest) {
            Some((_, refs)) => {
                *refs += 1;
                false
            }
            None => {
                self.blobs.insert(layer.digest, (layer, 1));
                true
            }
        }
    }

    /// Is a blob present?
    pub fn has(&self, digest: Digest) -> bool {
        self.blobs.contains_key(&digest)
    }

    /// Fetch a blob's metadata.
    pub fn get(&self, digest: Digest) -> Option<&Layer> {
        self.blobs.get(&digest).map(|(l, _)| l)
    }

    /// Drop one reference; removes the blob at zero. Returns bytes freed.
    pub fn release(&mut self, digest: Digest) -> u64 {
        match self.blobs.get_mut(&digest) {
            Some((layer, refs)) => {
                *refs -= 1;
                if *refs == 0 {
                    let size = layer.size;
                    self.blobs.remove(&digest);
                    size
                } else {
                    0
                }
            }
            None => 0,
        }
    }

    /// Total bytes stored (each blob once — the dedup property).
    pub fn total_bytes(&self) -> u64 {
        self.blobs.values().map(|(l, _)| l.size).sum()
    }

    /// Number of distinct blobs.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }
}

/// Split the customized Cloud Android image into the layer stack a
/// Dockerfile would produce: base rootfs → framework → runtime →
/// system data, ready for `FROM rattrap/cloud-android`.
pub fn cloud_android_layers() -> Vec<(Layer, FsImage)> {
    let full = containerfs::android_x86_44_image();
    let (custom, _) = containerfs::customize(&full);
    let split = |pred: &dyn Fn(&str) -> bool| -> FsImage { custom.partition(|p, _| pred(p)).0 };
    let base = split(&|p: &str| {
        p.starts_with("/rootfs") || p.starts_with("/vendor") || p.starts_with("/cache")
    });
    let framework = split(&|p: &str| p.starts_with("/system/framework"));
    let runtime = split(&|p: &str| p.starts_with("/system/lib"));
    let sysdata = split(&|p: &str| p.starts_with("/system/etc") || p.starts_with("/data"));
    vec![
        (layer_from_image("base rootfs + vendor", &base), base),
        (layer_from_image("android framework", &framework), framework),
        (
            layer_from_image("art runtime + core libs", &runtime),
            runtime,
        ),
        (
            layer_from_image("system data + dalvik-cache", &sysdata),
            sysdata,
        ),
    ]
}

/// Hash arbitrary config bytes (exposed for tests / registry auth).
pub fn digest_of(data: &[u8]) -> Digest {
    Digest(sha256(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use containerfs::{FileCategory, FileEntry};

    fn img(paths: &[(&str, u64)]) -> FsImage {
        let mut i = FsImage::new();
        for &(p, size) in paths {
            i.insert(p.to_string(), FileEntry::new(size, FileCategory::Framework));
        }
        i
    }

    #[test]
    fn identical_deltas_share_a_digest() {
        let a = layer_from_image("a", &img(&[("/x", 10), ("/y", 20)]));
        let b = layer_from_image("b", &img(&[("/x", 10), ("/y", 20)]));
        assert_eq!(
            a.digest, b.digest,
            "content addressing ignores the description"
        );
        let c = layer_from_image("c", &img(&[("/x", 10), ("/y", 21)]));
        assert_ne!(a.digest, c.digest);
    }

    #[test]
    fn blob_store_dedups_and_refcounts() {
        let mut store = BlobStore::new();
        let l = layer_from_image("l", &img(&[("/x", 100)]));
        assert!(store.put(l.clone()));
        assert!(!store.put(l.clone()), "second put is a dedup hit");
        assert_eq!(store.total_bytes(), 100, "stored once");
        assert_eq!(store.release(l.digest), 0, "still referenced");
        assert_eq!(store.release(l.digest), 100, "last ref frees");
        assert!(store.is_empty());
        assert_eq!(store.release(l.digest), 0, "releasing a ghost is safe");
    }

    #[test]
    fn manifest_is_stable_and_ordered() {
        let l1 = layer_from_image("1", &img(&[("/a", 1)]));
        let l2 = layer_from_image("2", &img(&[("/b", 2)]));
        let m = Manifest::new("rattrap/cloud-android", "4.4", &[l1.clone(), l2.clone()]);
        let m2 = Manifest::new("rattrap/cloud-android", "4.4", &[l1.clone(), l2.clone()]);
        assert_eq!(m.config, m2.config);
        let swapped = Manifest::new("rattrap/cloud-android", "4.4", &[l2, l1]);
        assert_ne!(m.config, swapped.config, "layer order matters");
        assert_eq!(m.reference(), "rattrap/cloud-android:4.4");
    }

    #[test]
    fn cloud_android_splits_cover_the_custom_image() {
        let layers = cloud_android_layers();
        assert_eq!(layers.len(), 4);
        let total: u64 = layers.iter().map(|(l, _)| l.size).sum();
        let (custom, _) = containerfs::customize(&containerfs::android_x86_44_image());
        assert_eq!(total, custom.total_bytes(), "layers partition the image");
        // Digests are pairwise distinct.
        let mut ds: Vec<_> = layers.iter().map(|(l, _)| l.digest).collect();
        ds.sort();
        ds.dedup();
        assert_eq!(ds.len(), 4);
    }

    #[test]
    fn digest_rendering() {
        let d = digest_of(b"abc");
        assert_eq!(d.short(), "sha256:ba7816bf8f01");
        assert_eq!(d.hex().len(), 64);
    }
}
