//! The container daemon: just-in-time provisioning of Cloud Android
//! Containers from registry images (§VIII future work), with three
//! startup strategies whose latency the experiment compares:
//!
//! * **Cold pull** — fetch every missing layer, unpack, start.
//! * **Warm cache** — layers already local: unpack metadata + start.
//! * **Lazy pull** (Slacker, FAST'16) — fetch only the manifest and the
//!   small fraction of the image a container actually reads at boot,
//!   faulting the rest in the background.

use crate::image::BlobStore;
use crate::registry::{PullReceipt, Registry, RegistryError};
use simkit::{SimDuration, SimTime};
use std::collections::BTreeMap;
use virt::cac_optimized_boot;

/// How the daemon materializes image content at container start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PullStrategy {
    /// Fetch all missing layers before starting.
    Eager,
    /// Start after fetching only the boot working set; page the rest
    /// lazily (Slacker measured ~6.4% of an image is read at startup).
    Lazy,
}

/// Fraction of image bytes a container reads during startup (Slacker's
/// measurement across 57 images: 6.4 %).
pub const STARTUP_WORKING_SET: f64 = 0.064;

/// A running just-in-time container.
#[derive(Debug)]
pub struct JitContainer {
    /// Container id.
    pub id: u32,
    /// Image reference it was created from.
    pub image: String,
    /// When it became ready.
    pub ready_at: SimTime,
    /// Bytes still to be faulted in (lazy strategy).
    pub lazy_remainder: u64,
}

/// Outcome of a `create` call.
#[derive(Debug)]
pub struct CreateReceipt {
    /// The new container's id.
    pub container: u32,
    /// Total creation latency (pull + unpack + boot).
    pub latency: SimDuration,
    /// What the pull transferred.
    pub pull: PullReceipt,
}

/// The daemon.
#[derive(Debug)]
pub struct Daemon {
    /// Local layer cache.
    pub cache: BlobStore,
    /// Link to the registry, bytes/second.
    pub registry_bandwidth: f64,
    /// Local unpack (untar + overlay mount) throughput, bytes/second.
    pub unpack_bandwidth: f64,
    containers: BTreeMap<u32, JitContainer>,
    next_id: u32,
}

impl Daemon {
    /// A daemon with a 1 Gbps registry link and NVMe-class unpack.
    pub fn new() -> Self {
        Daemon {
            cache: BlobStore::new(),
            registry_bandwidth: 125.0e6, // 1 Gbps
            unpack_bandwidth: 400.0e6,   // untar + mount
            containers: BTreeMap::new(),
            next_id: 0,
        }
    }

    /// Create a container from `reference` at time `now`.
    pub fn create(
        &mut self,
        registry: &Registry,
        reference: &str,
        strategy: PullStrategy,
        now: SimTime,
    ) -> Result<CreateReceipt, RegistryError> {
        let (manifest, pull) = registry.pull(reference, &mut self.cache)?;
        let image_bytes: u64 = manifest
            .layers
            .iter()
            .map(|&d| self.cache.get(d).map(|l| l.size).unwrap_or(0))
            .sum();

        let (transfer_bytes, unpack_bytes, lazy_remainder) = match strategy {
            PullStrategy::Eager => (pull.bytes_transferred, pull.bytes_transferred, 0),
            PullStrategy::Lazy => {
                // Only the startup working set of the *missing* bytes is
                // on the critical path; cached layers cost nothing.
                let ws = (pull.bytes_transferred as f64 * STARTUP_WORKING_SET) as u64;
                (ws, ws, pull.bytes_transferred - ws)
            }
        };
        let pull_time = SimDuration::from_secs_f64(transfer_bytes as f64 / self.registry_bandwidth);
        let unpack_time = SimDuration::from_secs_f64(unpack_bytes as f64 / self.unpack_bandwidth);
        // The container itself boots like an optimized CAC minus the
        // shared-layer mount stage — the overlay the unpack produced
        // already provides the rootfs.
        let boot = cac_optimized_boot()
            .stages()
            .iter()
            .filter(|s| !s.name.contains("mount"))
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration);
        let latency = pull_time + unpack_time + boot;

        let id = self.next_id;
        self.next_id += 1;
        self.containers.insert(
            id,
            JitContainer {
                id,
                image: reference.to_string(),
                ready_at: now + latency,
                lazy_remainder,
            },
        );
        let _ = image_bytes;
        Ok(CreateReceipt {
            container: id,
            latency,
            pull,
        })
    }

    /// Remove a container, releasing its image layers from the cache
    /// reference counts.
    pub fn remove(&mut self, registry: &Registry, id: u32) -> bool {
        let Some(c) = self.containers.remove(&id) else {
            return false;
        };
        if let Ok(manifest) = registry.manifest(&c.image) {
            for &d in &manifest.layers {
                self.cache.release(d);
            }
        }
        true
    }

    /// A running container by id.
    pub fn container(&self, id: u32) -> Option<&JitContainer> {
        self.containers.get(&id)
    }

    /// Number of running containers.
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }
}

impl Default for Daemon {
    fn default() -> Self {
        Daemon::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{cloud_android_layers, Layer, Manifest};

    fn registry_with_image() -> (Registry, String) {
        let mut reg = Registry::new();
        let layers: Vec<Layer> = cloud_android_layers().into_iter().map(|(l, _)| l).collect();
        let m = Manifest::new("rattrap/cloud-android", "4.4-r2", &layers);
        let reference = m.reference();
        reg.push(m, layers);
        (reg, reference)
    }

    #[test]
    fn cold_eager_create_pays_the_full_pull() {
        let (reg, image) = registry_with_image();
        let mut d = Daemon::new();
        let r = d
            .create(&reg, &image, PullStrategy::Eager, SimTime::ZERO)
            .unwrap();
        assert_eq!(r.pull.layers_fetched, 4);
        // ~273 MiB over 1 Gbps ≈ 2.3 s + unpack + 1.5 s boot.
        assert!(
            r.latency > SimDuration::from_secs(3),
            "cold eager: {}",
            r.latency
        );
        assert_eq!(d.container_count(), 1);
    }

    #[test]
    fn warm_create_approaches_lxc_startup() {
        let (reg, image) = registry_with_image();
        let mut d = Daemon::new();
        d.create(&reg, &image, PullStrategy::Eager, SimTime::ZERO)
            .unwrap();
        let r = d
            .create(&reg, &image, PullStrategy::Eager, SimTime::ZERO)
            .unwrap();
        assert_eq!(r.pull.bytes_transferred, 0);
        // Warm start = container boot only (≈1.5 s).
        assert!(
            r.latency < SimDuration::from_millis(1_600),
            "warm: {}",
            r.latency
        );
    }

    #[test]
    fn lazy_cold_create_is_near_just_in_time() {
        let (reg, image) = registry_with_image();
        let mut eager = Daemon::new();
        let cold_eager = eager
            .create(&reg, &image, PullStrategy::Eager, SimTime::ZERO)
            .unwrap()
            .latency;
        let mut lazy = Daemon::new();
        let r = lazy
            .create(&reg, &image, PullStrategy::Lazy, SimTime::ZERO)
            .unwrap();
        assert!(
            r.latency.as_secs_f64() < cold_eager.as_secs_f64() * 0.55,
            "lazy {} vs eager {}",
            r.latency,
            cold_eager
        );
        let c = lazy.container(r.container).unwrap();
        assert!(c.lazy_remainder > 0, "most bytes fault in later");
        // The claim of §VIII: lazy Docker pull ≈ "real just-in-time
        // provision" — under 2× the warm boot.
        assert!(
            r.latency < SimDuration::from_millis(2_600),
            "lazy cold: {}",
            r.latency
        );
    }

    #[test]
    fn remove_releases_cache_references() {
        let (reg, image) = registry_with_image();
        let mut d = Daemon::new();
        let a = d
            .create(&reg, &image, PullStrategy::Eager, SimTime::ZERO)
            .unwrap();
        let b = d
            .create(&reg, &image, PullStrategy::Eager, SimTime::ZERO)
            .unwrap();
        assert!(d.cache.total_bytes() > 0);
        assert!(d.remove(&reg, a.container));
        assert!(d.cache.total_bytes() > 0, "b still pins the layers");
        assert!(d.remove(&reg, b.container));
        assert_eq!(d.cache.total_bytes(), 0, "last container frees the cache");
        assert!(!d.remove(&reg, 99));
    }

    #[test]
    fn unknown_image_errors() {
        let (reg, _) = registry_with_image();
        let mut d = Daemon::new();
        assert!(d
            .create(&reg, "ghost:latest", PullStrategy::Eager, SimTime::ZERO)
            .is_err());
    }
}
