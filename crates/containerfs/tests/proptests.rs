//! Property tests for the union filesystem and tmpfs invariants.

use containerfs::{FileCategory, FileEntry, FsImage, LayerStore, Tmpfs, UnionMount};
use proptest::prelude::*;

/// An arbitrary operation against a union mount.
#[derive(Debug, Clone)]
enum Op {
    Write { path: u8, size: u64 },
    Delete { path: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 1u64..10_000).prop_map(|(path, size)| Op::Write { path, size }),
        any::<u8>().prop_map(|path| Op::Delete { path }),
    ]
}

fn base_image(paths: &[u8]) -> FsImage {
    let mut img = FsImage::new();
    for &p in paths {
        img.insert(
            format!("/file/{p}"),
            FileEntry::new(100 + p as u64, FileCategory::Framework),
        );
    }
    img
}

proptest! {
    /// A reference model (plain map) agrees with the union mount for
    /// any operation sequence, and the lower layer never changes.
    #[test]
    fn union_mount_matches_reference_model(
        base_paths in prop::collection::btree_set(any::<u8>(), 0..30),
        ops in prop::collection::vec(op_strategy(), 0..60),
    ) {
        let base_paths: Vec<u8> = base_paths.into_iter().collect();
        let mut store = LayerStore::new();
        let base = base_image(&base_paths);
        let base_bytes = base.total_bytes();
        let layer = store.publish("base", base);
        let mut mount = UnionMount::new(&mut store, vec![layer]);

        // Reference: path → size.
        let mut model: std::collections::BTreeMap<String, u64> = base_paths
            .iter()
            .map(|&p| (format!("/file/{p}"), 100 + p as u64))
            .collect();

        for op in &ops {
            match op {
                Op::Write { path, size } => {
                    let p = format!("/file/{path}");
                    mount.write(&store, &p, FileEntry::new(*size, FileCategory::OffloadData));
                    model.insert(p, *size);
                }
                Op::Delete { path } => {
                    let p = format!("/file/{path}");
                    let deleted = mount.delete(&store, &p);
                    let expected = model.remove(&p).is_some();
                    prop_assert_eq!(deleted, expected, "delete {}", p);
                }
            }
        }

        // Lookups agree with the model on every possible path.
        for p in 0..=u8::MAX {
            let path = format!("/file/{p}");
            let got = mount.lookup(&store, &path).map(|e| e.size);
            prop_assert_eq!(got, model.get(&path).copied(), "path {}", path);
        }
        // Logical bytes equal the model's sum.
        prop_assert_eq!(mount.logical_bytes(&store), model.values().sum::<u64>());
        // The shared layer is immutable.
        prop_assert_eq!(store.layer_bytes(layer), Some(base_bytes));
    }

    /// Tmpfs never exceeds capacity; used() always equals the sum of
    /// live files; peak is monotone.
    #[test]
    fn tmpfs_accounting_invariants(
        ops in prop::collection::vec((any::<u8>(), 0u64..5_000, any::<bool>()), 1..80),
    ) {
        let capacity = 50_000;
        let mut t = Tmpfs::new(capacity);
        let mut model: std::collections::BTreeMap<u8, u64> = Default::default();
        let mut peak_seen = 0u64;
        for (name, size, consume) in ops {
            let path = format!("/f{name}");
            if consume {
                let got = t.consume(&path);
                prop_assert_eq!(got, model.remove(&name));
            } else if t.write(&path, size).is_ok() {
                model.insert(name, size);
            }
            let used: u64 = model.values().sum();
            prop_assert_eq!(t.used(), used);
            prop_assert!(t.used() <= capacity);
            peak_seen = peak_seen.max(used);
            prop_assert_eq!(t.peak(), peak_seen);
        }
    }

    /// Publishing then fleet-mounting keeps disk accounting additive:
    /// store bytes + Σ exclusive upper bytes.
    #[test]
    fn fleet_accounting_additive(n_mounts in 1usize..8, writes in 0u64..20) {
        let mut store = LayerStore::new();
        let layer = store.publish("base", base_image(&[1, 2, 3]));
        let shared = store.total_shared_bytes();
        let mut mounts = Vec::new();
        for m in 0..n_mounts {
            let mut mnt = UnionMount::new(&mut store, vec![layer]);
            for w in 0..writes {
                mnt.write(
                    &store,
                    &format!("/private/{m}/{w}"),
                    FileEntry::new(10, FileCategory::InstanceConfig),
                );
            }
            mounts.push(mnt);
        }
        let refs: Vec<&UnionMount> = mounts.iter().collect();
        prop_assert_eq!(
            containerfs::fleet_disk_usage(&store, &refs),
            shared + n_mounts as u64 * writes * 10
        );
    }
}
