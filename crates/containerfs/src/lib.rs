//! # containerfs — layered storage under Cloud Android Containers
//!
//! Models the storage stack of §III-E and §IV-C:
//! * [`image`] — filesystem images with category accounting and the
//!   access tracking behind Observation 4 (68.4 % of the OS is never
//!   touched by offloaded code).
//! * [`android`] — the Android-x86 4.4 image calibrated to the paper's
//!   byte counts, the §IV-B3 customization pass, and per-instance
//!   private files.
//! * [`layer`] — AUFS-style union mounts with copy-on-write, whiteouts
//!   and fleet-level disk accounting (shared layers counted once).
//! * [`tmpfs`] — the in-memory Sharing Offloading I/O layer with
//!   burn-after-reading semantics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod android;
pub mod entry;
pub mod image;
pub mod layer;
pub mod tmpfs;

pub use android::{android_x86_44_image, customize, instance_private_files, CustomizationReport};
pub use entry::{FileCategory, FileEntry};
pub use image::{AccessTracker, FsImage};
pub use layer::{fleet_disk_usage, CowStats, LayerId, LayerStore, UnionMount};
pub use tmpfs::{Tmpfs, TmpfsFull};
