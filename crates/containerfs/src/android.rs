//! The Android-x86 4.4 (KitKat) image model and the OS-customization
//! pass of §IV-B3.
//!
//! The synthetic file listing is calibrated so that the *arithmetic the
//! paper performs on the real image* reproduces its published numbers:
//!
//! * entire OS ≈ 1.1 GiB, `/system` ≈ 985 MB (87.4 %);
//! * 771 MB (68.4 %) never accessed by offloaded codes (Observation 4);
//! * the redundancy is exactly 20 built-in apps, 197 `.so`,
//!   4372 `.ko` and 396 `.bin` (§IV-B3);
//! * stripping boot images yields the 1.02 GiB container rootfs of
//!   Table I; full customization plus the Shared Resource Layer brings a
//!   single container to ~7.1 MB of private state (≈50× smaller).

use crate::entry::{FileCategory as C, FileEntry};
use crate::image::{AccessTracker, FsImage};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * KIB;

/// Redundant hardware-support population (§IV-B3).
pub const BUILTIN_APP_COUNT: usize = 20;
/// Redundant shared libraries.
pub const REDUNDANT_SO_COUNT: usize = 197;
/// Redundant kernel modules.
pub const KERNEL_MODULE_COUNT: usize = 4372;
/// Redundant firmware blobs.
pub const FIRMWARE_COUNT: usize = 396;

/// Build the full Android-x86 4.4 r2 image as shipped in the VM baseline.
pub fn android_x86_44_image() -> FsImage {
    let mut img = FsImage::new();

    // --- /system: hardware support that offloading never touches -------
    for i in 0..BUILTIN_APP_COUNT {
        img.insert(
            format!("/system/app/Builtin{i:02}.apk"),
            FileEntry::new(6349 * KIB, C::BuiltinApp),
        );
    }
    for i in 0..REDUNDANT_SO_COUNT {
        img.insert(
            format!("/system/lib/hw/libhw{i:03}.so"),
            FileEntry::new(380 * KIB, C::RedundantSharedLib),
        );
    }
    for i in 0..KERNEL_MODULE_COUNT {
        img.insert(
            format!("/system/lib/modules/3.18.0/driver{i:04}.ko"),
            FileEntry::new(110 * KIB, C::KernelModule),
        );
    }
    for i in 0..FIRMWARE_COUNT {
        img.insert(
            format!("/system/etc/firmware/fw{i:03}.bin"),
            FileEntry::new(270 * KIB, C::Firmware),
        );
    }

    // --- /system: what offloaded code actually uses --------------------
    for i in 0..60 {
        img.insert(
            format!("/system/framework/framework{i:02}.jar"),
            FileEntry::new(2048 * KIB, C::Framework),
        );
    }
    for i in 0..10 {
        img.insert(
            format!("/system/lib/art/runtime{i}.oat"),
            FileEntry::new(4096 * KIB, C::Runtime),
        );
    }
    for i in 0..95 {
        img.insert(
            format!("/system/lib/libcore{i:02}.so"),
            FileEntry::new(410 * KIB, C::CoreLib),
        );
    }
    for i in 0..40 {
        img.insert(
            format!("/system/etc/data{i:02}.dat"),
            FileEntry::new(405 * KIB, C::SystemData),
        );
    }

    // --- outside /system ------------------------------------------------
    img.insert(
        "/boot/kernel".to_string(),
        FileEntry::new(8192 * KIB, C::BootImage),
    );
    img.insert(
        "/boot/initrd.img".to_string(),
        FileEntry::new(75_694 * KIB, C::BootImage),
    );
    for i in 0..25 {
        img.insert(
            format!("/rootfs/bin{i:02}"),
            FileEntry::new(410 * KIB, C::Rootfs),
        );
    }
    for i in 0..30 {
        img.insert(
            format!("/data/dalvik-cache/art{i:02}"),
            FileEntry::new(1024 * KIB, C::UserData),
        );
    }
    for i in 0..5 {
        img.insert(
            format!("/cache/blob{i}"),
            FileEntry::new(1024 * KIB, C::Cache),
        );
    }
    for i in 0..15 {
        img.insert(
            format!("/vendor/lib{i:02}.so"),
            FileEntry::new(988 * KIB, C::Vendor),
        );
    }

    img
}

/// What the customization pass removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CustomizationReport {
    /// Built-in apps removed.
    pub removed_apps: usize,
    /// Shared libraries removed.
    pub removed_so: usize,
    /// Kernel modules removed.
    pub removed_ko: usize,
    /// Firmware blobs removed.
    pub removed_bin: usize,
    /// Boot-image files removed (containers share the host kernel).
    pub removed_boot: usize,
    /// Total bytes reclaimed.
    pub bytes_removed: u64,
    /// Bytes kept in the customized OS.
    pub bytes_kept: u64,
}

/// Run the §IV-B3 customization: strip hardware support and boot images,
/// keeping only what offloaded code needs. Returns the customized image
/// (the content of the Shared Resource Layer) and a report.
pub fn customize(full: &FsImage) -> (FsImage, CustomizationReport) {
    let mut report = CustomizationReport::default();
    let mut out = FsImage::new();
    for (path, entry) in full.iter() {
        let keep = entry.category.needed_for_offloading() && entry.category.required_in_container();
        if keep {
            out.insert(path.to_string(), entry.clone());
            report.bytes_kept += entry.size;
        } else {
            report.bytes_removed += entry.size;
            match entry.category {
                C::BuiltinApp => report.removed_apps += 1,
                C::RedundantSharedLib => report.removed_so += 1,
                C::KernelModule => report.removed_ko += 1,
                C::Firmware => report.removed_bin += 1,
                C::BootImage => report.removed_boot += 1,
                _ => {}
            }
        }
    }
    (out, report)
}

/// The container image used by Rattrap(W/O): the full rootfs minus boot
/// images, with no customization or sharing — Table I's 1.02 GiB entry.
pub fn container_rootfs_unoptimized(full: &FsImage) -> FsImage {
    let (img, _) = full.partition(|_, f| f.category.required_in_container());
    img
}

/// Per-instance private files written when a Cloud Android Container is
/// created (network config, instance properties, private `/data`
/// scaffolding) — Table I's "less than 7.1 MB" exclusive footprint.
pub fn instance_private_files(container_id: u32) -> FsImage {
    let mut img = FsImage::new();
    let base = format!("/containers/cac-{container_id}");
    img.insert(
        format!("{base}/etc/hostname"),
        FileEntry::new(KIB, C::InstanceConfig),
    );
    img.insert(
        format!("{base}/etc/net.conf"),
        FileEntry::new(4 * KIB, C::InstanceConfig),
    );
    img.insert(
        format!("{base}/system/build.prop"),
        FileEntry::new(8 * KIB, C::InstanceConfig),
    );
    img.insert(
        format!("{base}/data/system/instance.db"),
        FileEntry::new(2 * MIB, C::InstanceConfig),
    );
    img.insert(
        format!("{base}/data/misc/wifi.state"),
        FileEntry::new(64 * KIB, C::InstanceConfig),
    );
    img.insert(
        format!("{base}/data/local/dispatcher.sock"),
        FileEntry::new(KIB, C::InstanceConfig),
    );
    // Working scratch pre-allocated for offloaded code.
    img.insert(
        format!("{base}/data/local/tmp/scratch"),
        FileEntry::new(5 * MIB - 330 * KIB, C::OffloadData),
    );
    img
}

/// Simulate the file accesses an offloading run performs (boot + serving
/// requests), for reproducing Observation 4.
pub fn track_offloading_accesses(full: &FsImage) -> AccessTracker {
    let mut t = AccessTracker::new();
    // The VM boot reads kernel + ramdisk + rootfs + core system pieces…
    for cat in [
        C::BootImage,
        C::Rootfs,
        C::Framework,
        C::Runtime,
        C::CoreLib,
        C::SystemData,
    ] {
        t.touch_category(full, cat);
    }
    // …and serving requests touches /data, /cache and /vendor.
    for cat in [C::UserData, C::Cache, C::Vendor] {
        t.touch_category(full, cat);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(actual: f64, expected: f64, tol: f64) -> bool {
        (actual - expected).abs() <= tol * expected.abs()
    }

    #[test]
    fn image_matches_paper_total_and_system_share() {
        let img = android_x86_44_image();
        let total = img.total_bytes() as f64 / MIB as f64;
        // "the size of entire Android OS … is around 1GB"; profiled as 1.1 GB.
        assert!(close(total, 1126.4, 0.01), "total {total} MiB");
        let system = img.bytes_under("/system") as f64 / MIB as f64;
        assert!(close(system, 985.0, 0.01), "/system {system} MiB");
        assert!(
            close(system / total, 0.874, 0.01),
            "share {}",
            system / total
        );
    }

    #[test]
    fn observation4_never_accessed_fraction() {
        let img = android_x86_44_image();
        let t = track_offloading_accesses(&img);
        let untouched = t.untouched_bytes(&img) as f64 / MIB as f64;
        assert!(close(untouched, 771.0, 0.01), "untouched {untouched} MiB");
        assert!(close(t.untouched_fraction(&img), 0.684, 0.01));
    }

    #[test]
    fn customization_removes_exact_paper_counts() {
        let img = android_x86_44_image();
        let (custom, report) = customize(&img);
        assert_eq!(report.removed_apps, BUILTIN_APP_COUNT);
        assert_eq!(report.removed_so, REDUNDANT_SO_COUNT);
        assert_eq!(report.removed_ko, KERNEL_MODULE_COUNT);
        assert_eq!(report.removed_bin, FIRMWARE_COUNT);
        assert_eq!(report.removed_boot, 2);
        assert_eq!(report.bytes_kept, custom.total_bytes());
        assert_eq!(report.bytes_kept + report.bytes_removed, img.total_bytes());
        // Customized OS keeps only what's needed: well under a third.
        let frac = custom.total_bytes() as f64 / img.total_bytes() as f64;
        assert!(frac < 0.32, "kept fraction {frac}");
    }

    #[test]
    fn unoptimized_rootfs_matches_table1() {
        let img = android_x86_44_image();
        let rootfs = container_rootfs_unoptimized(&img);
        let gib = rootfs.total_bytes() as f64 / (1024.0 * MIB as f64);
        assert!(close(gib, 1.02, 0.01), "non-optimized rootfs {gib} GiB");
    }

    #[test]
    fn instance_private_footprint_under_7_1_mib() {
        let inst = instance_private_files(3);
        // The paper reports "less than 7.1 MB" (decimal megabytes).
        let mb = inst.total_bytes() as f64 / 1e6;
        assert!(mb < 7.1, "instance footprint {mb} MB");
        assert!(mb > 6.0, "footprint should be close to the paper's 7.1 MB");
    }

    #[test]
    fn shared_layer_makes_container_about_50x_smaller() {
        let img = android_x86_44_image();
        let (custom, _) = customize(&img);
        let private = instance_private_files(0).total_bytes() as f64;
        // "the size of a single Cloud Android Container becomes about
        // 50 times smaller" — customized OS vs private upper layer.
        let ratio = custom.total_bytes() as f64 / private;
        assert!(ratio > 30.0 && ratio < 60.0, "ratio {ratio}");
    }

    #[test]
    fn customized_image_is_entirely_shareable() {
        let img = android_x86_44_image();
        let (custom, _) = customize(&img);
        assert!(custom.iter().all(|(_, f)| f.category.shareable()));
    }

    #[test]
    fn instance_images_are_disjoint_per_container() {
        let a = instance_private_files(1);
        let b = instance_private_files(2);
        for (path, _) in a.iter() {
            assert!(b.get(path).is_none(), "path {path} collides");
        }
    }
}
