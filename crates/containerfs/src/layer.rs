//! Layered union filesystem with copy-on-write — the AUFS-style storage
//! under Cloud Android Containers (§IV-C).
//!
//! A [`LayerStore`] owns immutable, reference-counted layers (system
//! images, the Shared Resource Layer). Each container gets a
//! [`UnionMount`]: an ordered stack of shared read-only layers plus a
//! private writable upper layer. Writes copy-up, deletes leave
//! whiteouts, and disk accounting counts every shared layer **once** —
//! which is precisely where Rattrap's "at least 79 % disk savings" comes
//! from.

use crate::entry::FileEntry;
use crate::image::FsImage;
use std::collections::{BTreeMap, BTreeSet};

/// Identifier of a read-only layer in a [`LayerStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LayerId(u32);

#[derive(Debug)]
struct StoredLayer {
    name: String,
    files: FsImage,
    refs: u32,
}

/// Owner of the shared read-only layers.
#[derive(Debug, Default)]
pub struct LayerStore {
    layers: BTreeMap<u32, StoredLayer>,
    next_id: u32,
}

impl LayerStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish an image as a shared read-only layer.
    pub fn publish(&mut self, name: &str, files: FsImage) -> LayerId {
        let id = self.next_id;
        self.next_id += 1;
        self.layers.insert(
            id,
            StoredLayer {
                name: name.to_string(),
                files,
                refs: 0,
            },
        );
        LayerId(id)
    }

    /// Drop an unreferenced layer; returns `false` if it is still in use
    /// or unknown.
    pub fn remove(&mut self, id: LayerId) -> bool {
        match self.layers.get(&id.0) {
            Some(l) if l.refs == 0 => {
                self.layers.remove(&id.0);
                true
            }
            _ => false,
        }
    }

    fn get(&self, id: LayerId) -> Option<&StoredLayer> {
        self.layers.get(&id.0)
    }

    /// Name of a layer.
    pub fn name(&self, id: LayerId) -> Option<&str> {
        self.get(id).map(|l| l.name.as_str())
    }

    /// Bytes of one layer.
    pub fn layer_bytes(&self, id: LayerId) -> Option<u64> {
        self.get(id).map(|l| l.files.total_bytes())
    }

    /// Mount reference count of a layer.
    pub fn refs(&self, id: LayerId) -> Option<u32> {
        self.get(id).map(|l| l.refs)
    }

    /// Total bytes on disk: every stored layer counted once, regardless
    /// of how many mounts reference it.
    pub fn total_shared_bytes(&self) -> u64 {
        self.layers.values().map(|l| l.files.total_bytes()).sum()
    }

    fn incref(&mut self, id: LayerId) {
        if let Some(l) = self.layers.get_mut(&id.0) {
            l.refs += 1;
        }
    }

    fn decref(&mut self, id: LayerId) {
        if let Some(l) = self.layers.get_mut(&id.0) {
            l.refs = l.refs.saturating_sub(1);
        }
    }
}

/// Statistics of one mount's copy-on-write activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CowStats {
    /// Files copied up into the upper layer.
    pub copy_ups: u64,
    /// Bytes copied up.
    pub copied_bytes: u64,
    /// Whiteouts created.
    pub whiteouts: u64,
}

/// A container's view: lower shared layers + a private upper layer.
#[derive(Debug)]
pub struct UnionMount {
    /// Bottom-to-top order; later layers shadow earlier ones.
    lowers: Vec<LayerId>,
    upper: FsImage,
    whiteouts: BTreeSet<String>,
    stats: CowStats,
}

impl UnionMount {
    /// Mount over the given lower layers (bottom → top).
    pub fn new(store: &mut LayerStore, lowers: Vec<LayerId>) -> Self {
        for &l in &lowers {
            store.incref(l);
        }
        UnionMount {
            lowers,
            upper: FsImage::new(),
            whiteouts: BTreeSet::new(),
            stats: CowStats::default(),
        }
    }

    /// Unmount, releasing the lower-layer references.
    pub fn unmount(self, store: &mut LayerStore) {
        for &l in &self.lowers {
            store.decref(l);
        }
    }

    /// Resolve `path` through the stack: upper first, then lowers top-down,
    /// honouring whiteouts.
    pub fn lookup<'a>(&'a self, store: &'a LayerStore, path: &str) -> Option<&'a FileEntry> {
        if self.whiteouts.contains(path) {
            return None;
        }
        if let Some(e) = self.upper.get(path) {
            return Some(e);
        }
        for &l in self.lowers.iter().rev() {
            if let Some(e) = store.get(l).and_then(|l| l.files.get(path)) {
                return Some(e);
            }
        }
        None
    }

    /// Write `entry` at `path`. If the path exists only in a lower
    /// layer, this is a copy-up (counted in [`CowStats`]).
    pub fn write(&mut self, store: &LayerStore, path: &str, entry: FileEntry) {
        if self.upper.get(path).is_none() {
            // Copy-up happens when modifying a lower file; the cost we
            // track is the bytes of the original being copied.
            let lower_size = self
                .lowers
                .iter()
                .rev()
                .find_map(|&l| store.get(l).and_then(|l| l.files.get(path)))
                .map(|e| e.size);
            if let Some(size) = lower_size {
                if !self.whiteouts.contains(path) {
                    self.stats.copy_ups += 1;
                    self.stats.copied_bytes += size;
                }
            }
        }
        self.whiteouts.remove(path);
        self.upper.insert(path.to_string(), entry);
    }

    /// Delete `path`. Files in lower layers are masked with a whiteout;
    /// upper-only files are simply removed.
    pub fn delete(&mut self, store: &LayerStore, path: &str) -> bool {
        let existed = self.lookup(store, path).is_some();
        if !existed {
            return false;
        }
        self.upper.remove(path);
        let in_lower = self.lowers.iter().any(|&l| {
            store
                .get(l)
                .map(|l| l.files.get(path).is_some())
                .unwrap_or(false)
        });
        if in_lower {
            self.whiteouts.insert(path.to_string());
            self.stats.whiteouts += 1;
        }
        true
    }

    /// Bytes private to this mount (the upper layer) — the container's
    /// *exclusive* disk usage, Table I's per-container figure.
    pub fn exclusive_bytes(&self) -> u64 {
        self.upper.total_bytes()
    }

    /// Bytes visible through the mount (logical size).
    pub fn logical_bytes(&self, store: &LayerStore) -> u64 {
        let mut seen = BTreeSet::new();
        let mut total = 0;
        for (p, f) in self.upper.iter() {
            seen.insert(p.to_string());
            total += f.size;
        }
        for &l in self.lowers.iter().rev() {
            if let Some(layer) = store.get(l) {
                for (p, f) in layer.files.iter() {
                    if !self.whiteouts.contains(p) && seen.insert(p.to_string()) {
                        total += f.size;
                    }
                }
            }
        }
        total
    }

    /// Copy-on-write statistics.
    pub fn stats(&self) -> CowStats {
        self.stats
    }

    /// Direct access to the private upper layer.
    pub fn upper(&self) -> &FsImage {
        &self.upper
    }

    /// Replace the private upper layer wholesale — checkpoint restore.
    /// The image *is* the writable layer's complete state, so any
    /// whiteouts of the previous life are cleared with it.
    pub fn restore_upper(&mut self, upper: FsImage) {
        self.upper = upper;
        self.whiteouts.clear();
    }
}

/// Aggregate physical disk use of a fleet: shared layers once + every
/// mount's private upper layer.
pub fn fleet_disk_usage(store: &LayerStore, mounts: &[&UnionMount]) -> u64 {
    store.total_shared_bytes() + mounts.iter().map(|m| m.exclusive_bytes()).sum::<u64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::FileCategory as C;

    fn base_layer(store: &mut LayerStore) -> LayerId {
        let mut img = FsImage::new();
        img.insert(
            "/system/framework/core.jar",
            FileEntry::new(1000, C::Framework),
        );
        img.insert("/system/lib/libc.so", FileEntry::new(500, C::CoreLib));
        store.publish("shared-resource-layer", img)
    }

    #[test]
    fn lookup_resolves_top_down() {
        let mut store = LayerStore::new();
        let base = base_layer(&mut store);
        let mut over = FsImage::new();
        over.insert("/system/lib/libc.so", FileEntry::new(600, C::CoreLib));
        let patch = store.publish("patch", over);
        let m = UnionMount::new(&mut store, vec![base, patch]);
        assert_eq!(m.lookup(&store, "/system/lib/libc.so").unwrap().size, 600);
        assert_eq!(
            m.lookup(&store, "/system/framework/core.jar").unwrap().size,
            1000
        );
        assert!(m.lookup(&store, "/nope").is_none());
    }

    #[test]
    fn write_to_lower_file_copies_up() {
        let mut store = LayerStore::new();
        let base = base_layer(&mut store);
        let mut m = UnionMount::new(&mut store, vec![base]);
        m.write(
            &store,
            "/system/lib/libc.so",
            FileEntry::new(700, C::CoreLib),
        );
        assert_eq!(m.stats().copy_ups, 1);
        assert_eq!(m.stats().copied_bytes, 500);
        assert_eq!(m.lookup(&store, "/system/lib/libc.so").unwrap().size, 700);
        assert_eq!(m.exclusive_bytes(), 700);
        // Lower layer unchanged.
        assert_eq!(store.layer_bytes(base).unwrap(), 1500);
    }

    #[test]
    fn fresh_file_write_is_not_a_copy_up() {
        let mut store = LayerStore::new();
        let base = base_layer(&mut store);
        let mut m = UnionMount::new(&mut store, vec![base]);
        m.write(&store, "/data/new.bin", FileEntry::new(42, C::OffloadData));
        assert_eq!(m.stats().copy_ups, 0);
        assert_eq!(m.exclusive_bytes(), 42);
    }

    #[test]
    fn delete_lower_creates_whiteout() {
        let mut store = LayerStore::new();
        let base = base_layer(&mut store);
        let mut m = UnionMount::new(&mut store, vec![base]);
        assert!(m.delete(&store, "/system/lib/libc.so"));
        assert!(m.lookup(&store, "/system/lib/libc.so").is_none());
        assert_eq!(m.stats().whiteouts, 1);
        assert!(!m.delete(&store, "/system/lib/libc.so"), "already deleted");
        // Writing again removes the whiteout and is not a copy-up.
        m.write(&store, "/system/lib/libc.so", FileEntry::new(9, C::CoreLib));
        assert_eq!(m.lookup(&store, "/system/lib/libc.so").unwrap().size, 9);
        assert_eq!(m.stats().copy_ups, 0);
    }

    #[test]
    fn delete_upper_only_file_removes_outright() {
        let mut store = LayerStore::new();
        let base = base_layer(&mut store);
        let mut m = UnionMount::new(&mut store, vec![base]);
        m.write(&store, "/tmp/x", FileEntry::new(5, C::OffloadData));
        assert!(m.delete(&store, "/tmp/x"));
        assert_eq!(m.stats().whiteouts, 0);
        assert_eq!(m.exclusive_bytes(), 0);
    }

    #[test]
    fn logical_size_counts_shadowed_once_and_skips_whiteouts() {
        let mut store = LayerStore::new();
        let base = base_layer(&mut store);
        let mut m = UnionMount::new(&mut store, vec![base]);
        m.write(
            &store,
            "/system/lib/libc.so",
            FileEntry::new(700, C::CoreLib),
        );
        m.delete(&store, "/system/framework/core.jar");
        // Visible: only the copied-up libc (700).
        assert_eq!(m.logical_bytes(&store), 700);
    }

    #[test]
    fn shared_layers_counted_once_across_fleet() {
        let mut store = LayerStore::new();
        let base = base_layer(&mut store); // 1500 bytes shared
        let mut mounts = Vec::new();
        for i in 0..10 {
            let mut m = UnionMount::new(&mut store, vec![base]);
            m.write(
                &store,
                &format!("/etc/cfg{i}"),
                FileEntry::new(10, C::InstanceConfig),
            );
            mounts.push(m);
        }
        let refs: Vec<&UnionMount> = mounts.iter().collect();
        // 1500 shared + 10 × 10 private — NOT 10 × 1510.
        assert_eq!(fleet_disk_usage(&store, &refs), 1600);
        assert_eq!(store.refs(base), Some(10));
    }

    #[test]
    fn store_refuses_to_remove_referenced_layer() {
        let mut store = LayerStore::new();
        let base = base_layer(&mut store);
        let m = UnionMount::new(&mut store, vec![base]);
        assert!(!store.remove(base));
        m.unmount(&mut store);
        assert_eq!(store.refs(base), Some(0));
        assert!(store.remove(base));
        assert!(!store.remove(base), "already gone");
    }
}
