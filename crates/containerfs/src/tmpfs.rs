//! In-memory filesystem for the Sharing Offloading I/O layer (§IV-C,
//! Fig. 7b).
//!
//! Rattrap places offloaded files in one shared tmpfs instead of each
//! container's private disk layer. Two properties from the paper are
//! modelled: memory-backed capacity accounting (the "interesting
//! tradeoff between I/O performance and memory footprint") and
//! *burn-after-reading* — migrated data is a one-time deal, so files are
//! dropped after consumption, keeping the layer small and private.

use std::collections::BTreeMap;

/// Error returned when a write would exceed the tmpfs capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TmpfsFull {
    /// Bytes the write needed.
    pub requested: u64,
    /// Bytes that were free.
    pub available: u64,
}

impl std::fmt::Display for TmpfsFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tmpfs full: requested {}, available {}",
            self.requested, self.available
        )
    }
}

impl std::error::Error for TmpfsFull {}

/// A memory-backed filesystem with burn-after-reading semantics.
#[derive(Debug)]
pub struct Tmpfs {
    capacity: u64,
    used: u64,
    peak: u64,
    files: BTreeMap<String, u64>,
    /// Bytes ever written (throughput accounting).
    total_written: u64,
    /// Files consumed via burn-after-reading.
    burned: u64,
}

impl Tmpfs {
    /// A tmpfs capped at `capacity` bytes of memory.
    pub fn new(capacity: u64) -> Self {
        Tmpfs {
            capacity,
            used: 0,
            peak: 0,
            files: BTreeMap::new(),
            total_written: 0,
            burned: 0,
        }
    }

    /// Store `size` bytes at `path` (replacing any previous file there).
    pub fn write(&mut self, path: &str, size: u64) -> Result<(), TmpfsFull> {
        let existing = self.files.get(path).copied().unwrap_or(0);
        let needed = size.saturating_sub(existing);
        if self.used + needed > self.capacity {
            return Err(TmpfsFull {
                requested: needed,
                available: self.capacity - self.used,
            });
        }
        self.used = self.used - existing + size;
        self.peak = self.peak.max(self.used);
        self.total_written += size;
        self.files.insert(path.to_string(), size);
        Ok(())
    }

    /// Size of the file at `path`.
    pub fn size_of(&self, path: &str) -> Option<u64> {
        self.files.get(path).copied()
    }

    /// Read and delete — the burn-after-reading path for migrated data.
    /// Returns the size consumed.
    pub fn consume(&mut self, path: &str) -> Option<u64> {
        let size = self.files.remove(path)?;
        self.used -= size;
        self.burned += 1;
        Some(size)
    }

    /// Delete without reading.
    pub fn remove(&mut self, path: &str) -> bool {
        if let Some(size) = self.files.remove(path) {
            self.used -= size;
            true
        } else {
            false
        }
    }

    /// Memory currently used.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Peak memory used.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Live file count.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Bytes ever written.
    pub fn total_written(&self) -> u64 {
        self.total_written
    }

    /// Files consumed via [`consume`](Tmpfs::consume).
    pub fn burned(&self) -> u64 {
        self.burned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_consume_cycle() {
        let mut t = Tmpfs::new(1000);
        t.write("/offload/ocr-input.png", 400).unwrap();
        assert_eq!(t.size_of("/offload/ocr-input.png"), Some(400));
        assert_eq!(t.used(), 400);
        assert_eq!(t.consume("/offload/ocr-input.png"), Some(400));
        assert_eq!(t.used(), 0, "burn after reading frees memory");
        assert_eq!(t.consume("/offload/ocr-input.png"), None);
        assert_eq!(t.burned(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut t = Tmpfs::new(100);
        t.write("/a", 80).unwrap();
        let err = t.write("/b", 30).unwrap_err();
        assert_eq!(err.available, 20);
        assert_eq!(t.file_count(), 1, "failed write stores nothing");
    }

    #[test]
    fn overwrite_accounts_delta() {
        let mut t = Tmpfs::new(100);
        t.write("/a", 60).unwrap();
        // Replacing a 60-byte file with 90 only needs 30 more.
        t.write("/a", 90).unwrap();
        assert_eq!(t.used(), 90);
        // Shrinking frees memory.
        t.write("/a", 10).unwrap();
        assert_eq!(t.used(), 10);
        assert_eq!(t.peak(), 90);
        assert_eq!(t.total_written(), 160);
    }

    #[test]
    fn remove_without_reading() {
        let mut t = Tmpfs::new(100);
        t.write("/x", 50).unwrap();
        assert!(t.remove("/x"));
        assert!(!t.remove("/x"));
        assert_eq!(t.used(), 0);
        assert_eq!(t.burned(), 0, "remove is not a burn");
    }
}
