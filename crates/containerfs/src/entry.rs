//! File entries and the categories used by the OS-profiling experiments.

/// What a file in the Android image is for — the granularity at which
/// the paper profiles redundancy (§III-E) and strips the OS (§IV-B3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FileCategory {
    /// Pre-installed Android applications (Camera, Gallery, …).
    BuiltinApp,
    /// Hardware-facing shared libraries (`.so`) stripped by customization.
    RedundantSharedLib,
    /// Kernel driver modules (`.ko`) for phone hardware.
    KernelModule,
    /// Firmware blobs (`.bin`).
    Firmware,
    /// Framework jars/dex needed to execute offloaded code.
    Framework,
    /// ART/Dalvik runtime.
    Runtime,
    /// Core native libraries (bionic, libbinder, …) that offloading uses.
    CoreLib,
    /// Fonts, media codecs config, misc /system data that gets touched.
    SystemData,
    /// Boot ramdisk / rootfs contents.
    Rootfs,
    /// `/data` — dalvik-cache and app state.
    UserData,
    /// `/cache` partition contents.
    Cache,
    /// `/vendor` partition contents.
    Vendor,
    /// Kernel + ramdisk boot images (VM-only; containers share the host
    /// kernel).
    BootImage,
    /// Configuration written per container instance.
    InstanceConfig,
    /// Files created by offloaded code at run time.
    OffloadData,
}

impl FileCategory {
    /// Is this category required to serve offloading requests?
    ///
    /// Observation 4 of the paper: hardware support (apps, `.so`, `.ko`,
    /// `.bin`) is never accessed by offloaded code; frameworks, runtime
    /// and core libraries are.
    pub const fn needed_for_offloading(self) -> bool {
        !matches!(
            self,
            FileCategory::BuiltinApp
                | FileCategory::RedundantSharedLib
                | FileCategory::KernelModule
                | FileCategory::Firmware
        )
    }

    /// Is the category shareable read-only between containers (i.e. does
    /// it belong in the Shared Resource Layer)?
    ///
    /// Pre-warmed `/data` (dalvik-cache) and `/cache` contents are
    /// byte-identical across Cloud Android Containers, so Rattrap ships
    /// them in the shared layer too; only per-instance configuration and
    /// offloaded data stay private — which is how a container's
    /// exclusive footprint drops to ~7.1 MB (Table I).
    pub const fn shareable(self) -> bool {
        matches!(
            self,
            FileCategory::Framework
                | FileCategory::Runtime
                | FileCategory::CoreLib
                | FileCategory::SystemData
                | FileCategory::Rootfs
                | FileCategory::Vendor
                | FileCategory::UserData
                | FileCategory::Cache
        )
    }

    /// Must the file exist inside a container at all? Boot images
    /// (kernel + ramdisk) are only meaningful to VMs — containers share
    /// the host kernel (§IV-B2).
    pub const fn required_in_container(self) -> bool {
        !matches!(self, FileCategory::BootImage)
    }
}

/// One file in an image or layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// Size in bytes.
    pub size: u64,
    /// Category for profiling/customization decisions.
    pub category: FileCategory,
}

impl FileEntry {
    /// Convenience constructor.
    pub fn new(size: u64, category: FileCategory) -> Self {
        FileEntry { size, category }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_categories_are_not_needed() {
        assert!(!FileCategory::BuiltinApp.needed_for_offloading());
        assert!(!FileCategory::KernelModule.needed_for_offloading());
        assert!(!FileCategory::Firmware.needed_for_offloading());
        assert!(!FileCategory::RedundantSharedLib.needed_for_offloading());
        assert!(FileCategory::Framework.needed_for_offloading());
        assert!(FileCategory::Runtime.needed_for_offloading());
    }

    #[test]
    fn shareable_excludes_instance_state() {
        assert!(FileCategory::Framework.shareable());
        assert!(
            FileCategory::UserData.shareable(),
            "pre-warmed dalvik-cache is shared"
        );
        assert!(!FileCategory::InstanceConfig.shareable());
        assert!(!FileCategory::OffloadData.shareable());
        assert!(!FileCategory::BootImage.shareable());
    }

    #[test]
    fn boot_image_is_vm_only() {
        assert!(!FileCategory::BootImage.required_in_container());
        assert!(FileCategory::Framework.required_in_container());
        // The boot image *is* accessed (by the VM boot), so it does not
        // count toward the never-accessed redundancy of Observation 4.
        assert!(FileCategory::BootImage.needed_for_offloading());
    }
}
