//! Filesystem images: flat path → entry maps with category accounting
//! and the access tracking used for Observation 4 (§III-E).

use crate::entry::{FileCategory, FileEntry};
use std::collections::{BTreeMap, BTreeSet};

/// A filesystem image — an immutable-ish set of files with sizes.
#[derive(Debug, Clone, Default)]
pub struct FsImage {
    files: BTreeMap<String, FileEntry>,
}

impl FsImage {
    /// Empty image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a file.
    pub fn insert(&mut self, path: impl Into<String>, entry: FileEntry) {
        self.files.insert(path.into(), entry);
    }

    /// Remove a file; returns it if present.
    pub fn remove(&mut self, path: &str) -> Option<FileEntry> {
        self.files.remove(path)
    }

    /// Look up a file.
    pub fn get(&self, path: &str) -> Option<&FileEntry> {
        self.files.get(path)
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Total bytes across all files.
    pub fn total_bytes(&self) -> u64 {
        self.files.values().map(|f| f.size).sum()
    }

    /// Total bytes of files whose path starts with `prefix`.
    pub fn bytes_under(&self, prefix: &str) -> u64 {
        self.files
            .range(prefix.to_string()..)
            .take_while(|(p, _)| p.starts_with(prefix))
            .map(|(_, f)| f.size)
            .sum()
    }

    /// Bytes per category.
    pub fn bytes_by_category(&self) -> BTreeMap<FileCategory, u64> {
        let mut out = BTreeMap::new();
        for f in self.files.values() {
            *out.entry(f.category).or_insert(0) += f.size;
        }
        out
    }

    /// File count per category.
    pub fn count_by_category(&self) -> BTreeMap<FileCategory, usize> {
        let mut out = BTreeMap::new();
        for f in self.files.values() {
            *out.entry(f.category).or_insert(0) += 1;
        }
        out
    }

    /// Iterate `(path, entry)` in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &FileEntry)> {
        self.files.iter().map(|(p, f)| (p.as_str(), f))
    }

    /// Keep only files satisfying the predicate; returns `(files, bytes)`
    /// removed.
    pub fn retain(&mut self, mut keep: impl FnMut(&str, &FileEntry) -> bool) -> (usize, u64) {
        let mut removed_files = 0;
        let mut removed_bytes = 0;
        self.files.retain(|p, f| {
            if keep(p, f) {
                true
            } else {
                removed_files += 1;
                removed_bytes += f.size;
                false
            }
        });
        (removed_files, removed_bytes)
    }

    /// Split into `(matching, rest)` by predicate.
    pub fn partition(&self, mut pred: impl FnMut(&str, &FileEntry) -> bool) -> (FsImage, FsImage) {
        let mut yes = FsImage::new();
        let mut no = FsImage::new();
        for (p, f) in &self.files {
            if pred(p, f) {
                yes.insert(p.clone(), f.clone());
            } else {
                no.insert(p.clone(), f.clone());
            }
        }
        (yes, no)
    }
}

/// Records which paths of an image were touched during a workload —
/// how the paper measured that 68.4 % of the OS is never accessed.
#[derive(Debug, Clone, Default)]
pub struct AccessTracker {
    touched: BTreeSet<String>,
}

impl AccessTracker {
    /// Nothing touched yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an access to `path`.
    pub fn touch(&mut self, path: &str) {
        self.touched.insert(path.to_string());
    }

    /// Record accesses to every file of `image` in `category`.
    pub fn touch_category(&mut self, image: &FsImage, category: FileCategory) {
        for (p, f) in image.iter() {
            if f.category == category {
                self.touched.insert(p.to_string());
            }
        }
    }

    /// Number of distinct paths touched.
    pub fn touched_count(&self) -> usize {
        self.touched.len()
    }

    /// Bytes of `image` never touched.
    pub fn untouched_bytes(&self, image: &FsImage) -> u64 {
        image
            .iter()
            .filter(|(p, _)| !self.touched.contains(*p))
            .map(|(_, f)| f.size)
            .sum()
    }

    /// Fraction of `image` bytes never touched, in `[0, 1]`.
    pub fn untouched_fraction(&self, image: &FsImage) -> f64 {
        let total = image.total_bytes();
        if total == 0 {
            return 0.0;
        }
        self.untouched_bytes(image) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::FileCategory as C;

    fn sample() -> FsImage {
        let mut img = FsImage::new();
        img.insert(
            "/system/framework/core.jar",
            FileEntry::new(1000, C::Framework),
        );
        img.insert(
            "/system/app/Camera.apk",
            FileEntry::new(2000, C::BuiltinApp),
        );
        img.insert("/system/lib/libbinder.so", FileEntry::new(500, C::CoreLib));
        img.insert(
            "/data/dalvik-cache/boot.art",
            FileEntry::new(300, C::UserData),
        );
        img
    }

    #[test]
    fn totals_and_prefix_sums() {
        let img = sample();
        assert_eq!(img.file_count(), 4);
        assert_eq!(img.total_bytes(), 3800);
        assert_eq!(img.bytes_under("/system"), 3500);
        assert_eq!(img.bytes_under("/data"), 300);
        assert_eq!(img.bytes_under("/vendor"), 0);
    }

    #[test]
    fn category_accounting() {
        let img = sample();
        let by_cat = img.bytes_by_category();
        assert_eq!(by_cat[&C::Framework], 1000);
        assert_eq!(by_cat[&C::BuiltinApp], 2000);
        assert_eq!(img.count_by_category()[&C::CoreLib], 1);
    }

    #[test]
    fn retain_reports_removals() {
        let mut img = sample();
        let (files, bytes) = img.retain(|_, f| f.category.needed_for_offloading());
        assert_eq!(files, 1);
        assert_eq!(bytes, 2000);
        assert_eq!(img.file_count(), 3);
    }

    #[test]
    fn partition_splits_without_loss() {
        let img = sample();
        let (sys, rest) = img.partition(|p, _| p.starts_with("/system"));
        assert_eq!(sys.total_bytes() + rest.total_bytes(), img.total_bytes());
        assert_eq!(sys.file_count(), 3);
    }

    #[test]
    fn access_tracking() {
        let img = sample();
        let mut t = AccessTracker::new();
        t.touch("/system/framework/core.jar");
        t.touch("/system/lib/libbinder.so");
        assert_eq!(t.untouched_bytes(&img), 2300);
        assert!((t.untouched_fraction(&img) - 2300.0 / 3800.0).abs() < 1e-9);
        t.touch_category(&img, C::UserData);
        assert_eq!(t.untouched_bytes(&img), 2000);
    }

    #[test]
    fn empty_image_fraction_is_zero() {
        let t = AccessTracker::new();
        assert_eq!(t.untouched_fraction(&FsImage::new()), 0.0);
    }
}
