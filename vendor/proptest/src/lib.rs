//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace
//! patches `proptest` to this vendored implementation. It supports the
//! API surface the workspace's property tests use:
//!
//! - the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header),
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! - `prop_oneof!`, `.prop_map(..)`, `any::<T>()`,
//! - numeric range strategies (`0u64..100`, `0.5f64..16.0`, …),
//! - tuple strategies, `prop::collection::{vec, btree_set}`,
//! - simple character-class string strategies (`"[A-Z0-9]{1,8}"`).
//!
//! Cases are generated from a seed derived deterministically from the
//! test's module path and name, so every run explores the same inputs.
//! There is no shrinking: a failing case reports its inputs verbatim.
//!
//! Two workspace conventions layer on top (see DESIGN.md):
//!
//! - `PROPTEST_CASES` overrides the case count *everywhere*, including
//!   suites that pin an explicit `with_cases(N)` header — one knob
//!   scales the whole workspace up for a soak run or down for a smoke.
//! - A committed seed corpus: if `<test_file>.proptest-regressions`
//!   exists next to a test's source file, every `cc <hex>` line seeds
//!   one extra deterministic case (the first 16 hex digits, run before
//!   the regular generated cases). Suites that once caught a real bug
//!   commit their corpus so the witness inputs are re-explored forever.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case generation and failure plumbing.

    /// Error carried out of a failing property body by `prop_assert*`.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build a failure from a rendered message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property — unless
        /// `PROPTEST_CASES` is set, which overrides every suite in the
        /// workspace (explicit headers included) so one knob scales a
        /// soak run or a smoke run.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases: env_cases().unwrap_or(cases),
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: env_cases().unwrap_or(64),
            }
        }
    }

    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
    }

    /// Deterministic xoshiro256++ stream seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed from an identifying string (module path + test name).
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::from_seed(h)
        }

        /// Seed from an explicit 64-bit value (SplitMix64 expansion) —
        /// the entry point for regression-corpus seeds.
        pub fn from_seed(seed: u64) -> Self {
            let mut h = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *w = z ^ (z >> 31);
            }
            TestRng { s }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform f64 in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Unbiased uniform draw in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            let zone = u64::MAX - (u64::MAX - n + 1) % n;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % n;
                }
            }
        }
    }

    /// Seeds from the committed regression corpus of a test file, or
    /// empty when the file has no corpus.
    ///
    /// The corpus lives next to the test source as
    /// `<test_file>.proptest-regressions` (upstream's sibling-file
    /// layout). `source_file` is the caller's `file!()`, which cargo
    /// emits relative to the *workspace* root while `manifest_dir` is
    /// the *crate* root — so the path is resolved by walking up from
    /// `manifest_dir` until the corpus file (or nothing) is found.
    pub fn regression_seeds(manifest_dir: &str, source_file: &str) -> Vec<u64> {
        let corpus = std::path::Path::new(source_file).with_extension("proptest-regressions");
        let mut dir = Some(std::path::Path::new(manifest_dir));
        while let Some(d) = dir {
            if let Ok(text) = std::fs::read_to_string(d.join(&corpus)) {
                return parse_regression_seeds(&text);
            }
            dir = d.parent();
        }
        Vec::new()
    }

    /// Parse a regression corpus: one `cc <hex> [# comment]` line per
    /// seed, matching upstream's file format. The first 16 hex digits
    /// become the 64-bit seed (upstream records a 256-bit ChaCha key;
    /// this stub's xoshiro state wants 64 bits, and a prefix keeps
    /// upstream-written files loadable). Blank lines, `#` comments, and
    /// malformed lines are skipped — a corpus is advisory, never a
    /// reason to fail the suite before it runs.
    pub fn parse_regression_seeds(text: &str) -> Vec<u64> {
        text.lines()
            .filter_map(|line| {
                let rest = line.trim().strip_prefix("cc ")?;
                let hex: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_hexdigit())
                    .collect();
                if hex.len() < 16 {
                    return None;
                }
                u64::from_str_radix(&hex[..16], 16).ok()
            })
            .collect()
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe core (`generate`) plus `Sized`-gated combinators, so
    /// `Box<dyn Strategy<Value = V>>` works for `prop_oneof!`.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V: Debug> Union<V> {
        /// A union of the given non-empty alternative list.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Debug + Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.next_f64() as f32
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A/0, B/1);
        (A/0, B/1, C/2);
        (A/0, B/1, C/2, D/3);
        (A/0, B/1, C/2, D/3, E/4);
        (A/0, B/1, C/2, D/3, E/4, F/5);
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6);
    }

    /// `any::<T>()` strategy: the full "natural" domain of `T`.
    pub struct Any<T>(PhantomData<T>);

    /// Types with a canonical full-domain strategy.
    pub trait ArbitraryValue: Debug {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy for `T`'s whole domain.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range; avoids the
            // NaN/Inf corner cases real `any::<f64>()` can emit.
            (rng.next_f64() - 0.5) * 2e9
        }
    }

    /// Character-class string strategies: `"[A-Z0-9]{1,8}"`.
    ///
    /// Supports a single bracketed class of literals and `x-y` ranges
    /// followed by a `{n}` or `{lo,hi}` repetition count — the only
    /// regex shapes this workspace uses.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_class_pattern(self)
                .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let mut alphabet = Vec::new();
        let chars: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (a, b) = (chars[i], chars[i + 2]);
                if a > b {
                    return None;
                }
                alphabet.extend(a..=b);
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        let (lo, hi) = match rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
            Some(counts) => match counts.split_once(',') {
                Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
                None => {
                    let n = counts.trim().parse().ok()?;
                    (n, n)
                }
            },
            None if rest.is_empty() => (1, 1),
            None => return None,
        };
        (lo <= hi).then_some((alphabet, lo, hi))
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_set`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Element-count specification: exact or half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            assert!(self.lo < self.hi, "empty size range");
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// `Vec` of independently generated elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` of generated elements; if the element domain is too
    /// small to reach the sampled size, a smaller set is produced
    /// (after a bounded number of attempts), matching proptest's
    /// best-effort semantics.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < 10 * target + 32 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod prelude {
    //! Everything a property-test module needs, mirroring upstream.

    pub use crate::strategy::{any, ArbitraryValue, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_prop(x in 0u64..100, flip in any::<bool>()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            // Committed regression corpus first: seeds that witnessed a
            // real historical bug replay before any generated case.
            for __seed in
                $crate::test_runner::regression_seeds(env!("CARGO_MANIFEST_DIR"), file!())
            {
                let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "property `{}` failed on regression seed {:#018x}:\n{}\ninputs: {}",
                        stringify!($name), __seed, e, __inputs,
                    );
                }
            }
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "property `{}` failed at case {}/{}:\n{}\ninputs: {}",
                        stringify!($name), __case + 1, __config.cases, e, __inputs,
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $fmt:expr $(, $args:expr)* $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($fmt $(, $args)*),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
                l, r,
            )));
        }
    }};
    ($left:expr, $right:expr, $fmt:expr $(, $args:expr)* $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}\n{}",
                l, r, format!($fmt $(, $args)*),
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: {:?}",
                l,
            )));
        }
    }};
    ($left:expr, $right:expr, $fmt:expr $(, $args:expr)* $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: {:?}\n{}",
                l, format!($fmt $(, $args)*),
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot(u8),
        Bar(u64),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in -5i32..5, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u64..100, 2..6),
            s in prop::collection::btree_set(any::<u8>(), 0..10),
            exact in prop::collection::vec(0u32..9, 4),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(s.len() < 10);
            prop_assert_eq!(exact.len(), 4);
        }

        #[test]
        fn oneof_and_map_compose(
            op in prop_oneof![
                any::<u8>().prop_map(Shape::Dot),
                (1u64..100).prop_map(Shape::Bar),
            ],
        ) {
            match op {
                Shape::Dot(_) => {}
                Shape::Bar(n) => prop_assert!(n >= 1),
            }
        }

        #[test]
        fn string_class_pattern(words in prop::collection::vec("[A-Z0-9]{1,8}", 1..5)) {
            for w in &words {
                prop_assert!(!w.is_empty() && w.len() <= 8);
                prop_assert!(w.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit()));
            }
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("x::t");
        let mut b = crate::test_runner::TestRng::for_test("x::t");
        let s = 0u64..1000;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    fn from_seed_is_deterministic_and_seed_sensitive() {
        let mut a = crate::test_runner::TestRng::from_seed(0x2017_0529);
        let mut b = crate::test_runner::TestRng::from_seed(0x2017_0529);
        let mut c = crate::test_runner::TestRng::from_seed(0x2017_052A);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn regression_corpus_parsing() {
        use crate::test_runner::parse_regression_seeds;
        // Upstream-format lines: full 256-bit hash, trailing comment.
        let text = "\
# This file preserves witness inputs; see DESIGN.md.
cc 84235cede87f0d62a414c10bfe819f2af05a559d2748373c9d9f04742adc17e0 # shrinks to p = [..]

cc deadbeefcafef00d # short-form 64-bit seed
cc 123 # too short to be a seed: skipped
not a corpus line
";
        assert_eq!(
            parse_regression_seeds(text),
            vec![0x84235cede87f0d62, 0xdeadbeefcafef00d]
        );
        assert!(parse_regression_seeds("").is_empty());
    }

    #[test]
    fn regression_seeds_empty_when_no_corpus_file() {
        let seeds = crate::test_runner::regression_seeds(
            env!("CARGO_MANIFEST_DIR"),
            "src/no_such_test_file.rs",
        );
        assert!(seeds.is_empty());
    }
}
