//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace
//! patches `criterion` to this vendored harness. It implements the
//! surface the workspace's benches use — `Criterion::default()`,
//! `sample_size`, `benchmark_group`, `bench_function`, `throughput`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros — measuring simple
//! wall-clock medians with a small time budget per benchmark. No
//! statistics, plots, or saved baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark wall-clock budget; keeps full bench suites (and
/// accidental execution under `cargo test`) fast.
const TIME_BUDGET: Duration = Duration::from_millis(200);

/// How batched inputs are grouped per measurement. All variants behave
/// identically here: setup runs once per iteration, unmeasured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many per allocation in real criterion.
    SmallInput,
    /// Large inputs: fewer per batch in real criterion.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Set the target number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        let mut group = BenchmarkGroup {
            _parent: self,
            name: String::new(),
            sample_size,
            throughput: None,
        };
        group.bench_function(name, f);
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the group's sample size.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Measure one benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        let label = if self.name.is_empty() {
            name
        } else {
            format!("{}/{}", self.name, name)
        };
        let mut b = Bencher {
            sample_size: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.total / b.iters as u32
        } else {
            Duration::ZERO
        };
        let mut line = format!("{label:<40} time: {per_iter:>12.3?} ({} iters)", b.iters);
        if let (Some(Throughput::Bytes(bytes)), true) = (self.throughput, b.iters > 0) {
            let secs = per_iter.as_secs_f64();
            if secs > 0.0 {
                let mibps = bytes as f64 / secs / (1024.0 * 1024.0);
                line.push_str(&format!("  thrpt: {mibps:.1} MiB/s"));
            }
        }
        println!("{line}");
        self
    }

    /// Close the group (prints nothing extra; parity with upstream).
    pub fn finish(self) {}
}

/// Drives the measured routine.
pub struct Bencher {
    sample_size: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measure `routine` repeatedly; the return value is black-boxed
    /// so the work is not optimized away.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // One calibration pass sizes the run to the time budget.
        let t0 = Instant::now();
        black_box(routine());
        let first = t0.elapsed();
        let budget_iters = if first.is_zero() {
            self.sample_size as u64
        } else {
            (TIME_BUDGET.as_nanos() / first.as_nanos().max(1)) as u64
        };
        let iters = budget_iters.clamp(1, self.sample_size as u64);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.total = start.elapsed() + first;
        self.iters = iters + 1;
    }

    /// Measure `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let first = t0.elapsed();
        let budget_iters = if first.is_zero() {
            self.sample_size as u64
        } else {
            (TIME_BUDGET.as_nanos() / first.as_nanos().max(1)) as u64
        };
        let iters = budget_iters.clamp(1, self.sample_size as u64);
        let mut measured = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
        }
        self.total = measured + first;
        self.iters = iters + 1;
    }
}

/// Defines a benchmark group function, in either the positional or the
/// `name = …; config = …; targets = …` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Defines `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default().sample_size(10);
        let mut group = c.benchmark_group("g");
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default().sample_size(5);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("rev", |b| {
            b.iter_batched(
                || (0..64u32).collect::<Vec<_>>(),
                |mut v| {
                    v.reverse();
                    v
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    mod grouped {
        use super::super::*;

        fn noop_bench(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1 + 1));
        }

        criterion_group!(benches, noop_bench);
        criterion_group! {
            name = configured;
            config = Criterion::default().sample_size(7);
            targets = noop_bench
        }

        #[test]
        fn macros_expand_and_run() {
            benches();
            configured();
        }
    }
}
