//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` to this vendored implementation. It provides the
//! subset of the 0.8 API the workspace uses — [`rngs::StdRng`], the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`, `fill`)
//! and [`SeedableRng`] (`seed_from_u64`, `from_seed`) — backed by
//! xoshiro256++ seeded through SplitMix64.
//!
//! Determinism contract: a given seed always produces the same stream
//! on every platform (no wall-clock, no OS entropy). The stream is NOT
//! bit-compatible with upstream `rand`'s ChaCha12-based `StdRng`; all
//! in-repo golden values are derived from this generator.

#![forbid(unsafe_code)]

/// Core RNG abstraction: a source of `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` via SplitMix64 expansion (matches the
    /// upstream semantics: every bit of the seed matters).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly from an RNG via `Rng::gen`.
pub trait Standard {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1), the standard construction.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return <$t as Standard>::sample(rng);
                }
                lo.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Unbiased draw in `[0, span)` via Lemire-style rejection on 64 bits.
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span = span as u64;
        // Rejection sampling to remove modulo bias.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span) as u128;
            }
        }
    } else {
        // Span exceeds u64 (only possible for u128-ish widths; unused
        // in this workspace but kept correct): combine two words.
        let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        v % span
    }
}

/// Convenience extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of `T`'s full "standard" distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p.clamp(0.0, 1.0)
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator — the workspace's `StdRng`.
    ///
    /// Not cryptographically secure (neither determinism nor simulation
    /// fidelity needs that); excellent statistical quality and speed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_inclusive_hits_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1_000 {
            match r.gen_range(0u64..=3) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                1 | 2 => {}
                _ => panic!("out of range"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn mean_of_unit_samples_is_half() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = StdRng::seed_from_u64(0);
        let v: Vec<u64> = (0..8).map(|_| r.gen()).collect();
        assert!(v.windows(2).any(|w| w[0] != w[1]));
    }
}
