//! Offline stand-in for the `rayon` crate.
//!
//! The build environment cannot reach crates.io, so the workspace
//! patches `rayon` to this vendored implementation. It provides the
//! surface the workspace uses — `par_iter()` on slices, arrays and
//! vectors, `into_par_iter()` on vectors and ranges, and
//! `.map(..).collect()` — executed genuinely in parallel on scoped
//! `std::thread`s while preserving input order in the collected
//! output, so parallel results are indistinguishable from serial ones.
//!
//! This matters for the workspace's determinism contract: experiment
//! drivers fan replications out with `par_iter` and must produce
//! byte-identical tables regardless of scheduling.

#![forbid(unsafe_code)]

/// A pending parallel iteration over already-materialized items.
pub struct ParIter<I> {
    items: Vec<I>,
}

/// A mapped parallel iteration, ready to collect.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send> ParIter<I> {
    /// Apply `f` to every item in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<I, F>
    where
        F: Fn(I) -> R + Sync,
        R: Send,
    {
        ParMap { items: self.items, f }
    }

    /// Number of items to be processed.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when there is nothing to process.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<I: Send, F> ParMap<I, F> {
    /// Execute the map across worker threads and collect results in
    /// the original input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(I) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        run_ordered(self.items, &self.f).into_iter().collect()
    }
}

/// Map `items` in parallel, returning results in input order.
///
/// Contiguous chunks are handed to scoped threads and re-concatenated
/// in chunk order, so ordering never depends on scheduling. Panics in
/// workers propagate to the caller.
fn run_ordered<I, R, F>(mut items: Vec<I>, f: &F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(workers);
    while !items.is_empty() {
        let take = chunk.min(items.len());
        let rest = items.split_off(take);
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let mut out: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|ch| s.spawn(move || ch.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    out
}

/// Borrowing entry point: `collection.par_iter()`.
pub trait IntoParallelRefIterator<'a> {
    /// The per-item type (a reference).
    type Item: Send + 'a;

    /// Start a parallel iteration borrowing from `self`.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a, const N: usize> IntoParallelRefIterator<'a> for [T; N] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// Consuming entry point: `collection.into_par_iter()`.
pub trait IntoParallelIterator {
    /// The per-item type (owned).
    type Item: Send;

    /// Start a parallel iteration consuming `self`.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter { items: self.collect() }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_static_arrays() {
        static SEEDS: [u64; 5] = [11, 22, 33, 44, 55];
        let v: Vec<u64> = SEEDS.par_iter().map(|&s| s + 1).collect();
        assert_eq!(v, vec![12, 23, 34, 45, 56]);
    }

    #[test]
    fn into_par_iter_consumes() {
        let v: Vec<String> = vec!["a".to_string(), "b".to_string()]
            .into_par_iter()
            .map(|s| s + "!")
            .collect();
        assert_eq!(v, vec!["a!", "b!"]);
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u8> = Vec::<u8>::new().par_iter().map(|&x| x).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn matches_serial_for_any_length() {
        for n in [1usize, 2, 3, 7, 64, 257] {
            let xs: Vec<usize> = (0..n).collect();
            let par: Vec<usize> = xs.par_iter().map(|&x| x * x).collect();
            let ser: Vec<usize> = xs.iter().map(|&x| x * x).collect();
            assert_eq!(par, ser, "n = {n}");
        }
    }
}
